"""The scatter-gather coordinator: one logical SP made of N shard backends.

The coordinator lives on the data owner's side of the trust boundary (it
is constructed by the application next to the proxy) but holds **no key
material**: everything it touches is already encrypted, and everything it
ships to a shard is exactly what a single-node deployment would have
shipped to its one SP.  It presents the :class:`~repro.core.server.SDBServer`
surface, so ``SDBProxy(Coordinator([...]))`` -- and therefore the whole
session layer -- works unchanged on a cluster.

Execution routes one of four ways, recorded in :attr:`last_scatter`:

* **primary** -- the query touches no sharded table; it runs verbatim on
  the designated primary shard (``shards[0]``), which holds every
  unsharded relation.
* **scatter** -- the query is partial/merge-splittable (same eligibility
  as the thread-parallel engine, :mod:`repro.engine.partial`) over one
  sharded table: each shard runs the partial over its bucket slice, and
  the coordinator merges the union of partials with a local engine.
  Secret shares merge by ring addition, so the gather step needs no keys.
* **coshard** -- a splittable *join* whose sharded tables are provably
  co-located (equi-joined on their shard keys through one colocation
  group): each shard joins its slices locally against broadcast copies of
  the unsharded tables, and partials ring-merge exactly like scatter.
* **fallback** -- anything else (non-co-located joins, subqueries,
  DISTINCT aggregates):
  the sharded tables are gathered shard-by-shard and materialized on the
  primary under reserved names, the query's table references are rebound,
  and the primary executes it serially.  Correctness therefore never
  depends on the cluster path; sharding is purely an optimization.

Prepared statements cache their route and, when every parameter binds
inside the partial query, per-shard prepared handles -- an execute then
ships only parameter bindings to each shard.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, replace as dc_replace
from typing import Optional, Sequence

from repro.api.exceptions import ShardUnavailableError
from repro.cluster.failover import (
    REPLICAS_TABLE,
    FailoverManager,
    parse_replicas_record,
    replicas_record,
)
from repro.cluster.rebalance import (
    ClusterMigration,
    RebalancePlan,
    ShardTopology,
)
from repro.cluster.planner import build_route_plan, choose_coshard_or_fallback
from repro.cluster.replica import ShardGroup
from repro.cluster.router import routing_residue
from repro.core.server import (
    BUCKET_COLUMN,
    MIGRATION_STAGING_PREFIX,
    ServerBusyError,
    _MaterializedResult,
)
from repro.cluster.txn import (
    TXN_COMMIT_PREFIX,
    TXN_STAGING_PREFIX,
    commit_cluster,
    recover_cluster_txns,
)
from repro.core.sync import ReadWriteLock
from repro.core.txn import TransactionStateError
from repro.core.udfs import register_sdb_udfs
from repro.engine.catalog import Catalog
from repro.engine.executor import Engine
from repro.engine.partial import (
    PARTIALS_TABLE,
    SplitPlan,
    base_table_refs,
    concat_tables,
    ineligibility,
    join_conditions,
    merge_order_resolvable,
    plan_group_pushdown,
    plan_split,
    strip_table,
)
from repro.engine.table import Table
from repro.engine.udf import UDFRegistry
from repro.obs import trace as obs_trace
from repro.obs.metrics import COUNT_BUCKETS, global_metrics
from repro.obs.slowlog import SlowQueryLog
from repro.sql import ast
from repro.sql.params import (
    bind_parameters,
    num_parameters,
    transform_nodes,
    walk_nodes,
)
from repro.sql.parser import parse

#: Primary-shard name under which a sharded table is materialized for
#: fallback queries (dropped whenever DML invalidates the copy).
MATERIALIZED_PREFIX = "__cluster_full__"

#: Per-statement temporary name for full-table copies broadcast to every
#: shard so a scattered DML's subqueries see whole tables, not slices.
BROADCAST_PREFIX = "__cluster_bcast__"

#: Per-shard broadcast cache for co-sharded joins: full (encrypted) copies
#: of every unsharded table a co-shard route reads, stored on *every*
#: shard under this prefix and invalidated whenever DML touches the
#: source relation.
COSHARD_PREFIX = "__cluster_dim__"

#: Row budget per gather/broadcast wire frame: ``shard_dump`` windows of
#: this many rows stream a materialization chunk by chunk, so neither the
#: coordinator nor a single protocol frame ever holds a whole large slice.
GATHER_CHUNK_ROWS = 4096

#: Primary-shard relation recording the committed topology (epoch, count).
TOPOLOGY_TABLE = "__cluster_topology__"

#: Primary-shard relation recording an in-flight rebalance commit: once it
#: exists, the new topology wins and recovery rolls the commit *forward*;
#: until it exists, the old topology wins and staging is discarded.
COMMIT_TABLE = "__cluster_commit__"

#: Table-name prefixes that are coordinator/migration machinery, never
#: operator-placed relations.
INTERNAL_PREFIXES = (
    MATERIALIZED_PREFIX,
    BROADCAST_PREFIX,
    COSHARD_PREFIX,
    MIGRATION_STAGING_PREFIX,
    TOPOLOGY_TABLE,
    COMMIT_TABLE,
    REPLICAS_TABLE,
    TXN_STAGING_PREFIX,
    TXN_COMMIT_PREFIX,
)


class ShardError(RuntimeError):
    """Cluster misconfiguration or an unroutable request."""


#: Scatter fan-out per executed query (shards contacted); the shape of the
#: cluster's read amplification.
_SCATTER_FANOUT = global_metrics().histogram(
    "sdb_scatter_fanout_shards",
    "shards contacted per scattered query",
    buckets=COUNT_BUCKETS,
)

#: Statements refused by admission control, labelled by the refusing layer
#: (the coordinator here; the net daemon counts its own).
_ADMIT_REJECTS = global_metrics().counter(
    "sdb_admission_rejections_total",
    "statements refused by admission control, by layer",
)


def _gather_chunks(source, name: str, offset: int = 0):
    """Yield ``GATHER_CHUNK_ROWS``-row windows of ``name`` from ``source``.

    Ends after the first short window (which may be empty when the table
    length is an exact multiple of the chunk size -- callers treat a
    zero-row non-first chunk as the end marker).
    """
    while True:
        chunk = source.shard_dump(name, offset=offset, count=GATHER_CHUNK_ROWS)
        yield chunk
        if chunk.num_rows < GATHER_CHUNK_ROWS:
            return
        offset += chunk.num_rows


@dataclass
class Placement:
    """Where one table lives."""

    table: str
    shard_column: Optional[str]  # None: resident on the primary shard only
    #: colocation group: tables sharing a group route shard-key values
    #: through one PRF subkey, so equal values co-locate across tables
    #: (the property co-sharded joins rely on)
    colocate: Optional[str] = None

    @property
    def sharded(self) -> bool:
        return self.shard_column is not None


@dataclass(frozen=True)
class ScatterReport:
    """How the last query was routed (and what that route leaked)."""

    mode: str  # 'scatter' | 'coshard' | 'primary' | 'fallback'
    shards: int
    reason: str
    leakage: tuple = ()
    #: replica failover events (suspect/evict/promote) observed while this
    #: query executed -- the events the query's transparent retry absorbed
    failover: tuple = ()
    #: per-phase durations in seconds (``route_s``/``scatter_s``/
    #: ``merge_s``), folded into the session layer's QueryReport timing
    #: section; None when the route had no timed phases
    timings: Optional[dict] = None


@dataclass(frozen=True)
class CoshardInfo:
    """The co-shardability proof behind a ``('coshard', info)`` route.

    ``sharded`` joined shard-locally over co-located slices; ``dims``
    (unsharded tables) broadcast in full to every shard; ``group`` the
    colocation group backing the proof (None when a single sharded table
    -- possibly self-joined -- needs no cross-table colocation).
    """

    sharded: tuple
    dims: tuple
    group: Optional[str] = None


def _parse_weights(raw) -> tuple:
    """Decode a persisted ``"w0,w1,..."`` weight string ('' = uniform)."""
    text = str(raw or "").strip()
    if not text:
        return ()
    return tuple(int(part) for part in text.split(",") if part)


def _weights_str(weights) -> str:
    return ",".join(str(int(w)) for w in (weights or ()))


def referenced_tables(statement) -> list[str]:
    """Every table name a statement references, subqueries included."""
    names: list[str] = []
    for node in walk_nodes(statement):
        if isinstance(node, ast.TableRef) and node.name.lower() not in names:
            names.append(node.name.lower())
    return names


def rename_tables(statement, mapping: dict):
    """Rebind table references to new names, preserving column bindings.

    The original binding (alias or bare name) is pinned as an explicit
    alias, so ``lineitem.l_price`` keeps resolving after ``lineitem``
    becomes ``__cluster_full__lineitem``.
    """

    def leaf(node):
        if isinstance(node, ast.TableRef) and node.name.lower() in mapping:
            return ast.TableRef(
                name=mapping[node.name.lower()], alias=node.binding
            )
        return None

    return transform_nodes(statement, leaf)


class _ClusterStatement:
    """A coordinator-side prepared SELECT with a cached scatter plan."""

    def __init__(self, query: ast.Select):
        self.query = query
        self.route: Optional[tuple] = None
        self.split: Optional[SplitPlan] = None
        #: every parameter marker binds inside the partial query, so an
        #: execution forwards bindings straight to per-shard handles
        self.forwardable = False
        #: per-shard prepared handles as (shard, handle) pairs -- pinned
        #: to the backends that issued them, so a topology change can
        #: never alias a stale handle onto a different shard
        self.shard_handles: Optional[list[tuple]] = None
        #: topology epoch the route/handles were planned against
        self.topology_epoch: Optional[int] = None
        # plan/handle initialization is once-per-statement; concurrent
        # sessions executing the same prepared handle must not race it
        self._plan_lock = threading.Lock()

    def execute(
        self, coordinator: "Coordinator", params: tuple, session=None
    ) -> tuple[Table, "ScatterReport"]:
        t_plan = time.perf_counter()
        with self._plan_lock:
            epoch = coordinator.topology.epoch
            if self.route is not None and self.topology_epoch != epoch:
                # the cluster was resharded under this statement: the
                # cached route scatters over a shard set that no longer
                # exists -- drop handles and re-plan against the new one
                self._release_handles()
                self.route = None
                self.split = None
                self.forwardable = False
            if self.route is None:
                self.topology_epoch = epoch
                self.route = coordinator._classify(self.query)
                if self.route[0] in ("scatter", "coshard"):
                    self.split = coordinator._plan_scatter(
                        self.query, self.route
                    )
                    total = num_parameters(self.query)
                    self.forwardable = (
                        num_parameters(self.split.partial) == total
                        and num_parameters(self.split.merge) == 0
                    )
            if (
                self.route[0] in ("scatter", "coshard")
                and self.forwardable
                and self.shard_handles is None
            ):
                self.shard_handles = [
                    (shard, shard.prepare_query(self.split.partial))
                    for shard in coordinator.shards
                ]
            # snapshot under the lock: a concurrent close_prepared nulls
            # shard_handles, and an in-flight execute must fail with the
            # server's typed unknown-statement error, never a TypeError
            handles = self.shard_handles
        route_s = time.perf_counter() - t_plan
        parent = obs_trace.current_span()
        if parent is not None:
            parent.tracer.record_timed(
                "route", parent, t_plan, t_plan + route_s, kind=self.route[0]
            )
        if self.route[0] in ("scatter", "coshard") and self.forwardable:
            if self.route[0] == "coshard":
                # handles bind at execute time, so a refreshed broadcast
                # copy (same name, new rows) is picked up transparently
                coordinator._ensure_broadcasts(self.route[1].dims)
            t0 = time.perf_counter()
            with obs_trace.child_span("scatter") as span:
                partials = coordinator._scatter_prepared(
                    handles, params, session=session
                )
                span.set_attr("shards", len(partials))
            t1 = time.perf_counter()
            with obs_trace.child_span("merge") as span:
                out = coordinator._merge(self.split.merge, partials)
                span.set_attr("rows", out.num_rows)
            t2 = time.perf_counter()
            if self.route[0] == "coshard":
                report = coordinator._coshard_report(self.split, self.route[1])
            else:
                report = coordinator._scatter_report_for(
                    self.query, self.split, self.route
                )
            report = dc_replace(
                report,
                timings={
                    "route_s": route_s,
                    "scatter_s": t1 - t0,
                    "merge_s": t2 - t1,
                },
            )
            return out, report
        bound = bind_parameters(self.query, params)
        table, report = coordinator._run(bound, self.route, session=session)
        if report.timings is not None:
            report = dc_replace(
                report, timings={**report.timings, "route_s": route_s}
            )
        return table, report

    def _release_handles(self) -> None:
        handles, self.shard_handles = self.shard_handles, None
        for shard, handle in handles or ():
            try:
                shard.close_prepared(handle)
            except Exception:
                pass  # shard already gone

    def close(self, coordinator: "Coordinator") -> None:
        with self._plan_lock:  # serialize against in-flight planning
            self._release_handles()


class Coordinator:
    """Scatter-gather executor over ``shards`` (SDBServer-compatible)."""

    def __init__(
        self,
        shards: Sequence,
        max_session_inflight: int = 32,
        weights: Optional[Sequence[int]] = None,
        slow_query_s: Optional[float] = None,
    ):
        if not shards:
            raise ShardError("a cluster needs at least one shard backend")
        self.shards = list(shards)
        weights = tuple(int(w) for w in (weights or ()))
        if weights and len(weights) != len(self.shards):
            raise ShardError(
                f"{len(weights)} weight(s) for {len(self.shards)} shard(s)"
            )
        #: the *committed* cluster shape; rows route by the topology's
        #: (possibly weighted) residue map and every committed rebalance
        #: bumps the epoch (persisted on the primary shard)
        self.topology = ShardTopology(
            epoch=0, shard_count=len(self.shards), weights=weights
        )
        #: replica failover bookkeeping, shared by every ShardGroup shard;
        #: promotions persist through ``_persist_replicas`` so a restarted
        #: coordinator adopts the promoted member, not the dead original
        self.failover = FailoverManager(persist=self._persist_replicas)
        for index, shard in enumerate(self.shards):
            if isinstance(shard, ShardGroup):
                shard.attach(self.failover, index)
        #: in-flight rebalance (None outside a migration)
        self._migration: Optional[ClusterMigration] = None
        #: admission control: per-session statements currently in flight;
        #: overflow raises ServerBusyError instead of queueing unboundedly
        self.max_session_inflight = max_session_inflight
        self._inflight: dict = {}
        #: open cluster transactions: session -> tables its DML wrote
        #: (the post-commit invalidation set); mutated under the write lock
        self._txn_sessions: dict = {}
        #: the last 2PC commit's report (token / tables / per-shard
        #: write-set cardinalities -- the declared transaction leakage)
        self.last_txn_commit: Optional[dict] = None
        self.udfs = UDFRegistry()
        register_sdb_udfs(self.udfs)
        self._placements: dict[str, Placement] = {}
        self._materialized: set[str] = set()
        #: unsharded tables currently broadcast to every shard (co-shard
        #: dim cache, see COSHARD_PREFIX)
        self._broadcast: set[str] = set()
        #: (epoch, {table: rows}) cost-model cardinality cache
        self._card_cache: Optional[tuple] = None
        self._prepared: dict[int, _ClusterStatement] = {}
        self._results: dict[int, _MaterializedResult] = {}
        #: per-result routing reports: the session layer attributes scatter
        #: leakage to the execution that caused it, not to whichever query
        #: a concurrent session ran last (last_scatter is a global)
        self._scatter_by_result: dict[int, ScatterReport] = {}
        self._handle_ids = itertools.count(1)
        # Readers-writer execution lock: read-only statements (scatter,
        # primary, fallback SELECTs) from *different sessions* run
        # concurrently against the shards; DML/DDL/transaction control
        # takes the write side exclusively and bumps the cluster epoch.
        self._lock = ReadWriteLock()
        #: cluster-level snapshot epoch (bumped by every routed mutation)
        self._epoch = 0
        # fast mutex for handle tables (never held across shard calls)
        self._state_lock = threading.Lock()
        # serializes fallback materialization (a read-path operation that
        # writes a cache table on the primary shard); concurrent readers
        # needing the same gather must not duplicate it
        self._mat_lock = threading.Lock()
        # persistent scatter pool (threads start lazily on first use): the
        # prepared hot path must not pay thread creation per execution,
        # and concurrent sessions need enough workers to keep every shard
        # busy while another session's scatter is in flight.  Sized by
        # *members*, not groups: a replicated shard spreads reads over
        # all its replicas, and a pool sized to the group count would
        # cap in-flight requests below the cluster's service capacity
        member_count = sum(
            len(shard.members) if isinstance(shard, ShardGroup) else 1
            for shard in self.shards
        )
        self._pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * member_count),
            thread_name_prefix="sdb-scatter",
        )
        self.last_scatter: Optional[ScatterReport] = None
        #: coordinator-side slow-query log (inert until a threshold is set)
        self.slowlog = SlowQueryLog(slow_query_s)
        self._bootstrap_placements()
        self._bootstrap_topology()
        self._bootstrap_replicas()
        # finish or undo cluster transactions a crashed coordinator left
        # mid-2PC: a surviving commit record rolls forward, orphan staging
        # without one is discarded (presumed abort)
        recover_cluster_txns(self)

    @property
    def epoch(self) -> int:
        """Cluster snapshot epoch (advanced by every routed mutation)."""
        return self._epoch

    def _bootstrap_placements(self) -> None:
        """Rebuild the placement map from what the shards already hold.

        A coordinator attached to already-loaded shard daemons (a second
        shell session, a restarted application) must route exactly like
        the one that did the loading: sharded tables are recovered from
        the placement metadata every SHARD_STORE recorded, and whatever
        else the primary holds is primary-resident.
        """
        statuses = [shard.shard_status() for shard in self.shards]
        for status in statuses:
            for name, placed in status.get("placements", {}).items():
                if name.lower().startswith(INTERNAL_PREFIXES):
                    continue
                self._placements[name.lower()] = Placement(
                    name.lower(),
                    (placed.get("shard_by") or "").lower() or None,
                    (placed.get("colocate") or "").lower() or None,
                )
        for name in statuses[0].get("tables", {}):
            key = name.lower()
            if key.startswith(MATERIALIZED_PREFIX):
                self._materialized.add(key[len(MATERIALIZED_PREFIX):])
                continue
            if key.startswith(INTERNAL_PREFIXES):
                continue
            self._placements.setdefault(key, Placement(key, None))

    def _bootstrap_topology(self) -> None:
        """Adopt the committed topology and finish or undo a crashed rebalance.

        The primary's :data:`TOPOLOGY_TABLE` names the committed shape.  A
        surviving :data:`COMMIT_TABLE` means a rebalance crashed *after*
        its commit record: the new topology already won, so the commit is
        rolled forward (idempotent promote + purge).  Any orphan staging
        relations without a commit record belong to a rebalance that never
        committed: the old topology wins and they are dropped.
        """
        names = self._primary_table_names()
        # adopt the persisted shape *before* any roll-forward: the commit
        # completion bumps from the adopted epoch, so a recovered epoch
        # stays monotone across coordinator generations
        if TOPOLOGY_TABLE in names:
            record = self.primary.shard_dump(TOPOLOGY_TABLE)
            if record.num_rows:
                epoch = int(record.column("epoch")[-1])
                count = int(record.column("shard_count")[-1])
                if count > len(self.shards):
                    raise ShardError(
                        f"committed topology has {count} shard(s) but only "
                        f"{len(self.shards)} backend(s) were supplied"
                    )
                weights: tuple = ()
                if "weights" in record.schema.names:
                    weights = _parse_weights(record.column("weights")[-1])
                self.topology = ShardTopology(
                    epoch=epoch, shard_count=count, weights=weights
                )
        if COMMIT_TABLE in names:
            self._roll_forward_commit()
        # drop orphan staging left by an uncommitted, crashed rebalance
        for index, shard in enumerate(self.shards):
            status = shard.shard_status()
            for name in list(status.get("tables", {})):
                if name.lower().startswith(MIGRATION_STAGING_PREFIX):
                    base = name[len(MIGRATION_STAGING_PREFIX):]
                    try:
                        shard.shard_migrate_abort(base)
                    except Exception:
                        pass  # unreachable shard; staging is inert anyway

    def _roll_forward_commit(self) -> None:
        """Complete a rebalance whose commit record exists (idempotent)."""
        record = self.primary.shard_dump(COMMIT_TABLE)
        if record.num_rows == 0:
            self.primary.drop_table(COMMIT_TABLE)
            return
        old_n = int(record.column("old_n")[0])
        new_n = int(record.column("new_n")[0])
        if new_n > len(self.shards):
            raise ShardError(
                f"crashed rebalance committed to {new_n} shard(s) but only "
                f"{len(self.shards)} backend(s) were supplied"
            )
        tables = {
            str(name).lower(): (str(shard_by).lower() or None)
            for name, shard_by in zip(
                record.column("name"), record.column("shard_by")
            )
            if str(name)  # skip the no-sharded-tables sentinel row
        }
        new_weights: tuple = ()
        if "new_weights" in record.schema.names:
            new_weights = _parse_weights(record.column("new_weights")[0])
        self._complete_commit(tables, old_n, new_n, new_weights=new_weights)

    def _complete_commit(
        self, tables: dict, old_n: int, new_n: int, on_step=None,
        new_weights: tuple = (),
    ) -> None:
        """Promote staging, purge movers, persist the new topology.

        Every step is idempotent, so this may be re-driven any number of
        times after a crash: promotion deduplicates staged rows by their
        row-id ciphertexts, and the purge keeps exactly the rows the new
        modulus places here.
        """
        def step(label: str) -> None:
            if on_step is not None:
                on_step(label)

        for table, shard_by in tables.items():
            colocate = self._colocate_of(table)
            for index in range(new_n):
                step(f"commit:promote:{table}:{index}")
                placement = {
                    "index": index, "of": new_n, "shard_by": shard_by or "",
                    "colocate": colocate,
                }
                self.shards[index].shard_migrate_promote(
                    table, placement=placement
                )
            for index in range(max(old_n, new_n)):
                step(f"commit:purge:{table}:{index}")
                placement = None
                if index < new_n:
                    placement = {
                        "index": index, "of": new_n,
                        "shard_by": shard_by or "",
                        "colocate": colocate,
                    }
                self.shards[index].shard_migrate_purge(
                    table, new_n, index, placement=placement,
                    weights=new_weights or None,
                )
            self._placements[table] = Placement(
                table, shard_by, colocate or None
            )
        step("commit:finish")
        epoch = self.topology.epoch + 1
        new_weights = tuple(new_weights or ())
        self._store_topology(epoch, new_n, new_weights)
        try:
            self.primary.drop_table(COMMIT_TABLE)
        except Exception:
            pass  # already dropped by a previous recovery pass
        removed = self.shards[new_n:] if new_n < len(self.shards) else []
        self.shards = self.shards[:new_n] if new_n < len(self.shards) else self.shards
        self.topology = ShardTopology(
            epoch=epoch, shard_count=new_n, weights=new_weights
        )
        for backend in removed:
            closer = getattr(backend, "close", None)
            if callable(closer):
                try:
                    closer()
                except Exception:
                    pass

    def _store_topology(
        self, epoch: int, shard_count: int, weights: tuple = ()
    ) -> None:
        from repro.engine.schema import ColumnSpec, DataType, Schema

        schema = Schema(
            (
                ColumnSpec("epoch", DataType.INT),
                ColumnSpec("shard_count", DataType.INT),
                ColumnSpec("weights", DataType.STRING),
            )
        )
        self.primary.store_table(
            TOPOLOGY_TABLE,
            Table(schema, [[epoch], [shard_count], [_weights_str(weights)]]),
            replace=True,
        )

    # -- replica sets --------------------------------------------------------

    def _replica_groups(self) -> list[tuple]:
        return [
            (index, shard)
            for index, shard in enumerate(self.shards)
            if isinstance(shard, ShardGroup)
        ]

    def _persist_replicas(self) -> None:
        """Durably record which member leads each replica group.

        Called by the failover manager after every promotion: a restarted
        coordinator must adopt the *promoted* primaries (the dead original
        may hold a stale, pre-failover slice if it ever comes back).
        """
        groups = self._replica_groups()
        if not groups:
            return
        primaries = {
            index: group.replica_status()["primary_ordinal"]
            for index, group in groups
        }
        self.primary.store_table(
            REPLICAS_TABLE,
            replicas_record(primaries, self.failover.generation),
            replace=True,
        )

    def _bootstrap_replicas(self) -> None:
        """Adopt persisted replica promotions (the durable failover record)."""
        groups = self._replica_groups()
        if not groups:
            return
        if REPLICAS_TABLE not in self._primary_table_names():
            return
        record = self.primary.shard_dump(REPLICAS_TABLE)
        primaries, generation = parse_replicas_record(record)
        self.failover.adopt_generation(generation)
        for index, group in groups:
            ordinal = primaries.get(index, 0)
            if ordinal:
                group.adopt_primary(ordinal)

    def replica_status(self) -> list:
        """Per-shard replica health (probes every member's liveness)."""
        status = []
        for index, shard in enumerate(self.shards):
            if isinstance(shard, ShardGroup):
                status.append(shard.check_health())
            else:
                status.append(
                    {
                        "group": index,
                        "primary_ordinal": 0,
                        "members": [
                            {
                                "ordinal": 0,
                                "state": "healthy",
                                "weight": 1,
                                "backend": type(shard).__name__,
                            }
                        ],
                    }
                )
        return status

    @property
    def primary(self):
        """The designated primary shard (unsharded tables, fallback host)."""
        return self.shards[0]

    @property
    def num_shards(self) -> int:
        """The *committed* shard count (mid-migration: the old topology)."""
        return self.topology.shard_count

    def close(self) -> None:
        """Release the scatter pool and any remote shard connections."""
        self._pool.shutdown(wait=False)
        for shard in self.shards:
            closer = getattr(shard, "close", None)
            if callable(closer):
                closer()

    # -- placement / storage -------------------------------------------------

    def shard_column(self, name: str) -> Optional[str]:
        """The shard-key column of ``name`` (None when primary-resident)."""
        placement = self._placements.get(name.lower())
        return placement.shard_column if placement is not None else None

    def shard_colocation(self, name: str) -> Optional[str]:
        """The colocation group of ``name`` (None when ungrouped)."""
        placement = self._placements.get(name.lower())
        return placement.colocate if placement is not None else None

    def _colocate_of(self, table: str) -> str:
        placement = self._placements.get(table.lower())
        return (placement.colocate or "") if placement is not None else ""

    def placements(self) -> dict[str, Placement]:
        return dict(self._placements)

    def store_table(self, name: str, table: Table, replace: bool = False) -> None:
        """Store an unsharded table, resident on the primary shard."""
        with self._lock.write_locked():
            self._epoch += 1
            previous = self._placements.get(name.lower())
            self.primary.store_table(name, table, replace=replace)
            if previous is not None and previous.sharded:
                # re-created as primary-resident: remove the old slices so
                # they cannot shadow a later sharded re-creation
                for shard in self.shards[1:]:
                    try:
                        shard.drop_table(name)
                    except Exception:
                        pass
            self._placements[name.lower()] = Placement(name.lower(), None)
            self._invalidate_materialized(name)

    def store_sharded(
        self,
        name: str,
        table: Table,
        shard_column: str,
        buckets: Sequence[int],
        replace: bool = False,
        colocate: Optional[str] = None,
    ) -> None:
        """Hash-partition encrypted rows across every shard.

        ``buckets`` holds one PRF bucket per row, computed by the proxy
        from shard-key *plaintext* before encryption; this side only ever
        sees ``bucket mod num_shards``.  ``colocate`` names the table's
        colocation group (tables in one group share a routing subkey, so
        equal shard-key values land on the same shard across tables).
        """
        buckets = list(buckets)
        if len(buckets) != table.num_rows:
            raise ShardError(
                f"bucket count {len(buckets)} != row count {table.num_rows}"
            )
        with self._lock.write_locked():
            if self._migration is not None:
                raise ShardError(
                    "cannot upload a sharded table while a rebalance is in "
                    "progress"
                )
            self._epoch += 1
            # the stored slice carries each row's routing residue in the
            # hidden __bucket column: elastic resharding selects movers
            # shard-side from it, without the routing PRF key
            residues = [routing_residue(bucket) for bucket in buckets]
            stored = self._with_bucket_column(table, residues)
            count = self.num_shards
            placement_map = self.topology.placement_map
            groups: list[list[int]] = [[] for _ in range(count)]
            for row_index, residue in enumerate(residues):
                groups[placement_map.shard_of(residue)].append(row_index)
            for index, (shard, indices) in enumerate(
                zip(self.shards[:count], groups)
            ):
                shard.shard_store(
                    name,
                    stored.take(indices),
                    placement={
                        "index": index,
                        "of": count,
                        "shard_by": shard_column.lower(),
                        "colocate": (colocate or "").lower(),
                    },
                    replace=replace,
                )
            self._placements[name.lower()] = Placement(
                name.lower(), shard_column.lower(),
                (colocate or "").lower() or None,
            )
            self._invalidate_materialized(name)

    @staticmethod
    def _with_bucket_column(table: Table, residues: Sequence[int]) -> Table:
        from repro.engine.schema import ColumnSpec, DataType

        if BUCKET_COLUMN in table.schema.names:
            return table
        return table.with_column(
            ColumnSpec(BUCKET_COLUMN, DataType.INT), list(residues)
        )

    def drop_table(self, name: str) -> None:
        with self._lock.write_locked():
            self._epoch += 1
            placement = self._placements.pop(name.lower(), None)
            if self._migration is not None:
                # a dropped table has nothing left to migrate
                # (_state_lock: migration_pending iterates these dicts)
                with self._state_lock:
                    self._migration.tables.pop(name.lower(), None)
                    self._migration.pending.pop(name.lower(), None)
                for shard in self.shards:
                    try:
                        shard.shard_migrate_abort(name)
                    except Exception:
                        pass
            self._invalidate_materialized(name)
            if placement is not None and placement.sharded:
                for shard in self.shards:
                    shard.drop_table(name)
            else:
                # unknown tables raise the primary's CatalogError, exactly
                # like a single-node deployment
                self.primary.drop_table(name)

    # -- queries -------------------------------------------------------------

    @contextmanager
    def _admit(self, session):
        """Admission-control guard: bounded per-session in-flight work.

        A session may have at most :attr:`max_session_inflight` statements
        in flight on this coordinator; the overflow statement fails fast
        with :class:`ServerBusyError` (mapped to
        ``api.OperationalError("server busy ...")``) instead of growing
        the scatter pool's queue without bound.
        """
        if session is None or self.max_session_inflight <= 0:
            yield
            return
        with self._state_lock:
            count = self._inflight.get(session, 0)
            if count >= self.max_session_inflight:
                _ADMIT_REJECTS.labels(layer="coordinator").inc()
                raise ServerBusyError(
                    f"server busy: session {session} already has "
                    f"{count} statement(s) in flight "
                    f"(limit {self.max_session_inflight})"
                )
            self._inflight[session] = count + 1
        try:
            yield
        finally:
            with self._state_lock:
                remaining = self._inflight.get(session, 1) - 1
                if remaining <= 0:
                    self._inflight.pop(session, None)
                else:
                    self._inflight[session] = remaining

    def session_inflight(self) -> dict:
        """Current per-session in-flight counts (observability/tests)."""
        with self._state_lock:
            return dict(self._inflight)

    def execute(self, query, session=None) -> Table:
        """Run a (rewritten) query, routed per :attr:`last_scatter`.

        Read-only: takes the shared side of the execution lock, so
        different sessions scatter over the shards concurrently.
        """
        if isinstance(query, str):
            query = parse(query)
        t_start = time.perf_counter()
        with self._admit(session), self._lock.read_locked():
            mark = self.failover.mark()
            t0 = time.perf_counter()
            route = self._classify(query)
            t1 = time.perf_counter()
            parent = obs_trace.current_span()
            if parent is not None:
                parent.tracer.record_timed(
                    "route", parent, t0, t1, kind=route[0]
                )
            table, report = self._run(query, route, session=session)
            timings = dict(report.timings or ())
            timings["route_s"] = t1 - t0
            report = dc_replace(report, timings=timings)
            self.last_scatter = self._with_failover(report, mark)
        self.slowlog.maybe_record(
            time.perf_counter() - t_start,
            f"cluster-{report.mode}",
            f"route={report.mode} shards={report.shards} ({report.reason})",
        )
        return table

    def _with_failover(
        self, report: ScatterReport, mark: int
    ) -> ScatterReport:
        """Attach failover events that fired while this query executed.

        Promotions and evictions are *declared leakage*: the SPs (and any
        network observer) learn which replica died and who took over, so
        the events ride the report into ``cursor.leakage``.
        """
        events = self.failover.events_since(mark)
        if not events:
            return report
        lines = tuple(str(event) for event in events)
        return dc_replace(
            report,
            failover=report.failover + lines,
            leakage=report.leakage
            + tuple(f"cluster: failover: {line}" for line in lines),
        )

    def _classify(self, query: ast.Select) -> tuple:
        referenced = referenced_tables(query)
        sharded = tuple(
            name
            for name in referenced
            if (p := self._placements.get(name)) is not None and p.sharded
        )
        if not sharded:
            return ("primary", None)
        if len(sharded) == 1:
            if self._group_pushdown_ok(query, sharded[0]):
                # the group key IS the shard key: every group lives wholly
                # on one shard, so shard-local GROUP BY results are final
                # and the coordinator skips the re-group
                return ("scatter", "pushdown")
            reason = ineligibility(
                query, self.udfs, lambda n: n.lower() in self._placements
            )
            if reason is None:
                return ("scatter", None)
        coshard = self._coshard_info(query)
        if coshard is not None:
            # provably co-shardable; let the cost model decide whether the
            # shard-local join actually beats gathering (a tiny fact table
            # against a huge broadcast dim is cheaper to gather)
            choice = choose_coshard_or_fallback(
                coshard, self._cardinalities(), len(self.shards)
            )
            if choice.route == "coshard":
                return ("coshard", coshard)
        return ("fallback", sharded)

    def _cardinalities(self) -> dict:
        """Total row count per table, summed over the shards.

        Cached per cluster snapshot epoch: any routed mutation bumps
        :attr:`epoch`, so the cache can never serve counts from before the
        last write this coordinator saw.  Remote clusters pay one
        ``shard_status`` round per shard per epoch, not per query.
        """
        with self._state_lock:
            cached = self._card_cache
            if cached is not None and cached[0] == self._epoch:
                return cached[1]
        statuses = [shard.shard_status() for shard in self.shards]
        cards: dict = {}
        for status in statuses:
            for name, rows in status.get("tables", {}).items():
                key = name.lower()
                if key.startswith(INTERNAL_PREFIXES):
                    continue
                cards[key] = cards.get(key, 0) + int(rows)
        with self._state_lock:
            self._card_cache = (self._epoch, cards)
        return cards

    def explain_route(self, query) -> "PlanNode":
        """The plan tree for ``query``'s route, without executing it."""
        if isinstance(query, str):
            query = parse(query)
        return build_route_plan(self, query, self._classify(query))

    def _plan_scatter(self, query: ast.Select, route: tuple) -> SplitPlan:
        if route[1] == "pushdown":
            return plan_group_pushdown(query)
        split = plan_split(query, self.udfs)
        if route[0] == "coshard" and route[1].dims:
            # the partial joins each shard's co-located slices against
            # broadcast full copies of the unsharded tables
            mapping = {name: COSHARD_PREFIX + name for name in route[1].dims}
            split = SplitPlan(
                partial=rename_tables(split.partial, mapping),
                merge=split.merge,
                kind=split.kind,
            )
        return split

    def _run(
        self, query: ast.Select, route: tuple, session=None
    ) -> tuple[Table, ScatterReport]:
        # ``session`` rides to the shards so a reader inside its own
        # transaction sees that transaction's write set (each shard keys
        # the overlay engine by session); every other session's reads hit
        # only committed state
        kind, extra = route
        if kind == "primary":
            report = ScatterReport(
                mode="primary",
                shards=1,
                reason="no sharded table referenced",
            )
            return self.primary.execute(query, session=session), report
        if kind in ("scatter", "coshard"):
            split = self._plan_scatter(query, route)
            if kind == "coshard":
                self._ensure_broadcasts(extra.dims)
            t0 = time.perf_counter()
            with obs_trace.child_span("scatter") as span:
                partials = self._scatter(split.partial, session=session)
                span.set_attr("shards", len(partials))
            t1 = time.perf_counter()
            with obs_trace.child_span("merge") as span:
                out = self._merge(split.merge, partials)
                span.set_attr("rows", out.num_rows)
            t2 = time.perf_counter()
            if kind == "coshard":
                report = self._coshard_report(split, extra)
            else:
                report = self._scatter_report_for(query, split, route)
            report = dc_replace(
                report, timings={"scatter_s": t1 - t0, "merge_s": t2 - t1}
            )
            return out, report
        return self._run_fallback(query, extra, session=session)

    def _scatter(self, partial: ast.Select, session=None) -> list[Table]:
        # mid-migration the scatter set is the union of old and incoming
        # shards (incoming live slices are empty until the commit), so
        # every row is seen exactly once regardless of migration progress
        _SCATTER_FANOUT.observe(len(self.shards))
        # pool threads do not inherit the ambient context: capture the
        # parent span here and re-open a child inside each task (whose
        # context manager makes it ambient for the shard's wire call)
        parent = obs_trace.current_span()

        def run(pair):
            index, shard = pair
            cm = (
                parent.tracer.span("shard", parent=parent)
                if parent is not None
                else obs_trace.NOOP_SPAN
            )
            with cm as span:
                table = shard.execute_partial(partial, session=session)
                span.set_attr("shard", index)
                span.set_attr("rows", table.num_rows)
                return table

        if len(self.shards) == 1:
            return [run((0, self.shards[0]))]
        return list(self._pool.map(run, enumerate(self.shards)))

    def _scatter_prepared(
        self, handles: list[tuple], params: Sequence, session=None
    ) -> list[Table]:
        parent = obs_trace.current_span()

        def run_once(pair):
            shard, handle = pair
            result_id, _ = shard.execute_prepared(
                handle, list(params), session=session
            )
            try:
                return shard.fetch_rows(result_id, None)
            finally:
                try:
                    shard.close_result(result_id)
                except Exception:
                    pass

        def run(indexed):
            index, pair = indexed
            cm = (
                parent.tracer.span("shard", parent=parent)
                if parent is not None
                else obs_trace.NOOP_SPAN
            )
            with cm as span:
                span.set_attr("shard", index)
                try:
                    table = run_once(pair)
                except ShardUnavailableError:
                    # a replica died mid-fetch and its group promoted a
                    # survivor: one transparent retry re-executes against
                    # the promoted member (a bare backend that is truly
                    # gone fails again and the typed error surfaces)
                    span.set_attr("retried", 1)
                    table = run_once(pair)
                span.set_attr("rows", table.num_rows)
                return table

        pairs = list(enumerate(handles))
        _SCATTER_FANOUT.observe(len(pairs))
        if len(pairs) == 1:
            return [run(pairs[0])]
        return list(self._pool.map(run, pairs))

    def _merge(self, merge_query: ast.Select, partials: list[Table]) -> Table:
        union = concat_tables(partials)
        catalog = Catalog()
        catalog.create(PARTIALS_TABLE, union)
        return Engine(catalog, self.udfs).execute(merge_query)

    def _group_pushdown_ok(self, query: ast.Select, sharded_name: str) -> bool:
        """Whether shard-local GROUP BY results are final for ``query``.

        True when the single GROUP BY key is a bare column that *is* the
        shard key of the one sharded table the query scans: the PRF routes
        equal key values to the same shard, so no group spans shards and
        per-shard grouped results concatenate into the global answer
        (ORDER BY / LIMIT still merge coordinator-side, so the ordering
        must be resolvable against the select outputs).  This route skips
        the coordinator re-group entirely -- and it also covers shapes the
        generic partial/merge planner must refuse, e.g. DISTINCT
        aggregates, because nothing is re-aggregated.
        """
        if not isinstance(query.from_clause, ast.TableRef):
            return False
        if query.from_clause.name.lower() != sharded_name:
            return False
        placement = self._placements.get(sharded_name)
        if placement is None or not placement.sharded:
            return False
        if query.distinct:
            # SELECT DISTINCT dedups across *groups*; shard-local results
            # cannot see a duplicate row produced by another shard's group
            return False
        if len(query.group_by) != 1:
            return False
        key = strip_table(query.group_by[0])
        if not isinstance(key, ast.Column):
            return False
        if key.name.lower() != placement.shard_column:
            return False
        # no subqueries anywhere (they could read other, unsliced tables)
        roots = [item.expr for item in query.items]
        roots += [e for e in (query.where, query.having) if e is not None]
        roots += list(query.group_by)
        roots += [o.expr for o in query.order_by]
        for root in roots:
            for node in ast.walk(root):
                if isinstance(
                    node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)
                ):
                    return False
        return merge_order_resolvable(query)

    # -- co-sharded joins ------------------------------------------------------

    def _coshard_info(self, query: ast.Select) -> Optional[CoshardInfo]:
        """Prove ``query``'s join runs shard-local; None when it cannot.

        The proof: the FROM clause is an inner/cross join tree of base
        tables, the query partial/merge-splits, and every *sharded* table
        reference is connected to every other by equi-join edges on the
        respective shard-key columns -- with all of them routed through
        one colocation group, so equal shard-key values provably share a
        shard.  Unsharded tables are broadcast in full, so each shard's
        join over (its co-located slices x broadcast dims) partitions the
        global join exactly.

        LEFT joins are refused outright: a preserved row on the broadcast
        side would NULL-extend once per shard, and proving which side is
        preserved buys little over the fallback.
        """
        refs = base_table_refs(query.from_clause)
        if refs is None or len(refs) < 2:
            return None
        stack = [query.from_clause]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Join):
                if node.kind not in ("inner", "cross"):
                    return None
                stack.extend((node.left, node.right))
        reason = ineligibility(
            query,
            self.udfs,
            lambda n: n.lower() in self._placements,
            multi_table=True,
        )
        if reason is not None:
            return None
        bindings: dict[str, str] = {}
        sharded_bindings: dict[str, Placement] = {}
        dims: list[str] = []
        for ref in refs:
            binding = ref.binding.lower()
            table = ref.name.lower()
            bindings[binding] = table
            placement = self._placements.get(table)
            if placement is not None and placement.sharded:
                sharded_bindings[binding] = placement
            elif table not in dims:
                dims.append(table)
        if not sharded_bindings:
            return None  # unreachable from _classify (a sharded ref exists)
        tables = {p.table for p in sharded_bindings.values()}
        group = None
        if len(tables) > 1:
            groups = {p.colocate for p in sharded_bindings.values()}
            group = groups.pop() if len(groups) == 1 else None
            if group is None:
                # different (or no) colocation groups: equal shard-key
                # values route through independent PRF subkeys and may
                # land on different shards
                return None
        if len(sharded_bindings) > 1 and not self._coshard_connected(
            query, sharded_bindings
        ):
            return None
        return CoshardInfo(
            sharded=tuple(sorted(tables)), dims=tuple(dims), group=group
        )

    def _coshard_connected(
        self, query: ast.Select, sharded_bindings: dict
    ) -> bool:
        """Union-find: shard-key equi-edges connect every sharded binding."""
        parent = {binding: binding for binding in sharded_bindings}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        roots = list(join_conditions(query.from_clause))
        if query.where is not None:
            roots.append(query.where)
        conjuncts = []
        while roots:
            node = roots.pop()
            if isinstance(node, ast.BinaryOp) and node.op == "and":
                roots.extend((node.left, node.right))
            else:
                conjuncts.append(node)
        for conjunct in conjuncts:
            if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
                continue
            left = self._shard_key_binding(conjunct.left, sharded_bindings)
            right = self._shard_key_binding(conjunct.right, sharded_bindings)
            if left is not None and right is not None and left != right:
                parent[find(left)] = find(right)
        return len({find(binding) for binding in sharded_bindings}) == 1

    @staticmethod
    def _shard_key_binding(
        expr: ast.Expr, sharded_bindings: dict
    ) -> Optional[str]:
        """The sharded binding whose shard-key column ``expr`` is, else None.

        Rewritten equalities compare *tokens*: both sides of one ``=``
        share a single mask, so token equality is plaintext equality, and
        the token expression keeps its subject as the first argument of
        ``sdb_keyupdate`` / ``sdb_mul_plain`` / ``sdb_enc`` (the last is
        the deterministic ring encoding an insensitive join key gets) --
        peel those down to the base column.
        """
        while (
            isinstance(expr, ast.FuncCall)
            and expr.name.lower() in ("sdb_keyupdate", "sdb_mul_plain", "sdb_enc")
            and expr.args
        ):
            expr = expr.args[0]
        if not isinstance(expr, ast.Column):
            return None
        name = expr.name.lower()
        if expr.table is not None:
            binding = expr.table.lower()
            placement = sharded_bindings.get(binding)
            if placement is not None and placement.shard_column == name:
                return binding
            return None
        # bare column: a valid query binds it to the unique table holding
        # that name, so a name matching exactly one sharded binding's
        # shard key is that binding (two matches = ambiguous, and the
        # shards would reject the query anyway)
        matches = [
            binding
            for binding, placement in sharded_bindings.items()
            if placement.shard_column == name
        ]
        return matches[0] if len(matches) == 1 else None

    def _ensure_broadcasts(self, dims: tuple) -> None:
        """Broadcast full copies of unsharded ``dims`` to every shard.

        Cached until DML touches a source table.  Like fallback
        materialization, the cache is validated against the shards' live
        catalogs, so another coordinator's invalidation is honored.
        """
        if not dims:
            return
        with self._mat_lock:
            for name in dims:
                target = COSHARD_PREFIX + name.lower()
                if name.lower() in self._broadcast and all(
                    target in self._shard_table_names(shard)
                    for shard in self.shards
                ):
                    continue
                # stream the dim table chunk by chunk: each window ships to
                # every shard (in parallel) before the next is fetched, so
                # the coordinator holds one bounded chunk at a time
                first = True
                for chunk in _gather_chunks(self.primary, name):
                    if not first and not chunk.num_rows:
                        break
                    replace = first

                    def ship(shard, c=chunk, replace=replace):
                        # per-shard copy: in-process shards would otherwise
                        # alias one Table object and appends would double up
                        copy = c.slice(0)
                        if replace:
                            shard.store_table(target, copy, replace=True)
                        else:
                            shard.append_table(target, copy)

                    list(self._pool.map(ship, self.shards))
                    first = False
                self._broadcast.add(name.lower())

    @staticmethod
    def _shard_table_names(shard) -> set:
        names_fn = getattr(shard, "catalog_names", None)
        if callable(names_fn):  # remote shard: the CATALOG wire op
            return set(names_fn())
        return set(shard.catalog.names())

    def _coshard_report(
        self, split: SplitPlan, info: CoshardInfo
    ) -> ScatterReport:
        joined = ", ".join(info.sharded)
        scattered = len(self.shards)
        leakage = [
            f"cluster: each shard sees the partial join over its "
            f"co-located slices of {joined} (per-shard cardinalities)",
        ]
        if info.group:
            leakage.append(
                f"cluster: colocation group {info.group!r} reveals "
                "cross-table co-residency of equal shard-key values"
            )
        for name in info.dims:
            leakage.append(
                f"cluster: full (encrypted) copy of {name!r} broadcast to "
                "every shard for this join"
            )
        return ScatterReport(
            mode="coshard",
            shards=scattered,
            reason=(
                f"co-sharded join: partial {split.kind} over {scattered} "
                f"shard(s), {joined} joined shard-locally"
            ),
            leakage=tuple(leakage),
        )

    def _scatter_report_for(
        self, query: ast.Select, split: SplitPlan, route: tuple
    ) -> ScatterReport:
        table_name = query.from_clause.name.lower()
        scattered = len(self.shards)
        if route[1] == "pushdown":
            reason = (
                f"shard-local GROUP BY pushdown (group key is the shard key) "
                f"over {scattered} shard(s)"
            )
        else:
            reason = f"partial {split.kind} over {scattered} shard(s)"
        return ScatterReport(
            mode="scatter",
            shards=scattered,
            reason=reason,
            leakage=(
                f"cluster: each shard sees the partial query over its PRF "
                f"bucket slice of {table_name!r} (per-shard cardinalities)",
            ),
        )

    def _run_fallback(
        self, query: ast.Select, sharded_names: tuple, session=None
    ) -> tuple[Table, ScatterReport]:
        # NB: the materialized copies gather *committed* slices, so a
        # fallback query inside a transaction reads committed state for
        # sharded tables (primary-resident tables still see the overlay)
        mapping = {name: self._materialize(name) for name in sharded_names}
        renamed = rename_tables(query, mapping)
        gathered = ", ".join(sorted(sharded_names))
        report = ScatterReport(
            mode="fallback",
            shards=self.num_shards,
            reason=(
                "non-shardable query; gathered "
                f"{gathered} to the primary shard"
            ),
            leakage=tuple(
                f"cluster: full (encrypted) copy of {name!r} broadcast to "
                "the primary shard for this query"
                for name in sorted(sharded_names)
            ),
        )
        return self.primary.execute(renamed, session=session), report

    def _materialize(self, name: str) -> str:
        """Gather every slice of ``name`` onto the primary; cached until DML.

        The cache is validated against the primary's live catalog, not just
        this coordinator's memory: another coordinator's DML invalidation
        drops the shared copy, and trusting a local flag would point the
        fallback query at a table that no longer exists.
        """
        full_name = MATERIALIZED_PREFIX + name.lower()
        # materialization is a read-path operation (fallback queries run
        # under the shared lock side) that writes a cache relation on the
        # primary; its own mutex keeps concurrent readers from gathering
        # the same table twice, and the write lock's exclusion against all
        # readers keeps DML invalidation race-free against it
        with self._mat_lock:
            if name.lower() in self._materialized:
                if full_name in self._primary_table_names():
                    return full_name
                self._materialized.discard(name.lower())
            # streamed gather: fetch every shard's first window in parallel
            # (small tables -- the common case -- finish in that one round
            # trip per shard, exactly like the old whole-slice gather), then
            # drain any longer slice chunk by chunk so the coordinator and
            # each wire frame hold at most GATHER_CHUNK_ROWS rows
            heads = list(
                self._pool.map(
                    lambda shard: shard.shard_dump(
                        name, offset=0, count=GATHER_CHUNK_ROWS
                    ),
                    self.shards,
                )
            )
            stored = False
            for shard, head in zip(self.shards, heads):
                if not stored:
                    # first chunk carries the schema even when empty
                    self.primary.store_table(full_name, head, replace=True)
                    stored = True
                elif head.num_rows:
                    self.primary.append_table(full_name, head)
                if head.num_rows == GATHER_CHUNK_ROWS:
                    for chunk in _gather_chunks(
                        shard, name, offset=head.num_rows
                    ):
                        if not chunk.num_rows:
                            break
                        self.primary.append_table(full_name, chunk)
            self._materialized.add(name.lower())
            return full_name

    def _primary_table_names(self) -> set:
        names_fn = getattr(self.primary, "catalog_names", None)
        if callable(names_fn):  # remote primary: the CATALOG wire op
            return set(names_fn())
        return set(self.primary.catalog.names())

    def _invalidate_materialized(self, name: str) -> None:
        # drop unconditionally, not gated on this coordinator's own cache
        # set: another coordinator attached to the same shards may have
        # materialized the copy, and a stale one silently serves pre-DML
        # results to its fallback queries
        self._materialized.discard(name.lower())
        try:
            self.primary.drop_table(MATERIALIZED_PREFIX + name.lower())
        except Exception:
            pass  # no cached copy anywhere (or already dropped)
        self._broadcast.discard(name.lower())
        for shard in self.shards:
            try:
                shard.drop_table(COSHARD_PREFIX + name.lower())
            except Exception:
                pass  # no broadcast copy here (or already dropped)

    # -- DML -----------------------------------------------------------------

    def execute_dml(self, statement, session=None) -> int:
        """Route DML: primary tables go to the primary, sharded ones scatter.

        Subqueries inside a WHERE must see *whole* tables, never a shard's
        slice: sharded tables read by a primary-routed statement are
        materialized like the SELECT fallback, and a scattered UPDATE/
        DELETE that reads any table broadcasts full copies to every shard
        for the duration of the statement.  Sharded INSERTs need PRF
        buckets (the proxy computes them from plaintext), so they arrive
        through :meth:`insert_routed` instead.
        """
        if isinstance(statement, str):
            from repro.sql.parser import parse_statement

            statement = parse_statement(statement)
        with self._admit(session), self._lock.write_locked():
            target = statement.table.lower()
            placement = self._placements.get(target)
            txn_key = self._txn_key(session)
            in_txn = txn_key in self._txn_sessions
            if (
                not in_txn
                and self._migration is not None
                and target in self._migration.tables
            ):
                # an UPDATE/DELETE may change or remove mover rows that a
                # copy pass already staged: every chunk re-copies
                # (_state_lock: migration_pending iterates these sets).
                # In-transaction DML defers this to commit -- the slices
                # only change when the write set folds in.
                with self._state_lock:
                    self._migration.mark_all_dirty(target)
            # tables the statement *reads* (subquery TableRefs; the DML
            # target itself is a plain name field, not a TableRef)
            read_refs = referenced_tables(statement)
            if placement is None or not placement.sharded:
                sharded_refs = tuple(
                    name for name in read_refs
                    if (p := self._placements.get(name)) is not None
                    and p.sharded
                )
                if sharded_refs:
                    statement = rename_tables(
                        statement,
                        {name: self._materialize(name) for name in sharded_refs},
                    )
                affected = self.primary.execute_dml(statement, session=session)
                if in_txn:
                    self._txn_sessions[txn_key].add(target)
                else:
                    # epoch bumps only after the apply succeeded: a failed
                    # statement changes nothing, so open snapshots stay valid
                    self._epoch += 1
                    self._invalidate_materialized(target)
                return affected
            if isinstance(statement, ast.Insert):
                raise ShardError(
                    f"INSERT into sharded table {statement.table!r} must be "
                    "routed by the proxy (insert_routed)"
                )
            # UPDATE / DELETE scatter to every slice; counts sum
            try:
                if read_refs:
                    affected = self._scatter_dml_with_reads(
                        statement, read_refs, session=session
                    )
                else:
                    affected = sum(
                        self._pool.map(
                            lambda shard: shard.execute_dml(
                                statement, session=session
                            ),
                            self.shards,
                        )
                    )
            except Exception:
                if not in_txn:
                    # some slices may have applied before the failure:
                    # cached copies can no longer be trusted
                    self._epoch += 1
                    self._invalidate_materialized(target)
                raise
            if in_txn:
                self._txn_sessions[txn_key].add(target)
            else:
                self._epoch += 1
                self._invalidate_materialized(target)
            return affected

    def _scatter_dml_with_reads(
        self, statement, read_refs: list[str], session=None
    ) -> int:
        """Scatter DML whose WHERE reads other tables (or the target itself).

        Every shard evaluates subqueries against broadcast *full* copies
        (gathered for sharded tables, the primary's relation otherwise),
        so shard-local slices never change the statement's semantics.
        The copies are per-statement temporaries, dropped afterwards.
        """
        mapping = {}
        try:
            for name in read_refs:
                placement = self._placements.get(name)
                if placement is not None and placement.sharded:
                    slices = list(
                        self._pool.map(
                            lambda shard, n=name: shard.shard_dump(n),
                            self.shards,
                        )
                    )
                    full = concat_tables(slices)
                else:
                    full = self.primary.shard_dump(name)
                temp = BROADCAST_PREFIX + name
                for shard in self.shards:
                    shard.store_table(temp, full, replace=True)
                mapping[name] = temp
            renamed = rename_tables(statement, mapping)
            return sum(
                self._pool.map(
                    lambda shard: shard.execute_dml(renamed, session=session),
                    self.shards,
                )
            )
        finally:
            for temp in mapping.values():
                for shard in self.shards:
                    try:
                        shard.drop_table(temp)
                    except Exception:
                        pass

    def insert_routed(
        self, statement: ast.Insert, buckets: Sequence[int], session=None
    ) -> int:
        """Scatter encrypted INSERT rows by their precomputed PRF buckets."""
        buckets = list(buckets)
        if len(buckets) != len(statement.rows):
            raise ShardError(
                f"bucket count {len(buckets)} != row count {len(statement.rows)}"
            )
        with self._lock.write_locked():
            target = statement.table.lower()
            placement = self._placements.get(target)
            if placement is None or not placement.sharded:
                raise ShardError(
                    f"table {statement.table!r} is not sharded; "
                    "use execute_dml"
                )
            txn_key = self._txn_key(session)
            in_txn = txn_key in self._txn_sessions
            residues = [routing_residue(bucket) for bucket in buckets]
            # rows land on the *committed* topology (the old one, mid-
            # migration); chunks an insert touches go back on the pending
            # list so the migration re-copies them before it commits.
            # In-transaction inserts defer this to commit time.
            if (
                not in_txn
                and self._migration is not None
                and target in self._migration.tables
            ):
                # _state_lock: the driver's migration_pending() iterates
                # these sets without holding the execution lock
                with self._state_lock:
                    self._migration.mark_dirty(
                        target,
                        {self._migration.plan.chunk_of(r) for r in residues},
                    )
            count = self.num_shards
            placement_map = self.topology.placement_map
            columns = tuple(statement.columns or ()) + (BUCKET_COLUMN,)
            groups: list[list] = [[] for _ in range(count)]
            for row, residue in zip(statement.rows, residues):
                groups[placement_map.shard_of(residue)].append(
                    tuple(row) + (ast.Literal(residue),)
                )
            affected = 0
            try:
                for shard, rows in zip(self.shards[:count], groups):
                    if not rows:
                        continue
                    affected += shard.execute_dml(
                        ast.Insert(
                            table=statement.table,
                            columns=columns,
                            rows=tuple(rows),
                        ),
                        session=session,
                    )
            except Exception:
                if not in_txn and affected:
                    # earlier shards already appended: cached copies and
                    # open snapshots must not survive a half-routed insert
                    self._epoch += 1
                    self._invalidate_materialized(statement.table)
                raise
            if in_txn:
                self._txn_sessions[txn_key].add(target)
            else:
                # epoch bumps only after every routed slice applied
                self._epoch += 1
                self._invalidate_materialized(statement.table)
            return affected

    # -- transactions ---------------------------------------------------------
    #
    # A cluster transaction is the union of per-shard write sets for one
    # session: BEGIN broadcasts so every shard opens the session's
    # overlay, in-flight DML routes normally (carrying the session), and
    # COMMIT runs two-phase commit (repro.cluster.txn) so the fold-in is
    # all-or-none across shards even if the coordinator dies mid-commit.

    def _txn_key(self, session):
        """The tracking key ``session`` addresses (anonymous claims all).

        Mirrors the per-shard manager: a legacy anonymous transaction
        (begun with no session) governs every session's statements, so a
        session without its own transaction resolves to it.
        """
        if session not in self._txn_sessions and None in self._txn_sessions:
            return None
        return session

    def begin(self, session=None) -> None:
        with self._lock.write_locked():
            if (
                session in self._txn_sessions
                or None in self._txn_sessions
                or (session is None and self._txn_sessions)
            ):
                raise TransactionStateError("transaction already in progress")
            started = []
            try:
                for shard in self.shards:
                    shard.begin(session=session)
                    started.append(shard)
            except Exception:
                for shard in started:
                    try:
                        shard.rollback(session=session)
                    except Exception:
                        pass
                raise
            self._txn_sessions[session] = set()

    def commit(self, session=None, on_step=None) -> None:
        with self._lock.write_locked():
            key = self._txn_key(session)
            if key not in self._txn_sessions:
                raise TransactionStateError("no transaction in progress")
            try:
                report = commit_cluster(self, session, on_step=on_step)
            except Exception:
                # a failure after prepare may have left the commit record
                # (and partially finalized shards) behind for recovery to
                # roll forward, so no cache over the written tables can
                # be trusted any more
                written = self._txn_sessions.pop(key, set())
                self._epoch += 1
                for name in written:
                    self._invalidate_materialized(name)
                raise
            written = self._txn_sessions.pop(key, set())
            self.last_txn_commit = report
            if not report["tables"]:
                return
            self._epoch += 1
            for name in set(report["tables"]) | written:
                self._invalidate_materialized(name)
                if (
                    self._migration is not None
                    and name in self._migration.tables
                ):
                    # committed rows changed the slices under the copy
                    # passes: every chunk of the table re-copies
                    with self._state_lock:
                        self._migration.mark_all_dirty(name)

    def rollback(self, session=None) -> None:
        with self._lock.write_locked():
            self._txn_sessions.pop(self._txn_key(session), None)
            self._epoch += 1
            self._broadcast_txn("rollback", session=session)
            # committed state never changed (the write sets were private
            # overlays), so materialized/broadcast caches stay valid

    def _broadcast_txn(self, action: str, session=None) -> None:
        first_error = None
        for shard in self.shards:
            try:
                getattr(shard, action)(session=session)
            except Exception as exc:
                first_error = first_error or exc
        if first_error is not None:
            raise first_error

    # -- prepared statements / streaming fetch ---------------------------------

    def prepare_query(self, query, session=None) -> int:
        if isinstance(query, str):
            query = parse(query)
        if not isinstance(query, ast.Select):
            raise ValueError("prepare_query expects a SELECT")
        with self._state_lock:
            stmt_id = next(self._handle_ids)
            self._prepared[stmt_id] = _ClusterStatement(query)
            return stmt_id

    def execute_prepared(
        self, stmt_id: int, params: Sequence = (), session=None
    ) -> tuple[int, int]:
        """Execute a prepared SELECT; read-only against the cluster.

        The scatter itself runs under the shared side of the execution
        lock, so prepared executions from different sessions overlap on
        the shard pool; each execution's routing report is recorded per
        result id (never via the racy ``last_scatter`` global).
        """
        with self._state_lock:
            try:
                statement = self._prepared[stmt_id]
            except KeyError:
                raise KeyError(f"unknown prepared statement {stmt_id}") from None
        t_start = time.perf_counter()
        with self._admit(session), self._lock.read_locked():
            mark = self.failover.mark()
            table, report = statement.execute(
                self, tuple(params), session=session
            )
            if report is not None:
                report = self._with_failover(report, mark)
        if report is not None:
            self.slowlog.maybe_record(
                time.perf_counter() - t_start,
                f"cluster-{report.mode}",
                f"route={report.mode} shards={report.shards} "
                f"({report.reason})",
            )
        with self._state_lock:
            result_id = next(self._handle_ids)
            self._results[result_id] = _MaterializedResult(table)
            if report is not None:
                self._scatter_by_result[result_id] = report
        self.last_scatter = report
        return result_id, table.num_rows

    def scatter_report(self, result_id: int) -> Optional[ScatterReport]:
        """The routing report of the execution that produced ``result_id``."""
        with self._state_lock:
            return self._scatter_by_result.get(result_id)

    def fetch_rows(self, result_id: int, count: Optional[int] = None) -> Table:
        with self._state_lock:
            try:
                entry = self._results[result_id]
            except KeyError:
                raise KeyError(f"unknown result set {result_id}") from None
        # materialized results fetch lock-free: the table was computed
        # atomically at execute time and belongs to one session
        return entry.fetch(count)

    def close_result(self, result_id: int) -> None:
        with self._state_lock:
            self._results.pop(result_id, None)
            self._scatter_by_result.pop(result_id, None)

    def close_prepared(self, stmt_id: int) -> None:
        with self._state_lock:
            statement = self._prepared.pop(stmt_id, None)
        if statement is not None:
            statement.close(self)

    # -- elastic resharding (driven by repro.cluster.rebalance) -----------------
    #
    # The coordinator owns the mechanics -- topology state, staging,
    # commit record, recovery -- while the driver
    # (:func:`repro.cluster.rebalance.rebalance_cluster`) owns policy and
    # the DO-side re-keying callback (the coordinator itself holds no key
    # material, so it cannot re-key rows; it is handed re-keyed slices).

    def begin_rebalance(self, plan: RebalancePlan, incoming: Sequence = ()):
        """Open a migration: attach incoming backends, init pending chunks."""
        with self._lock.write_locked():
            if self._migration is not None:
                raise ShardError("a rebalance is already in progress")
            if plan.old_count != self.num_shards:
                raise ShardError(
                    f"plan starts from {plan.old_count} shard(s) but the "
                    f"cluster has {self.num_shards}"
                )
            if tuple(plan.old_weights) != tuple(self.topology.weights):
                raise ShardError(
                    f"plan starts from weights {tuple(plan.old_weights)} but "
                    f"the committed topology has {tuple(self.topology.weights)}"
                )
            incoming_count = 0
            if plan.new_count > self.num_shards:
                needed = plan.new_count - len(self.shards)
                if len(incoming) < needed:
                    raise ShardError(
                        f"growing to {plan.new_count} shard(s) needs "
                        f"{needed} new backend(s), got {len(incoming)}"
                    )
                joining = list(incoming)[:needed]
                # incoming shards need (empty) live slices of every
                # sharded table so scatter partials run everywhere from
                # the first moment they are part of the cluster; dump the
                # primary's slice once per table (schema only -- the rows
                # are dropped) rather than once per incoming backend
                empties = {
                    name: self.shards[0].shard_dump(name).take([])
                    for name, placement in self._placements.items()
                    if placement.sharded
                }
                for offset, backend in enumerate(joining):
                    index = len(self.shards) + offset
                    for name, empty in empties.items():
                        backend.shard_store(
                            name,
                            empty,
                            placement={
                                "index": index,
                                "of": plan.new_count,
                                "shard_by": self._placements[name].shard_column
                                or "",
                                "colocate": self._colocate_of(name),
                            },
                            replace=True,
                        )
                for offset, backend in enumerate(joining):
                    if isinstance(backend, ShardGroup):
                        backend.attach(
                            self.failover, len(self.shards) + offset
                        )
                self.shards.extend(joining)
                incoming_count = needed
            migration = ClusterMigration(plan=plan, incoming=incoming_count)
            moved = set(plan.moved_chunks())
            for name, placement in self._placements.items():
                if placement.sharded:
                    migration.tables[name] = placement.shard_column
                    migration.pending[name] = set(moved)
            self._migration = migration
            return migration

    def migration_pending(self) -> tuple:
        """(table, chunk) pairs still needing a copy pass (dirty included)."""
        with self._state_lock:
            if self._migration is None:
                return ()
            return tuple(
                sorted(
                    (table, chunk)
                    for table, chunks in self._migration.pending.items()
                    for chunk in chunks
                )
            )

    def copy_chunk(self, table: str, chunk: int, rekey) -> int:
        """Copy one chunk's movers into destination staging, re-keyed.

        Runs under the *shared* side of the execution lock: concurrent
        reads proceed, while writers (which would dirty the chunk under
        our feet) are excluded for the duration of the copy.  ``rekey``
        is the DO-side callback ``(table_name, slice) -> re-keyed slice``.
        """
        table = table.lower()
        with self._lock.read_locked():
            migration = self._migration
            if migration is None or table not in migration.tables:
                return 0
            plan = migration.plan
            # a re-copied (dirty) chunk replaces whatever it staged before
            for shard in self.shards[: plan.new_count]:
                shard.shard_migrate_unstage(table, plan.num_chunks, chunk)
            migration.clear_chunk_moves(table, chunk)
            shard_by = migration.tables[table]
            moved = 0
            for src in range(plan.old_count):
                movers = self.shards[src].shard_migrate_extract(
                    table, plan.num_chunks, chunk,
                    plan.old_count, plan.new_count,
                    old_weights=plan.old_weights or None,
                    new_weights=plan.new_weights or None,
                )
                if movers.num_rows == 0:
                    continue
                rekeyed = rekey(table, movers)
                residues = rekeyed.column(BUCKET_COLUMN)
                new_map = plan.new_map
                groups: dict[int, list] = {}
                for i, residue in enumerate(residues):
                    dst = new_map.shard_of(residue)
                    groups.setdefault(dst, []).append(i)
                for dst, indices in sorted(groups.items()):
                    self.shards[dst].shard_migrate_stage(
                        table,
                        rekeyed.take(indices),
                        placement={
                            "index": dst,
                            "of": plan.new_count,
                            "shard_by": shard_by or "",
                            "colocate": self._colocate_of(table),
                        },
                    )
                    migration.record_move(table, chunk, src, dst, len(indices))
                    moved += len(indices)
            with self._state_lock:
                pending = migration.pending.get(table)
                if pending is not None:
                    pending.discard(chunk)
            return moved

    def commit_rebalance(self, rekey, on_step=None) -> ClusterMigration:
        """Settle dirty chunks, write the commit record, flip the topology.

        Exclusive: sessions queue behind the write lock for the duration
        of the final settle + promote/purge (copy passes already moved the
        bulk).  Once the commit record is written the new topology wins --
        a crash after that point is rolled *forward* by recovery.
        """
        def step(label: str) -> None:
            if on_step is not None:
                on_step(label)

        with self._lock.write_locked():
            migration = self._migration
            if migration is None:
                raise ShardError("no rebalance in progress")
            plan = migration.plan
            # final settle: chunks dirtied by concurrent writes re-copy
            # here, under exclusion, so staging is exact at the record
            while True:
                pending = self.migration_pending()
                if not pending:
                    break
                for table, chunk in pending:
                    step(f"settle:{table}:{chunk}")
                    self.copy_chunk(table, chunk, rekey)
            step("commit:record")
            self._store_commit_record(migration)
            tables = dict(migration.tables)
            self._complete_commit(
                tables, plan.old_count, plan.new_count, on_step=on_step,
                new_weights=plan.new_weights,
            )
            self._migration = None
            self._epoch += 1
            for name in list(self._materialized):
                self._invalidate_materialized(name)
            return migration

    def recover_rebalance(self) -> str:
        """Resolve an interrupted rebalance; returns 'forward' | 'back' | 'none'.

        *With* a commit record (or an already-persisted new topology), the
        commit is completed -- the new topology wins.  *Without* one, the
        old topology wins: staging is dropped and incoming backends are
        detached.  Also runs implicitly when a fresh coordinator attaches
        to shards left behind by a crashed one.
        """
        with self._lock.write_locked():
            migration, self._migration = self._migration, None
            names = self._primary_table_names()
            if COMMIT_TABLE in names:
                self._roll_forward_commit()
                self._epoch += 1
                return "forward"
            if (
                migration is not None
                and TOPOLOGY_TABLE in names
                and self._committed_count() == migration.plan.new_count
            ):
                # crashed in the tiny window after the record was consumed:
                # the new topology is already persisted and complete
                self.topology = ShardTopology(
                    epoch=self.topology.epoch,
                    shard_count=self._committed_count(),
                    weights=self._committed_weights(),
                )
                self._epoch += 1
                return "forward"
            tables = (
                list(migration.tables)
                if migration is not None
                else [n for n, p in self._placements.items() if p.sharded]
            )
            for shard in self.shards:
                for table in tables:
                    try:
                        shard.shard_migrate_abort(table)
                    except Exception:
                        pass  # unreachable shard; staging is inert
            if migration is not None and migration.incoming:
                keep = len(self.shards) - migration.incoming
                detached, self.shards = self.shards[keep:], self.shards[:keep]
                for backend in detached:
                    for table in tables:
                        try:
                            backend.drop_table(table)
                        except Exception:
                            pass
                    closer = getattr(backend, "close", None)
                    if callable(closer):
                        try:
                            closer()
                        except Exception:
                            pass
            self._epoch += 1
            return "back" if migration is not None else "none"

    def _committed_count(self) -> int:
        record = self.primary.shard_dump(TOPOLOGY_TABLE)
        if record.num_rows == 0:
            return self.topology.shard_count
        return int(record.column("shard_count")[-1])

    def _committed_weights(self) -> tuple:
        record = self.primary.shard_dump(TOPOLOGY_TABLE)
        if record.num_rows == 0 or "weights" not in record.schema.names:
            return self.topology.weights
        return _parse_weights(record.column("weights")[-1])

    def _store_commit_record(self, migration: ClusterMigration) -> None:
        from repro.engine.schema import ColumnSpec, DataType, Schema

        plan = migration.plan
        schema = Schema(
            (
                ColumnSpec("name", DataType.STRING),
                ColumnSpec("shard_by", DataType.STRING),
                ColumnSpec("old_n", DataType.INT),
                ColumnSpec("new_n", DataType.INT),
                ColumnSpec("num_chunks", DataType.INT),
                ColumnSpec("new_weights", DataType.STRING),
            )
        )
        names = sorted(migration.tables)
        if not names:
            # no sharded tables: the record still has to carry the target
            # shape, or recovery could not flip the topology
            names = [""]
        columns = [
            list(names),
            [migration.tables.get(name) or "" for name in names],
            [plan.old_count] * len(names),
            [plan.new_count] * len(names),
            [plan.num_chunks] * len(names),
            [_weights_str(plan.new_weights)] * len(names),
        ]
        self.primary.store_table(COMMIT_TABLE, Table(schema, columns), replace=True)

    # -- introspection ---------------------------------------------------------

    def shard_status(self) -> list[dict]:
        """Live per-shard status (the shell's ``\\shards`` view).

        Coordinator-internal temporaries (fallback materializations,
        per-statement broadcast copies) are filtered out: they are cache
        state, not relations an operator placed.
        """
        internal = INTERNAL_PREFIXES
        with self._lock.read_locked():
            out = []
            for index, shard in enumerate(self.shards):
                status = dict(shard.shard_status())
                status["tables"] = {
                    name: count
                    for name, count in status.get("tables", {}).items()
                    if not name.startswith(internal)
                }
                if status.get("shard_id") is None:
                    status["shard_id"] = index
                status["backend"] = type(shard).__name__
                status["primary"] = index == 0
                out.append(status)
            return out
