"""PRF row routing: which shard holds a row, without telling the shard why.

Placement must be *deterministic* (INSERTs land where the upload put equal
keys), *balanced* (buckets spread uniformly), and *oblivious to the
service providers* (a shard learns which rows it holds -- unavoidable --
but nothing about the shard-key values that put them there).  A keyed PRF
over the shard-key plaintext gives all three: the key lives in the data
owner's key store next to the column keys, the PRF is evaluated at the
proxy before encryption, and the SP-visible placement is
``bucket mod num_shards``.

What the SPs *do* learn is declared, like every other leakage in this
reproduction: co-residency of equal shard-key values and per-shard
cardinalities (see ``repro.core.security.DECLARED_LEAKAGE``).
"""

from __future__ import annotations

import datetime
import decimal
from dataclasses import dataclass

from repro.crypto.prf import derive_key, prf_int

#: Width of the routing PRF output.  Buckets are reduced modulo the shard
#: count, so the width just has to dwarf any realistic cluster size.
BUCKET_BITS = 64

#: Size of the *stored* routing space.  Shards persist each row's routing
#: residue ``bucket mod ROUTING_SPACE`` in the hidden ``__bucket`` column so
#: that elastic resharding can select movers shard-side without the routing
#: PRF key.  27720 = lcm(1..12): for any shard count that divides it (every
#: count up to 12), ``residue mod num_shards == bucket mod num_shards``, so
#: placement is identical to routing on the full bucket; larger clusters
#: stay deterministic and near-uniform.  The residue is declared leakage
#: (``repro.core.security.DECLARED_LEAKAGE``): it refines per-shard
#: co-residency into 27720 co-residency classes, still never the shard-key
#: values or the PRF key.
ROUTING_SPACE = 27720

#: Hidden column storing each row's routing residue on shard slices.
BUCKET_COLUMN = "__bucket"


def routing_residue(bucket: int) -> int:
    """The stored residue of one PRF bucket (see :data:`ROUTING_SPACE`)."""
    return bucket % ROUTING_SPACE


def shard_of_residue(residue: int, num_shards: int) -> int:
    """Which shard of an ``num_shards`` topology holds ``residue``."""
    if num_shards < 1:
        raise ValueError("a topology needs at least one shard")
    return residue % num_shards


@dataclass(frozen=True)
class ShardMap:
    """A full residue -> shard assignment for one topology.

    The uniform map is exactly ``residue % num_shards`` -- byte-for-byte
    the placement every earlier topology used, so uniform clusters are
    unaffected.  A *weighted* map assigns each residue by smooth weighted
    round-robin over integer capacities, giving every shard a share of the
    27720 residue classes proportional to its weight while keeping the
    assignment deterministic (both sides of the wire can rebuild it from
    the weight tuple alone -- maps never travel, weights do).
    """

    assignments: tuple

    def __post_init__(self):
        if len(self.assignments) != ROUTING_SPACE:
            raise ValueError(
                f"a shard map covers all {ROUTING_SPACE} residues"
            )

    @classmethod
    def uniform(cls, num_shards: int) -> "ShardMap":
        if num_shards < 1:
            raise ValueError("a topology needs at least one shard")
        return cls(tuple(r % num_shards for r in range(ROUTING_SPACE)))

    @classmethod
    def from_weights(cls, weights) -> "ShardMap":
        weights = tuple(int(w) for w in weights)
        if not weights:
            raise ValueError("a weighted topology needs at least one shard")
        if any(w < 1 for w in weights):
            raise ValueError("shard weights must be positive integers")
        if len(set(weights)) == 1:
            return cls.uniform(len(weights))
        total = sum(weights)
        current = [0] * len(weights)
        assignments = []
        for _ in range(ROUTING_SPACE):
            for index, weight in enumerate(weights):
                current[index] += weight
            best = max(range(len(weights)), key=lambda i: (current[i], -i))
            current[best] -= total
            assignments.append(best)
        return cls(tuple(assignments))

    @property
    def num_shards(self) -> int:
        return max(self.assignments) + 1

    def shard_of(self, residue: int) -> int:
        return self.assignments[residue % ROUTING_SPACE]

    def share_of(self, index: int) -> float:
        """Fraction of the residue space assigned to shard ``index``."""
        return self.assignments.count(index) / ROUTING_SPACE


def shard_map_for(num_shards: int, weights=None) -> ShardMap:
    """The placement map for a topology (uniform unless weighted).

    ``weights`` of length ``num_shards`` selects a weighted map; an empty
    or ``None`` weights tuple means uniform.  This is the one place both
    the coordinator and the shard-side migration ops derive placement
    from, so the two can never disagree.
    """
    if not weights:
        return ShardMap.uniform(num_shards)
    weights = tuple(int(w) for w in weights)
    if len(weights) != num_shards:
        raise ValueError(
            f"got {len(weights)} weights for {num_shards} shard(s)"
        )
    return ShardMap.from_weights(weights)


def canonical_bytes(value) -> bytes:
    """A type-stable byte encoding of one shard-key value.

    Two Python spellings of the same logical value (``1`` vs ``True``,
    ``decimal.Decimal("1.50")`` vs ``1.5``) must route identically, and two
    different values must never collide structurally, so each encoding is
    prefixed with a type tag.
    """
    if value is None:
        return b"n:"
    if isinstance(value, bool):
        return b"i:1" if value else b"i:0"
    if isinstance(value, int):
        return b"i:%d" % value
    if isinstance(value, (float, decimal.Decimal)):
        as_decimal = decimal.Decimal(str(value)).normalize()
        if as_decimal == as_decimal.to_integral_value():
            return b"i:%d" % int(as_decimal)
        return b"d:" + str(as_decimal).encode("utf-8")
    if isinstance(value, datetime.date):
        return b"t:" + value.isoformat().encode("utf-8")
    if isinstance(value, str):
        return b"s:" + value.encode("utf-8")
    raise TypeError(f"cannot route a {type(value).__name__} shard-key value")


def shard_bucket(
    routing_key: bytes, table: str, column: str, value, group: str = None
) -> int:
    """The routing bucket for one row (a ``BUCKET_BITS``-bit integer).

    The per-``(table, column)`` subkey means renaming or re-sharding a
    table draws an independent permutation, and equal values in different
    tables do not visibly co-locate.

    ``group`` names a *colocation group*: tables sharded into the same
    group share one subkey, so equal shard-key values land on the same
    shard across those tables -- the property that lets a co-sharded join
    run entirely shard-local.  The price is declared leakage: within a
    group, cross-table co-residency of equal shard-key values becomes
    visible to the SPs.
    """
    if group is not None:
        subkey = derive_key(routing_key, f"shard-group:{group.lower()}")
    else:
        subkey = derive_key(
            routing_key, f"shard:{table.lower()}.{column.lower()}"
        )
    return prf_int(subkey, canonical_bytes(value), BUCKET_BITS)
