"""PRF row routing: which shard holds a row, without telling the shard why.

Placement must be *deterministic* (INSERTs land where the upload put equal
keys), *balanced* (buckets spread uniformly), and *oblivious to the
service providers* (a shard learns which rows it holds -- unavoidable --
but nothing about the shard-key values that put them there).  A keyed PRF
over the shard-key plaintext gives all three: the key lives in the data
owner's key store next to the column keys, the PRF is evaluated at the
proxy before encryption, and the SP-visible placement is
``bucket mod num_shards``.

What the SPs *do* learn is declared, like every other leakage in this
reproduction: co-residency of equal shard-key values and per-shard
cardinalities (see ``repro.core.security.DECLARED_LEAKAGE``).
"""

from __future__ import annotations

import datetime
import decimal

from repro.crypto.prf import derive_key, prf_int

#: Width of the routing PRF output.  Buckets are reduced modulo the shard
#: count, so the width just has to dwarf any realistic cluster size.
BUCKET_BITS = 64

#: Size of the *stored* routing space.  Shards persist each row's routing
#: residue ``bucket mod ROUTING_SPACE`` in the hidden ``__bucket`` column so
#: that elastic resharding can select movers shard-side without the routing
#: PRF key.  27720 = lcm(1..12): for any shard count that divides it (every
#: count up to 12), ``residue mod num_shards == bucket mod num_shards``, so
#: placement is identical to routing on the full bucket; larger clusters
#: stay deterministic and near-uniform.  The residue is declared leakage
#: (``repro.core.security.DECLARED_LEAKAGE``): it refines per-shard
#: co-residency into 27720 co-residency classes, still never the shard-key
#: values or the PRF key.
ROUTING_SPACE = 27720

#: Hidden column storing each row's routing residue on shard slices.
BUCKET_COLUMN = "__bucket"


def routing_residue(bucket: int) -> int:
    """The stored residue of one PRF bucket (see :data:`ROUTING_SPACE`)."""
    return bucket % ROUTING_SPACE


def shard_of_residue(residue: int, num_shards: int) -> int:
    """Which shard of an ``num_shards`` topology holds ``residue``."""
    if num_shards < 1:
        raise ValueError("a topology needs at least one shard")
    return residue % num_shards


def canonical_bytes(value) -> bytes:
    """A type-stable byte encoding of one shard-key value.

    Two Python spellings of the same logical value (``1`` vs ``True``,
    ``decimal.Decimal("1.50")`` vs ``1.5``) must route identically, and two
    different values must never collide structurally, so each encoding is
    prefixed with a type tag.
    """
    if value is None:
        return b"n:"
    if isinstance(value, bool):
        return b"i:1" if value else b"i:0"
    if isinstance(value, int):
        return b"i:%d" % value
    if isinstance(value, (float, decimal.Decimal)):
        as_decimal = decimal.Decimal(str(value)).normalize()
        if as_decimal == as_decimal.to_integral_value():
            return b"i:%d" % int(as_decimal)
        return b"d:" + str(as_decimal).encode("utf-8")
    if isinstance(value, datetime.date):
        return b"t:" + value.isoformat().encode("utf-8")
    if isinstance(value, str):
        return b"s:" + value.encode("utf-8")
    raise TypeError(f"cannot route a {type(value).__name__} shard-key value")


def shard_bucket(
    routing_key: bytes, table: str, column: str, value, group: str = None
) -> int:
    """The routing bucket for one row (a ``BUCKET_BITS``-bit integer).

    The per-``(table, column)`` subkey means renaming or re-sharding a
    table draws an independent permutation, and equal values in different
    tables do not visibly co-locate.

    ``group`` names a *colocation group*: tables sharded into the same
    group share one subkey, so equal shard-key values land on the same
    shard across those tables -- the property that lets a co-sharded join
    run entirely shard-local.  The price is declared leakage: within a
    group, cross-table co-residency of equal shard-key values becomes
    visible to the SPs.
    """
    if group is not None:
        subkey = derive_key(routing_key, f"shard-group:{group.lower()}")
    else:
        subkey = derive_key(
            routing_key, f"shard:{table.lower()}.{column.lower()}"
        )
    return prf_int(subkey, canonical_bytes(value), BUCKET_BITS)
