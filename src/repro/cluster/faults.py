"""Deterministic fault injection for the cluster tier.

The crash suites need to kill a primary *between two specific backend
calls*, drop exactly one request, or slow a replica down -- reliably,
in-process, without real sockets.  A :class:`FaultInjector` is a registry
of named fault points; :meth:`FaultInjector.wrap` returns a
:class:`FaultyBackend` that forwards every method call to the real
backend after consulting the injector:

    injector = FaultInjector()
    backend = injector.wrap(SDBServer(shard_id=0), "shard0.primary")
    ...
    injector.kill("shard0.primary")        # every later call raises
    injector.drop_next("shard0.replica1", "execute_partial")
    injector.delay("shard0.replica1", 0.05)

A killed or dropped call raises :class:`~repro.api.exceptions.\
ShardUnavailableError` -- the same typed error a real dead socket
produces (see ``repro.net.client``) -- so the replication tier cannot
tell an injected fault from a genuine one.  ``on_op`` observers fire
*before* the fault check with the qualified label ``"<name>.<op>"``,
which is how tests trigger a kill at an exact operation boundary
("kill the primary the moment it starts streaming chunk 3").
"""

from __future__ import annotations

import threading
import time

from repro.api.exceptions import ShardUnavailableError

#: Backend attributes that are forwarded without a fault check: killing a
#: backend must not break introspection (``shard_status`` of *other*
#: members) or teardown.
_EXEMPT_OPS = frozenset({"close"})


class FaultInjector:
    """A shared registry of kill / drop / delay fault points."""

    def __init__(self):
        self._lock = threading.Lock()
        self._killed: set[str] = set()
        self._drops: dict[tuple, int] = {}
        self._delays: dict[str, float] = {}
        #: Observers called as ``hook(label)`` before every forwarded op,
        #: where ``label`` is ``"<backend-name>.<op>"``.  Hooks may call
        #: back into the injector (e.g. ``kill``) to arm a fault mid-run.
        self.on_op: list = []
        #: Every op label forwarded so far, in order (test introspection).
        self.log: list[str] = []

    def wrap(self, backend, name: str) -> "FaultyBackend":
        """A fault-checking proxy around ``backend`` registered as ``name``."""
        return FaultyBackend(backend, name, self)

    # -- arming faults ---------------------------------------------------------

    def kill(self, name: str) -> None:
        """Every subsequent call on ``name`` fails like a dead socket."""
        with self._lock:
            self._killed.add(name)

    def revive(self, name: str) -> None:
        with self._lock:
            self._killed.discard(name)

    def is_killed(self, name: str) -> bool:
        with self._lock:
            return name in self._killed

    def drop_next(self, name: str, op: str, count: int = 1) -> None:
        """Fail the next ``count`` calls of ``op`` on ``name``, then heal."""
        with self._lock:
            key = (name, op)
            self._drops[key] = self._drops.get(key, 0) + count

    def delay(self, name: str, seconds: float) -> None:
        """Sleep ``seconds`` before every call on ``name`` (0 clears)."""
        with self._lock:
            if seconds > 0:
                self._delays[name] = seconds
            else:
                self._delays.pop(name, None)

    # -- the check every forwarded call passes through -------------------------

    def check(self, name: str, op: str) -> None:
        label = f"{name}.{op}"
        for hook in list(self.on_op):
            hook(label)
        with self._lock:
            self.log.append(label)
            delay = self._delays.get(name, 0.0)
            if name in self._killed:
                raise ShardUnavailableError(
                    f"injected fault: backend {name!r} is down"
                )
            key = (name, op)
            remaining = self._drops.get(key, 0)
            if remaining > 0:
                if remaining == 1:
                    del self._drops[key]
                else:
                    self._drops[key] = remaining - 1
                raise ShardUnavailableError(
                    f"injected fault: dropped {label!r}"
                )
        if delay:
            time.sleep(delay)


class FaultyBackend:
    """A transparent, fault-checking wrapper around any backend.

    Forwards attribute access to the wrapped backend; callables are
    wrapped so the injector's :meth:`~FaultInjector.check` runs first.
    The wrapper is duck-type equivalent to what it wraps, so it can stand
    anywhere an ``SDBServer`` / ``RemoteServer`` / ``ShardGroup`` member
    can.
    """

    def __init__(self, backend, name: str, injector: FaultInjector):
        self.backend = backend
        self.name = name
        self.injector = injector

    def __getattr__(self, attr: str):
        target = getattr(self.backend, attr)
        if not callable(target):
            return target
        if attr in _EXEMPT_OPS:
            return target

        def forwarded(*args, **kwargs):
            self.injector.check(self.name, attr)
            return target(*args, **kwargs)

        forwarded.__name__ = attr
        return forwarded

    def __repr__(self) -> str:
        status = "down" if self.injector.is_killed(self.name) else "up"
        return f"<FaultyBackend {self.name} ({status}) around {self.backend!r}>"
