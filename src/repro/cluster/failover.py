"""Failure detection, replica promotion, and its durable record.

The replication tier (:mod:`repro.cluster.replica`) keeps the mechanics
of *serving* through failures; this module keeps the *decisions*:

* :class:`FailureDetector` -- turns one observed transport error into a
  verdict.  A member that fails a call is SUSPECT, not dead: the detector
  probes it (``ping``) and only a failed probe -- or repeated transient
  strikes -- confirms DOWN.  This keeps a single dropped request from
  evicting a healthy replica.
* :class:`FailoverManager` -- the shared event log and promotion
  authority for every replica group in one cluster.  Promotions bump a
  monotone *generation* and trigger the persistence callback, so the
  promoted topology outlives the coordinator that performed it.
* The durable record -- one row per replica group in the internal
  :data:`REPLICAS_TABLE` relation, written *through* shard 0's replica
  group (so the record itself is replicated): which ordinal is primary
  and under which generation.  A freshly attached coordinator adopts the
  highest-generation record it can read, exactly like the topology
  record of an elastic reshard (``__cluster_topology__``).

Promotion is idempotent by construction: every healthy member received
every committed write synchronously (a member that misses a write is
evicted on the spot), so "promote" only ever *selects* a caught-up
member -- it never moves data, and re-running it after a crash selects
the same member again.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

#: Shard-0 relation recording, per replica group, the promoted primary
#: ordinal and the promotion generation (monotone across coordinator
#: restarts).  Written through the replica group, so it survives the
#: death that caused the promotion.
REPLICAS_TABLE = "__cluster_replicas__"

# -- member states (strings, not an Enum: they travel in status dicts) --------
HEALTHY = "healthy"
SUSPECT = "suspect"
SYNCING = "syncing"
DOWN = "down"


@dataclass(frozen=True)
class FailoverEvent:
    """One observed failure-handling step, in occurrence order."""

    kind: str  # 'suspect' | 'evict' | 'promote' | 'join' | 'sync-abort'
    group: int  # coordinator shard index (-1: standalone group)
    ordinal: int  # member ordinal within its group
    detail: str = ""

    def __str__(self) -> str:
        where = f"shard{self.group}/replica{self.ordinal}"
        return f"{self.kind} {where}" + (f": {self.detail}" if self.detail else "")


class FailureDetector:
    """Confirm or clear a suspected member with an active probe.

    ``max_strikes`` bounds tolerance for *transient* faults: a member
    whose probe succeeds stays in rotation, but after ``max_strikes``
    failed calls it is declared DOWN anyway (a flapping replica is worse
    than a dead one).
    """

    def __init__(self, max_strikes: int = 3, ping_timeout: float = 2.0):
        self.max_strikes = max_strikes
        self.ping_timeout = ping_timeout
        self._strikes: dict = {}
        self._lock = threading.Lock()

    def confirm_down(self, key, member) -> bool:
        """True when ``member`` (which just failed a call) is really down."""
        probe = getattr(member, "ping", None)
        if not callable(probe):
            return True  # nothing to probe with: believe the failure
        try:
            alive = bool(probe())
        except Exception:
            alive = False
        if not alive:
            with self._lock:
                self._strikes.pop(key, None)
            return True
        with self._lock:
            strikes = self._strikes.get(key, 0) + 1
            self._strikes[key] = strikes
            if strikes >= self.max_strikes:
                del self._strikes[key]
                return True
        return False

    def clear(self, key) -> None:
        """Forget strikes after a successful call (the member recovered)."""
        with self._lock:
            self._strikes.pop(key, None)


class FailoverManager:
    """Shared promotion authority + event log for one cluster's groups."""

    def __init__(
        self,
        detector: Optional[FailureDetector] = None,
        persist: Optional[Callable[[], None]] = None,
    ):
        self.detector = detector if detector is not None else FailureDetector()
        self._persist = persist
        self._lock = threading.RLock()
        self.events: list[FailoverEvent] = []
        #: monotone promotion generation (persisted; survives restarts)
        self.generation = 0

    def mark(self) -> int:
        """A position in the event log (see :meth:`events_since`)."""
        with self._lock:
            return len(self.events)

    def events_since(self, mark: int) -> tuple:
        with self._lock:
            return tuple(self.events[mark:])

    def record(
        self, kind: str, group: int, ordinal: int, detail: str = ""
    ) -> FailoverEvent:
        event = FailoverEvent(kind, group, ordinal, detail)
        with self._lock:
            self.events.append(event)
        return event

    def promote(self, group: int, ordinal: int, detail: str = "") -> FailoverEvent:
        """Record a promotion, bump the generation, persist the record."""
        with self._lock:
            self.generation += 1
            event = self.record("promote", group, ordinal, detail)
        if self._persist is not None:
            try:
                self._persist()
            except Exception:
                # persistence is best-effort mid-failure (the record's
                # group may itself be degraded); the next promotion or
                # coordinator restart re-persists from live state
                pass
        return event

    def adopt_generation(self, generation: int) -> None:
        """Raise the generation floor from a recovered durable record."""
        with self._lock:
            self.generation = max(self.generation, int(generation))


def replicas_record(primaries: dict, generation: int):
    """The durable :data:`REPLICAS_TABLE` relation for ``primaries``.

    ``primaries`` maps coordinator shard index -> promoted primary
    ordinal; every row carries the same ``generation``.
    """
    from repro.engine.schema import ColumnSpec, DataType, Schema
    from repro.engine.table import Table

    schema = Schema(
        (
            ColumnSpec("group_index", DataType.INT),
            ColumnSpec("primary_ordinal", DataType.INT),
            ColumnSpec("generation", DataType.INT),
        )
    )
    groups = sorted(primaries)
    return Table(
        schema,
        [
            [int(g) for g in groups],
            [int(primaries[g]) for g in groups],
            [int(generation)] * len(groups),
        ],
    )


def parse_replicas_record(table) -> tuple[dict, int]:
    """(primaries, generation) from a :data:`REPLICAS_TABLE` relation."""
    if table.num_rows == 0:
        return {}, 0
    primaries = {
        int(group): int(ordinal)
        for group, ordinal in zip(
            table.column("group_index"), table.column("primary_ordinal")
        )
    }
    generation = max(int(g) for g in table.column("generation"))
    return primaries, generation
