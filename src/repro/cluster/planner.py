"""Cost-based route selection and plan trees for the cluster coordinator.

The coordinator can run a provably co-shardable join two ways: push the
join to every shard (broadcasting full copies of any unsharded tables) or
gather the sharded tables' slices onto the primary and join there.  Which
is cheaper depends on the table cardinalities: a tiny fact table joined
against a huge dimension is cheaper to gather than the dimension is to
broadcast.  :func:`choose_coshard_or_fallback` makes that call from the
shards' live row counts (cached per cluster epoch), and
:func:`build_route_plan` renders any route -- primary, scatter, co-shard,
fallback -- as a :class:`~repro.engine.planner.PlanNode` tree for the
EXPLAIN surfaces.

The model is deliberately coarse: moving an encrypted row across the
cluster costs a fixed multiple of probing it in a local hash join, network
volume dominates, and per-shard work runs in parallel while primary-side
work is serial.  It only has to order two concrete alternatives, not
predict wall-clock times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.planner import PlanNode

#: Relative price of moving one (encrypted) row between shards versus
#: streaming it through a local hash join.  Shares are 256..2048-bit
#: integers serialized over a wire or copied between catalogs; several
#: local probes per transferred row is conservative.
NETWORK_WEIGHT = 4.0

#: Relative price of one row of local join work.
COMPUTE_WEIGHT = 1.0


@dataclass(frozen=True)
class RouteChoice:
    """The cost comparison behind a coshard-vs-fallback decision."""

    route: str            # 'coshard' | 'fallback'
    coshard_cost: float
    fallback_cost: float
    reason: str


def choose_coshard_or_fallback(
    info, cardinalities: dict, num_shards: int
) -> RouteChoice:
    """Pick the cheaper execution of a provably co-shardable join.

    ``info`` is the coordinator's ``CoshardInfo`` proof; ``cardinalities``
    maps table name -> total row count (unknown tables count as 0, which
    biases toward the parallel route -- the right default when nothing is
    known).  Costs:

    * **coshard** -- broadcast every dim to the other ``N-1`` shards, then
      each shard joins its ``1/N`` slice of the sharded tables against the
      full dims, in parallel.
    * **fallback** -- gather the sharded tables' remote slices (about
      ``(N-1)/N`` of their rows) onto the primary, then join everything
      there, serially.

    Broadcast and gather copies are cached between queries, so this static
    estimate overstates the steady-state network cost of both routes
    equally; ties prefer coshard for the parallel join work.
    """
    n = max(1, int(num_shards))
    dim_rows = sum(cardinalities.get(name, 0) for name in info.dims)
    sharded_rows = sum(cardinalities.get(name, 0) for name in info.sharded)

    coshard_cost = (
        NETWORK_WEIGHT * dim_rows * (n - 1)
        + COMPUTE_WEIGHT * (sharded_rows / n + dim_rows)
    )
    fallback_cost = (
        NETWORK_WEIGHT * sharded_rows * (n - 1) / n
        + COMPUTE_WEIGHT * (sharded_rows + dim_rows)
    )
    if coshard_cost <= fallback_cost:
        route = "coshard"
        reason = (
            f"shard-local join is cheaper (est. {coshard_cost:.0f} vs "
            f"gather {fallback_cost:.0f})"
        )
    else:
        route = "fallback"
        reason = (
            f"gather is cheaper (est. {fallback_cost:.0f} vs broadcasting "
            f"{dim_rows} dim row(s) to {n - 1} shard(s): {coshard_cost:.0f})"
        )
    return RouteChoice(
        route=route,
        coshard_cost=coshard_cost,
        fallback_cost=fallback_cost,
        reason=reason,
    )


def build_route_plan(coordinator, query, route: tuple) -> PlanNode:
    """The coordinator's execution of ``query`` under ``route``, as a tree.

    Never contacts the shards beyond (cached) row counts; safe to call for
    EXPLAIN without executing anything.
    """
    kind, extra = route
    cards = coordinator._cardinalities()
    num_shards = len(coordinator.shards)
    if kind == "primary":
        return PlanNode(
            op="primary",
            detail="runs wholly on the primary shard",
            props={"shards": 1},
        )
    if kind == "scatter":
        split = coordinator._plan_scatter(query, route)
        report = coordinator._scatter_report_for(query, split, route)
        table = query.from_clause.name.lower()
        return PlanNode(
            op="scatter",
            detail=report.reason,
            props={"shards": num_shards},
            leakage=report.leakage,
            children=(
                PlanNode(
                    op="partial",
                    detail=f"{split.kind} over each shard's slice of {table}",
                    props={"rows": cards.get(table, 0)},
                ),
                _merge_node(split, num_shards),
            ),
        )
    if kind == "coshard":
        info = extra
        split = coordinator._plan_scatter(query, route)
        report = coordinator._coshard_report(split, info)
        choice = choose_coshard_or_fallback(info, cards, num_shards)
        children = [
            PlanNode(
                op="broadcast",
                detail=f"full (encrypted) copy of {name} to every shard",
                props={"rows": cards.get(name, 0), "shards": num_shards},
            )
            for name in info.dims
        ]
        props = {"shards": num_shards}
        if info.group:
            props["group"] = info.group
        children.append(
            PlanNode(
                op="partial",
                detail=(
                    f"{split.kind} over shard-local join of "
                    + " ⋈ ".join(info.sharded + info.dims)
                ),
                props={
                    "rows": sum(cards.get(t, 0) for t in info.sharded),
                },
            )
        )
        children.append(_merge_node(split, num_shards))
        return PlanNode(
            op="coshard-join",
            detail=report.reason,
            props=props,
            leakage=report.leakage,
            children=tuple(children),
            notes=(choice.reason,),
        )
    # fallback: gather every sharded table to the primary and run there
    sharded_names = tuple(sorted(extra))
    children = tuple(
        PlanNode(
            op="gather",
            detail=f"full (encrypted) copy of {name} to the primary shard",
            props={"rows": cards.get(name, 0), "shards": num_shards},
        )
        for name in sharded_names
    )
    notes = ()
    info = coordinator._coshard_info(query)
    if info is not None:
        # co-shardable, but the cost model picked the gather
        choice = choose_coshard_or_fallback(info, cards, num_shards)
        notes = (choice.reason,)
    return PlanNode(
        op="gather-join",
        detail=(
            "non-shardable or gather-cheaper query; "
            f"{', '.join(sharded_names)} gathered to the primary shard"
        ),
        props={"shards": num_shards},
        leakage=tuple(
            f"cluster: full (encrypted) copy of {name!r} broadcast to "
            "the primary shard for this query"
            for name in sharded_names
        ),
        children=children
        + (
            PlanNode(
                op="execute",
                detail="single-node join on the primary shard",
                props={"rows": sum(cards.get(t, 0) for t in sharded_names)},
            ),
        ),
        notes=notes,
    )


def _merge_node(split, num_shards: int) -> PlanNode:
    if split.kind == "group-pushdown":
        detail = f"concatenate {num_shards} shard-final partials"
    else:
        detail = f"re-{split.kind} {num_shards} partials on the coordinator"
    return PlanNode(op="merge", detail=detail, props={"partials": num_shards})
