"""Sharded cluster execution: scatter-gather over encrypted shards.

The paper's architecture inherits distributed execution from the
underlying engine (Section 2.2); this package builds that tier from first
principles on top of the existing single-node substrate:

* :class:`~repro.cluster.coordinator.Coordinator` -- a data-owner-side
  scatter-gather executor that presents the :class:`SDBServer` surface to
  the proxy while hash-partitioning encrypted tables across N shard
  backends (in-process servers or ``sdb-server`` daemons over
  :mod:`repro.net`);
* :mod:`~repro.cluster.router` -- PRF row routing: the shard a row lands
  on is a keyed PRF of its shard-key plaintext, computed at the proxy, so
  no service provider ever learns the key value -- only the bucket;
* :mod:`~repro.cluster.local` -- subprocess shard daemons for benches and
  demos (separate interpreters, so scatter really runs in parallel);
* :mod:`~repro.cluster.rebalance` -- elastic resharding: online shard
  topology changes (grow/shrink/reweight) that stream re-keyed encrypted
  rows shard to shard via the key-update protocol, with a crash-safe
  commit record (old topology wins until it exists);
* :mod:`~repro.cluster.replica` -- per-shard replica sets
  (:class:`ShardGroup`): synchronous write fan-out, weighted read
  scale-out, and online replica catch-up via the streaming-copy path;
* :mod:`~repro.cluster.failover` -- failure detection and the durable
  promotion record that lets a restarted coordinator adopt promoted
  primaries;
* :mod:`~repro.cluster.faults` -- deterministic fault injection
  (kill/drop/delay) for the crash suites and failover demos.

Because sensitive cells are secret shares in a ring, a partial
``sdb_agg_sum`` computed on one shard is itself a valid share: merging
shards is just more ring addition, the same property that powers the
thread-parallel engine (:mod:`repro.engine.partial`).
"""

from repro.cluster.coordinator import Coordinator, Placement, ScatterReport, ShardError
from repro.cluster.failover import (
    REPLICAS_TABLE,
    FailoverEvent,
    FailoverManager,
    FailureDetector,
)
from repro.cluster.faults import FaultInjector, FaultyBackend
from repro.cluster.local import LocalShardCluster, launch_local_shards
from repro.cluster.rebalance import (
    RateLimiter,
    RebalanceError,
    RebalancePlan,
    RebalanceReport,
    ShardTopology,
    rebalance_cluster,
)
from repro.cluster.replica import ShardGroup
from repro.cluster.router import ShardMap, shard_bucket, shard_map_for

__all__ = [
    "Coordinator",
    "FailoverEvent",
    "FailoverManager",
    "FailureDetector",
    "FaultInjector",
    "FaultyBackend",
    "LocalShardCluster",
    "Placement",
    "REPLICAS_TABLE",
    "RateLimiter",
    "RebalanceError",
    "RebalancePlan",
    "RebalanceReport",
    "ScatterReport",
    "ShardError",
    "ShardGroup",
    "ShardMap",
    "ShardTopology",
    "launch_local_shards",
    "rebalance_cluster",
    "shard_bucket",
    "shard_map_for",
]
