"""Subprocess shard daemons: real parallelism for benches and demos.

In-process shards (plain :class:`SDBServer` instances) exercise every
cluster code path but share one interpreter, so a scatter's partial
queries serialize on the GIL.  This helper launches each shard as its own
``sdb-server`` daemon (``python -m repro.cli.server --shard-id I``) on an
ephemeral port: four shards then really are four interpreters, and a
scatter-gather aggregate runs its ring arithmetic four-way parallel --
the configuration ``benchmarks/bench_e14_sharding.py`` measures.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

_LISTEN = re.compile(r"listening on ([^\s:]+):(\d+)")


class LocalShardCluster:
    """A set of shard daemons owned by this process."""

    def __init__(self, processes: list, endpoints: list[tuple[str, int]]):
        self.processes = processes
        self.endpoints = endpoints

    def connect(self) -> list:
        """Fresh :class:`~repro.net.client.RemoteServer` handles, in order."""
        from repro.net.client import RemoteServer

        return [RemoteServer.connect(host, port) for host, port in self.endpoints]

    def coordinator(self):
        """A :class:`~repro.cluster.Coordinator` over fresh connections."""
        from repro.cluster.coordinator import Coordinator

        return Coordinator(self.connect())

    def close(self) -> None:
        for proc in self.processes:
            proc.terminate()
        for proc in self.processes:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5)
        self.processes = []

    def __enter__(self) -> "LocalShardCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def launch_local_shards(count: int, host: str = "127.0.0.1") -> LocalShardCluster:
    """Start ``count`` shard daemons on ephemeral ports and wait for them.

    Each daemon announces ``sdb-server listening on HOST:PORT`` on stdout;
    the call returns once every port is known.  The caller owns shutdown
    (use the context manager or :meth:`LocalShardCluster.close`).
    """
    if count < 1:
        raise ValueError("need at least one shard")
    env = dict(os.environ)
    source_root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = source_root + os.pathsep + env.get("PYTHONPATH", "")
    processes = []
    try:
        for index in range(count):
            processes.append(
                subprocess.Popen(
                    [
                        sys.executable, "-m", "repro.cli.server",
                        "--host", host, "--port", "0",
                        "--shard-id", str(index),
                    ],
                    stdout=subprocess.PIPE,
                    stderr=subprocess.STDOUT,
                    text=True,
                    env=env,
                )
            )
        endpoints = []
        for proc in processes:
            line = proc.stdout.readline()
            match = _LISTEN.search(line or "")
            if match is None:
                rest = (line or "") + (proc.stdout.read() or "")
                raise RuntimeError(f"shard daemon failed to start: {rest!r}")
            endpoints.append((match.group(1), int(match.group(2))))
    except Exception:
        for proc in processes:
            proc.terminate()
        raise
    return LocalShardCluster(processes, endpoints)
