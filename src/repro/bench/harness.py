"""Measurement and reporting helpers for the experiment benches.

Each experiment module in ``benchmarks/`` regenerates one of the paper's
artefacts; the helpers here keep the output uniform: a titled ASCII table
(the "same rows the paper reports") plus raw numbers available to
assertions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class ResultTable:
    """A paper-style results table."""

    title: str
    columns: list
    rows: list = field(default_factory=list)
    notes: list = field(default_factory=list)

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError("row width does not match columns")
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        cells = [[str(c) for c in self.columns]] + [
            [_fmt(v) for v in row] for row in self.rows
        ]
        widths = [max(len(row[i]) for row in cells) for i in range(len(self.columns))]
        lines = [f"== {self.title} =="]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
        lines.append("-+-".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def emit(self) -> None:
        print("\n" + self.render())


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def time_call(fn: Callable, *args, repeat: int = 3, **kwargs):
    """Best-of-``repeat`` wall-clock timing; returns (seconds, result)."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result
