"""Measurement and reporting helpers for the experiment benches.

Each experiment module in ``benchmarks/`` regenerates one of the paper's
artefacts; the helpers here keep the output uniform: a titled ASCII table
(the "same rows the paper reports") plus raw numbers available to
assertions.

Two pieces of infrastructure support continuous benchmarking:

* **machine-readable output** -- :func:`write_bench_json` (and
  ``ResultTable.emit(json_name=...)``) writes a ``BENCH_<name>.json``
  artefact so the perf trajectory can be tracked across commits; CI
  uploads these from the bench-smoke job.  Set ``BENCH_JSON_DIR`` to
  redirect them (default: current directory).
* **smoke mode** -- ``BENCH_SMOKE=1`` asks benches for statistically
  meaningless but *executable* sizes, so CI can verify every benchmark
  script still runs without spending minutes on real measurements.
  :func:`smoke_scaled` picks between the full and smoke size.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class ResultTable:
    """A paper-style results table."""

    title: str
    columns: list
    rows: list = field(default_factory=list)
    notes: list = field(default_factory=list)

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError("row width does not match columns")
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        cells = [[str(c) for c in self.columns]] + [
            [_fmt(v) for v in row] for row in self.rows
        ]
        widths = [max(len(row[i]) for row in cells) for i in range(len(self.columns))]
        lines = [f"== {self.title} =="]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
        lines.append("-+-".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def emit(self, json_name: str | None = None) -> None:
        print("\n" + self.render())
        if json_name is not None:
            write_bench_json(json_name, self.to_dict())

    def to_dict(self) -> dict:
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def time_call(fn: Callable, *args, repeat: int = 3, **kwargs):
    """Best-of-``repeat`` wall-clock timing; returns (seconds, result)."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


# -- machine-readable output and smoke mode -----------------------------------


def bench_smoke() -> bool:
    """True when ``BENCH_SMOKE`` asks for fast, assertion-light runs."""
    return os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def smoke_scaled(full, smoke):
    """Pick the workload size for the current mode."""
    return smoke if bench_smoke() else full


def bench_json_path(name: str) -> str:
    """Where ``BENCH_<name>.json`` goes (``BENCH_JSON_DIR`` or cwd)."""
    directory = os.environ.get("BENCH_JSON_DIR", ".")
    os.makedirs(directory, exist_ok=True)
    return os.path.join(directory, f"BENCH_{name}.json")


def write_bench_json(name: str, payload: dict) -> str:
    """Write one benchmark artefact; returns the file path.

    The payload is augmented with the run mode and a wall-clock stamp so a
    series of artefacts from successive commits forms a perf trajectory.
    """
    record = {
        "bench": name,
        "smoke": bench_smoke(),
        "unix_time": round(time.time(), 3),
        **payload,
    }
    path = bench_json_path(name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, default=str)
        handle.write("\n")
    print(f"\n[bench-json] wrote {path}")
    return path
