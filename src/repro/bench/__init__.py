"""Benchmark support: paper-style result tables and measurement helpers."""

from repro.bench.harness import ResultTable, time_call

__all__ = ["ResultTable", "time_call"]
