"""Bench-trend gate: diff fresh ``BENCH_*.json`` artefacts against baselines.

Every benchmark writes a machine-readable artefact (see
:func:`repro.bench.harness.write_bench_json`).  This module compares a
directory of freshly produced artefacts against the baselines committed at
the repo root and fails (exit code 1) when a timing metric regressed by
more than the threshold -- the CI bench job runs it after the smoke pass,
so a perf cliff shows up in the PR that caused it, not three PRs later.

Comparison rules
----------------

* Only *metric* leaves are compared: numeric values whose key (or an
  ancestor key) looks like a timing -- ``*_s``, ``*_seconds``, ``*_ms``,
  ``*_us`` -- or a throughput -- ``*_per_sec``, ``speedup``.  Shape fields
  (``rows``, ``modulus_bits``) and ``unix_time`` are ignored.
* Timings regress when ``fresh > baseline * threshold``; throughputs when
  ``fresh < baseline / threshold``.
* Values below ``MIN_COMPARABLE`` (sub-microsecond noise) are skipped.
* ``smoke`` artefacts are statistically meaningless, so smoke-vs-smoke
  comparisons relax the threshold by ``smoke_relax`` and a mode mismatch
  (smoke vs full) downgrades to a structural check: the fresh artefact
  must still contain every metric key the baseline has.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
from dataclasses import dataclass, field

_METRIC_KEY = re.compile(r"(_s|_seconds|seconds|_ms|_us)$")
_INVERSE_KEY = re.compile(r"(_per_sec|per_sec|speedup|_rate)$")
_IGNORED = {"unix_time"}

#: metrics smaller than this (in their own unit) are pure noise
MIN_COMPARABLE = 1e-3


def metric_leaves(payload, prefix: str = "", inherited: bool = False) -> dict:
    """``{dotted.path: (value, inverse)}`` for every comparable metric."""
    leaves: dict = {}
    if not isinstance(payload, dict):
        return leaves
    for key, value in payload.items():
        if key in _IGNORED:
            continue
        path = f"{prefix}.{key}" if prefix else key
        timing = inherited or bool(_METRIC_KEY.search(key))
        inverse = bool(_INVERSE_KEY.search(key))
        if isinstance(value, dict):
            leaves.update(metric_leaves(value, path, timing))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            if inverse:
                leaves[path] = (float(value), True)
            elif timing:
                leaves[path] = (float(value), False)
    return leaves


@dataclass
class Comparison:
    """Outcome of one artefact pair."""

    name: str
    mode: str                      # 'numeric' | 'structural' | 'new'
    regressions: list = field(default_factory=list)
    missing: list = field(default_factory=list)
    compared: int = 0

    @property
    def failed(self) -> bool:
        return bool(self.regressions or self.missing)


def compare_payloads(
    baseline: dict,
    fresh: dict,
    threshold: float = 2.0,
    smoke_relax: float = 2.0,
) -> Comparison:
    """Compare two artefact payloads under the rules above."""
    name = fresh.get("bench", "?")
    base_leaves = metric_leaves(baseline)
    fresh_leaves = metric_leaves(fresh)

    missing = sorted(set(base_leaves) - set(fresh_leaves))
    if bool(baseline.get("smoke")) != bool(fresh.get("smoke")):
        # numbers from different modes are not comparable; shape must hold
        return Comparison(name=name, mode="structural", missing=missing)

    effective = threshold * (smoke_relax if fresh.get("smoke") else 1.0)
    result = Comparison(name=name, mode="numeric", missing=missing)
    for path, (base_value, inverse) in base_leaves.items():
        if path not in fresh_leaves:
            continue
        fresh_value = fresh_leaves[path][0]
        if max(abs(base_value), abs(fresh_value)) < MIN_COMPARABLE:
            continue
        if base_value <= 0:
            continue
        result.compared += 1
        if inverse:
            if fresh_value < base_value / effective:
                result.regressions.append(
                    (path, base_value, fresh_value,
                     f"dropped {base_value / max(fresh_value, 1e-12):.1f}x")
                )
        elif fresh_value > base_value * effective:
            result.regressions.append(
                (path, base_value, fresh_value,
                 f"slower {fresh_value / base_value:.1f}x")
            )
    return result


def compare_directories(
    baseline_dir: str,
    fresh_dir: str,
    threshold: float = 2.0,
    smoke_relax: float = 2.0,
) -> list[Comparison]:
    outcomes = []
    for fresh_path in sorted(glob.glob(os.path.join(fresh_dir, "BENCH_*.json"))):
        with open(fresh_path, encoding="utf-8") as handle:
            fresh = json.load(handle)
        base_path = os.path.join(baseline_dir, os.path.basename(fresh_path))
        if not os.path.exists(base_path):
            outcomes.append(
                Comparison(name=fresh.get("bench", "?"), mode="new")
            )
            continue
        with open(base_path, encoding="utf-8") as handle:
            baseline = json.load(handle)
        outcomes.append(
            compare_payloads(baseline, fresh, threshold, smoke_relax)
        )
    return outcomes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.trend",
        description="fail CI when a BENCH_*.json metric regressed vs baseline",
    )
    parser.add_argument("--baseline-dir", default=".",
                        help="directory holding committed baseline artefacts")
    parser.add_argument("--fresh-dir", required=True,
                        help="directory holding the just-produced artefacts")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="regression factor that fails the gate")
    parser.add_argument("--smoke-relax", type=float, default=2.0,
                        help="extra factor applied when comparing smoke runs "
                             "(their numbers are noisy by design)")
    args = parser.parse_args(argv)

    outcomes = compare_directories(
        args.baseline_dir, args.fresh_dir, args.threshold, args.smoke_relax
    )
    if not outcomes:
        print(f"bench-trend: no BENCH_*.json artefacts in {args.fresh_dir}")
        return 1

    failed = False
    for outcome in outcomes:
        if outcome.mode == "new":
            print(f"  {outcome.name}: new benchmark (no baseline yet)")
            continue
        if outcome.failed:
            failed = True
            for path, base, fresh, detail in outcome.regressions:
                print(f"  {outcome.name}: REGRESSION {path}: "
                      f"{base:.6g} -> {fresh:.6g} ({detail})")
            for path in outcome.missing:
                print(f"  {outcome.name}: MISSING metric {path}")
        else:
            print(f"  {outcome.name}: ok ({outcome.mode}, "
                  f"{outcome.compared} metrics compared)")
    print("bench-trend:", "FAIL" if failed else "PASS")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
