"""SP-side persistence: the storage/backup/recovery services of DBaaS.

The paper's SP "provides a reliable repository with storage and
administration services (such as backup and recovery)" (Section 1).  This
package implements that substrate:

* :mod:`repro.storage.format` -- a binary on-disk format for encrypted
  (and plain) relations: tagged cells, length-prefixed big integers for
  shares, checksummed files;
* :mod:`repro.storage.disk` -- :class:`DiskCatalog`, a directory of table
  files with atomic replace semantics;
* :mod:`repro.storage.wal` -- a write-ahead log of DML so mutations
  survive a crash between checkpoints;
* :mod:`repro.storage.durable` -- :class:`DurableServer`, an
  :class:`repro.core.server.SDBServer` that persists uploads, logs DML
  write-ahead, checkpoints, and recovers after restart;
* :mod:`repro.storage.backup` -- point-in-time snapshots with manifest
  and integrity verification.

Everything written here is SP-visible by definition, so it stores only
what the SP already holds: shares, SIES ciphertexts and insensitive
plaintext.  No key material ever reaches this layer.
"""

from repro.storage.backup import BackupError, create_backup, restore_backup, verify_backup
from repro.storage.disk import DiskCatalog
from repro.storage.durable import DurableServer
from repro.storage.format import StorageError, read_table, write_table
from repro.storage.wal import WriteAheadLog

__all__ = [
    "DiskCatalog",
    "DurableServer",
    "WriteAheadLog",
    "create_backup",
    "restore_backup",
    "verify_backup",
    "read_table",
    "write_table",
    "StorageError",
    "BackupError",
]
