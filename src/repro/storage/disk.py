"""A directory of table files: the SP's persistent catalog."""

from __future__ import annotations

import os
import re
from pathlib import Path

from repro.engine.table import Table
from repro.storage.format import StorageError, read_table, write_table

_SAFE_NAME = re.compile(r"^[a-z_][a-z0-9_]*$")
SUFFIX = ".sdbt"


class DiskCatalog:
    """Tables as ``<name>.sdbt`` files under one directory.

    Names are normalized to lower case (matching the in-memory catalog)
    and validated so a table name can never escape the directory.
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, name: str) -> Path:
        key = name.lower()
        if not _SAFE_NAME.match(key):
            raise StorageError(f"invalid table name {name!r}")
        return self.directory / f"{key}{SUFFIX}"

    def save(self, name: str, table: Table) -> int:
        """Persist (or replace) a table; returns bytes written."""
        return write_table(self._path(name), table)

    def load(self, name: str) -> Table:
        path = self._path(name)
        if not path.exists():
            raise StorageError(f"no stored table {name!r}")
        return read_table(path)

    def delete(self, name: str) -> None:
        path = self._path(name)
        try:
            os.remove(path)
        except FileNotFoundError:
            raise StorageError(f"no stored table {name!r}") from None

    def names(self) -> list[str]:
        return sorted(p.stem for p in self.directory.glob(f"*{SUFFIX}"))

    def __contains__(self, name: str) -> bool:
        return self._path(name).exists()

    def size_bytes(self, name: str) -> int:
        return self._path(name).stat().st_size

    def total_bytes(self) -> int:
        return sum(
            p.stat().st_size for p in self.directory.glob(f"*{SUFFIX}")
        )
