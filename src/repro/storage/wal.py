"""Write-ahead log for DML.

Uploads are checkpointed as whole table files; between checkpoints,
INSERT/UPDATE/DELETE statements append here *before* they execute
(write-ahead), so a crash loses no acknowledged mutation.  Recovery
replays the log on top of the last checkpoint.

Entries are JSON lines.  UPDATE/DELETE are logged as their (rewritten)
SQL text; INSERTs are logged structurally because their literals include
SIES ciphertexts, which have no SQL text form.  A torn final line -- the
signature of a crash mid-append -- is detected and ignored.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.net.protocol import decode_value, encode_value
from repro.sql import ast
from repro.sql.parser import parse_statement


class WriteAheadLog:
    """Append-only DML journal with replay."""

    def __init__(self, path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")
        self._seq = sum(1 for _ in self.entries())

    @property
    def seq(self) -> int:
        """Number of durable entries."""
        return self._seq

    def append(self, statement: ast.Statement) -> int:
        """Durably record one statement; returns its sequence number."""
        entry = self._encode(statement)
        entry["seq"] = self._seq
        line = json.dumps(entry, separators=(",", ":"))
        self._file.write(line + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())
        self._seq += 1
        return entry["seq"]

    def entries(self):
        """Yield decoded statements in append order (tolerates torn tail)."""
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    return  # torn tail from a crash mid-append
                yield self._decode(entry)

    def truncate(self) -> None:
        """Drop all entries (after a checkpoint makes them redundant)."""
        self._file.close()
        self._file = open(self.path, "w", encoding="utf-8")
        self._file.flush()
        os.fsync(self._file.fileno())
        self._seq = 0

    def close(self) -> None:
        self._file.close()

    # -- entry codec -------------------------------------------------------

    @staticmethod
    def _encode(statement: ast.Statement) -> dict:
        if isinstance(statement, ast.TxnControl):
            return {"kind": "txn", "op": statement.kind}
        if isinstance(statement, ast.Insert):
            rows = []
            for value_row in statement.rows:
                cells = []
                for expr in value_row:
                    if not isinstance(expr, ast.Literal):
                        raise ValueError("WAL inserts must carry literal values")
                    cells.append(encode_value(expr.value))
                rows.append(cells)
            return {
                "kind": "insert",
                "table": statement.table,
                "columns": list(statement.columns or ()),
                "rows": rows,
            }
        if isinstance(statement, (ast.Update, ast.Delete)):
            return {"kind": "sql", "sql": statement.to_sql()}
        raise ValueError(f"cannot log {type(statement).__name__}")

    @staticmethod
    def _decode(entry: dict) -> ast.Statement:
        if entry["kind"] == "txn":
            return ast.TxnControl(kind=entry["op"])
        if entry["kind"] == "insert":
            return ast.Insert(
                table=entry["table"],
                columns=tuple(entry["columns"]) or None,
                rows=tuple(
                    tuple(ast.Literal(decode_value(cell)) for cell in row)
                    for row in entry["rows"]
                ),
            )
        if entry["kind"] == "sql":
            return parse_statement(entry["sql"])
        raise ValueError(f"unknown WAL entry kind {entry['kind']!r}")
