"""Binary table format.

Layout of a ``.sdbt`` file::

    magic   b"SDBT"
    version u8 (currently 1)
    schema  u32 length + JSON: [[name, dtype, scale], ...]
    rows    u32 row count
    cells   column-major: for each column, row-count tagged cells
    digest  32-byte SHA-256 of everything above

Cells are tagged so the format carries every boundary type, most
importantly arbitrary-precision shares (length-prefixed signed big-endian
integers -- a 2048-bit share is 261 bytes, not a decimal string).

The digest turns silent corruption into a loud :class:`StorageError`,
which is what a storage service owes its tenants.
"""

from __future__ import annotations

import datetime
import hashlib
import io
import json
import struct

from repro.crypto.sies import SIESCiphertext
from repro.engine.schema import ColumnSpec, DataType, Schema
from repro.engine.table import Table

MAGIC = b"SDBT"
VERSION = 1

_U8 = struct.Struct(">B")
_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")

_TAG_NULL = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_STR = 3
_TAG_TRUE = 4
_TAG_FALSE = 5
_TAG_DATE = 6
_TAG_SIES = 7


class StorageError(ValueError):
    """Corrupt, truncated or incompatible storage file."""


# -- cell codec --------------------------------------------------------------


def write_cell(out: io.BytesIO, value) -> None:
    """Append one tagged cell to ``out``."""
    if value is None:
        out.write(_U8.pack(_TAG_NULL))
    elif isinstance(value, bool):
        out.write(_U8.pack(_TAG_TRUE if value else _TAG_FALSE))
    elif isinstance(value, int):
        out.write(_U8.pack(_TAG_INT))
        _write_bigint(out, value)
    elif isinstance(value, float):
        out.write(_U8.pack(_TAG_FLOAT))
        out.write(_F64.pack(value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.write(_U8.pack(_TAG_STR))
        out.write(_U32.pack(len(data)))
        out.write(data)
    elif isinstance(value, datetime.date):
        out.write(_U8.pack(_TAG_DATE))
        out.write(_U32.pack(value.toordinal()))
    elif isinstance(value, SIESCiphertext):
        out.write(_U8.pack(_TAG_SIES))
        _write_bigint(out, value.value)
        _write_bigint(out, value.nonce)
    else:
        raise StorageError(f"cannot store {type(value).__name__} cells")


def read_cell(data: memoryview, offset: int) -> tuple:
    """Read one cell at ``offset``; returns (value, next_offset)."""
    (tag,) = _U8.unpack_from(data, offset)
    offset += _U8.size
    if tag == _TAG_NULL:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        return _read_bigint(data, offset)
    if tag == _TAG_FLOAT:
        (value,) = _F64.unpack_from(data, offset)
        return value, offset + _F64.size
    if tag == _TAG_STR:
        (length,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        return bytes(data[offset:offset + length]).decode("utf-8"), offset + length
    if tag == _TAG_DATE:
        (ordinal,) = _U32.unpack_from(data, offset)
        return datetime.date.fromordinal(ordinal), offset + _U32.size
    if tag == _TAG_SIES:
        value, offset = _read_bigint(data, offset)
        nonce, offset = _read_bigint(data, offset)
        return SIESCiphertext(value=value, nonce=nonce), offset
    raise StorageError(f"unknown cell tag {tag}")


def _write_bigint(out: io.BytesIO, value: int) -> None:
    length = (value.bit_length() + 8) // 8  # +8 leaves room for the sign bit
    out.write(_U32.pack(length))
    out.write(value.to_bytes(length, "big", signed=True))


def _read_bigint(data: memoryview, offset: int) -> tuple:
    (length,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    value = int.from_bytes(data[offset:offset + length], "big", signed=True)
    return value, offset + length


# -- table files -------------------------------------------------------------------


def serialize_table(table: Table) -> bytes:
    """Render a table to the binary format (digest included)."""
    out = io.BytesIO()
    out.write(MAGIC)
    out.write(_U8.pack(VERSION))
    schema_json = json.dumps(
        [[c.name, c.dtype.value, c.scale] for c in table.schema.columns],
        separators=(",", ":"),
    ).encode("utf-8")
    out.write(_U32.pack(len(schema_json)))
    out.write(schema_json)
    out.write(_U32.pack(table.num_rows))
    for column in table.columns:
        for value in column:
            write_cell(out, value)
    body = out.getvalue()
    return body + hashlib.sha256(body).digest()


def deserialize_table(blob: bytes) -> Table:
    """Parse the binary format, verifying magic, version and digest."""
    if len(blob) < len(MAGIC) + 1 + 32:
        raise StorageError("file too short")
    body, digest = blob[:-32], blob[-32:]
    if hashlib.sha256(body).digest() != digest:
        raise StorageError("checksum mismatch: file is corrupt")
    data = memoryview(body)
    if bytes(data[:4]) != MAGIC:
        raise StorageError("bad magic: not an SDB table file")
    offset = 4
    (version,) = _U8.unpack_from(data, offset)
    offset += _U8.size
    if version != VERSION:
        raise StorageError(f"unsupported format version {version}")
    (schema_len,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    schema_spec = json.loads(bytes(data[offset:offset + schema_len]))
    offset += schema_len
    schema = Schema(
        tuple(
            ColumnSpec(name, DataType(dtype), scale)
            for name, dtype, scale in schema_spec
        )
    )
    (num_rows,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    columns = []
    for _ in schema.columns:
        column = []
        for _ in range(num_rows):
            value, offset = read_cell(data, offset)
            column.append(value)
        columns.append(column)
    if offset != len(body):
        raise StorageError("trailing bytes after table data")
    return Table(schema, columns)


def write_table(path, table: Table) -> int:
    """Write a table file atomically (temp file + rename); returns bytes."""
    import os

    blob = serialize_table(table)
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as f:
        f.write(blob)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    return len(blob)


def read_table(path) -> Table:
    with open(path, "rb") as f:
        return deserialize_table(f.read())
