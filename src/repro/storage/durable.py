"""A crash-safe SP: SDBServer + disk catalog + write-ahead log.

Lifecycle:

* ``store_table`` persists the encrypted relation to disk, then installs
  it in memory (an upload is its own checkpoint);
* ``execute_dml`` appends to the WAL *before* applying (write-ahead);
* ``checkpoint()`` rewrites every dirty table file and truncates the WAL;
* ``DurableServer(directory)`` on a directory with existing state
  performs recovery: load checkpointed tables, replay the WAL.

This is the "fault-tolerance ... provided by the underlying engine" part
of the paper's new architecture (Section 2.2), built from first
principles instead of inherited from Spark.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.server import SDBServer
from repro.engine.table import Table
from repro.storage.disk import DiskCatalog
from repro.storage.wal import WriteAheadLog


class DurableServer(SDBServer):
    """An SDBServer whose state survives restarts."""

    def __init__(self, directory, instrument: bool = False):
        super().__init__(instrument=instrument)
        self.directory = Path(directory)
        self.disk = DiskCatalog(self.directory / "tables")
        self.wal = WriteAheadLog(self.directory / "wal.log")
        self._dirty: set[str] = set()
        self._recover()
        self._load_placements()

    # -- recovery ------------------------------------------------------------

    def _recover(self) -> None:
        """Load checkpointed tables and replay *committed* DML on top.

        Statements between a BEGIN and its COMMIT apply atomically at the
        commit marker; a BEGIN without a COMMIT (crash mid-transaction) or
        with an explicit ROLLBACK marker is discarded wholesale.
        """
        from repro.sql import ast

        for name in self.disk.names():
            self.catalog.create(name, self.disk.load(name), replace=True)
        replayed = 0
        pending: list = []
        in_txn = False
        for statement in self.wal.entries():
            if isinstance(statement, ast.TxnControl):
                if statement.kind == "begin":
                    in_txn = True
                    pending = []
                elif statement.kind == "commit":
                    for buffered in pending:
                        self.engine.execute_dml(buffered)
                        replayed += 1
                    in_txn = False
                    pending = []
                else:  # rollback
                    in_txn = False
                    pending = []
                continue
            if in_txn:
                pending.append(statement)
            else:
                self.engine.execute_dml(statement)
                replayed += 1
        if replayed:
            self._dirty.update(self.catalog.names())
        self.recovered_statements = replayed

    # -- SDBServer surface, made durable ------------------------------------------

    def store_table(self, name: str, table: Table, replace: bool = False) -> None:
        with self._lock.write_locked():
            super().store_table(name, table, replace=replace)
            self.disk.save(name, table)
            self._dirty.discard(name.lower())
            self._save_placements()

    def append_table(self, name: str, table: Table) -> int:
        with self._lock.write_locked():
            appended = super().append_table(name, table)
            self.disk.save(name, self.catalog.get(name))
            self._dirty.discard(name.lower())
            return appended

    def drop_table(self, name: str) -> None:
        with self._lock.write_locked():
            super().drop_table(name)
            if name.lower() in self.disk:
                self.disk.delete(name)
            self._dirty.discard(name.lower())
            self._save_placements()

    # -- shard surface, made durable -----------------------------------------------
    #
    # A restarted shard daemon recovers its table slices from disk; the
    # placement metadata recorded by SHARD_STORE must survive with them,
    # or a reattaching coordinator would classify the table as
    # primary-resident and silently query one shard's slice.

    def shard_store(self, name, table, placement=None, replace=False) -> int:
        with self._lock.write_locked():
            count = super().shard_store(
                name, table, placement=placement, replace=replace
            )
            self._save_placements()
            return count

    def _placements_path(self) -> Path:
        return self.directory / "placements.json"

    def _save_placements(self) -> None:
        import json

        payload = {"shard_id": self.shard_id, "tables": self.shard_placements}
        self._placements_path().write_text(json.dumps(payload))

    def _load_placements(self) -> None:
        import json

        path = self._placements_path()
        if not path.exists():
            return
        payload = json.loads(path.read_text())
        if self.shard_id is None and payload.get("shard_id") is not None:
            self.shard_id = int(payload["shard_id"])
        self.shard_placements.update(
            {name.lower(): dict(p) for name, p in payload["tables"].items()}
        )

    def execute_dml(self, statement, session=None) -> int:
        if isinstance(statement, str):
            from repro.sql.parser import parse_statement

            statement = parse_statement(statement)
        if self.txns.get(session) is not None:
            # in-transaction: the statement lands in the session's
            # private write set only; it reaches the WAL at commit time
            # as part of one contiguous BEGIN/redo/COMMIT block (see
            # _log_commit), so an uncommitted or rolled-back transaction
            # never touches the log at all
            return super().execute_dml(statement, session=session)
        with self._lock.write_locked():
            if self.txns.get(session) is not None:  # BEGIN raced in
                return super().execute_dml(statement, session=session)
            self.wal.append(statement)  # write-ahead: log first, apply second
            affected = super().execute_dml(statement, session=session)
            self._dirty.add(statement.table.lower())
            return affected

    # -- transactions -------------------------------------------------------------------

    # Every WAL append happens under the server's exclusive write lock
    # (re-entrant, so the nested super() call is fine): with concurrent
    # sessions, an append outside the lock could record statements in a
    # different order than they applied, and replay would diverge.

    def _log_commit(self, txn) -> None:
        """Write a committed transaction's redo log as one WAL block.

        Called by the transaction manager with the write lock held, right
        after the write set's delta folded into the catalog: concurrent
        sessions' transactions land in the log whole, in commit order, so
        recovery replays each atomically at its COMMIT marker.  (Replay
        re-executes the statements; for the phantom cases snapshot
        isolation permits this matches commit-order serial execution,
        which is also how the pinned recovery tests define the oracle.)
        """
        from repro.sql import ast

        if not txn.redo:
            return
        self.wal.append(ast.TxnControl(kind="begin"))
        for statement in txn.redo:
            self.wal.append(statement)
            self._dirty.add(statement.table.lower())
        self.wal.append(ast.TxnControl(kind="commit"))

    # -- checkpointing -----------------------------------------------------------------

    def checkpoint(self) -> int:
        """Flush dirty tables to disk and truncate the WAL.

        Returns the number of table files rewritten.  After a checkpoint,
        recovery needs no replay.
        """
        if self.in_transaction:
            raise RuntimeError("cannot checkpoint inside a transaction")
        flushed = 0
        for name in sorted(self._dirty):
            if name in self.catalog:
                self.disk.save(name, self.catalog.get(name))
                flushed += 1
        self._dirty.clear()
        self.wal.truncate()
        return flushed

    def close(self) -> None:
        self.wal.close()
