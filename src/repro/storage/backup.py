"""Point-in-time backups of the SP's stored state.

A backup is a directory holding a copy of every table file plus a
``manifest.json`` recording, per table, the file size and SHA-256 of the
*payload* -- enough to verify integrity before restoring.  Backups copy
ciphertext only; they are exactly as safe to hand to a third party as the
SP's disk already is.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import shutil
from pathlib import Path

from repro.storage.disk import SUFFIX, DiskCatalog

MANIFEST = "manifest.json"


class BackupError(ValueError):
    """Missing, inconsistent or corrupt backup."""


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def create_backup(catalog: DiskCatalog, destination) -> dict:
    """Copy every table file to ``destination`` and write the manifest."""
    destination = Path(destination)
    destination.mkdir(parents=True, exist_ok=True)
    tables = {}
    for name in catalog.names():
        source = catalog.directory / f"{name}{SUFFIX}"
        target = destination / f"{name}{SUFFIX}"
        shutil.copyfile(source, target)
        tables[name] = {
            "bytes": target.stat().st_size,
            "sha256": _sha256(target),
        }
    manifest = {
        "created": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "tables": tables,
    }
    with open(destination / MANIFEST, "w", encoding="utf-8") as f:
        json.dump(manifest, f, indent=2, sort_keys=True)
    return manifest


def verify_backup(source) -> dict:
    """Check every file against the manifest; returns the manifest."""
    source = Path(source)
    manifest_path = source / MANIFEST
    if not manifest_path.exists():
        raise BackupError(f"no manifest at {source}")
    with open(manifest_path, "r", encoding="utf-8") as f:
        manifest = json.load(f)
    for name, meta in manifest["tables"].items():
        path = source / f"{name}{SUFFIX}"
        if not path.exists():
            raise BackupError(f"backup is missing table file {name!r}")
        if path.stat().st_size != meta["bytes"]:
            raise BackupError(f"size mismatch for {name!r}")
        if _sha256(path) != meta["sha256"]:
            raise BackupError(f"checksum mismatch for {name!r}")
    return manifest


def restore_backup(source, catalog: DiskCatalog, replace: bool = False) -> list[str]:
    """Verify and copy a backup into a disk catalog; returns table names."""
    source = Path(source)
    manifest = verify_backup(source)
    restored = []
    for name in sorted(manifest["tables"]):
        if name in catalog and not replace:
            raise BackupError(
                f"table {name!r} already exists (pass replace=True)"
            )
        shutil.copyfile(
            source / f"{name}{SUFFIX}", catalog.directory / f"{name}{SUFFIX}"
        )
        restored.append(name)
    return restored
