"""PEP-249-shaped exception hierarchy for the session layer.

The core pipeline raises its own precise exceptions (``ParseError``,
``RewriteError``, ``CatalogError``, ...).  The session layer maps them onto
the DB-API hierarchy at the cursor boundary -- applications catch
``ProgrammingError`` without knowing which pipeline stage failed -- while
keeping the original exception as ``__cause__``.  The mapping is applied
identically for in-process and remote deployments (the net client already
reconstructs server-side exception types), so error paths are
indistinguishable across the two.
"""

from __future__ import annotations


class Warning(Exception):  # shadows the builtin: PEP-249 mandates the name
    """Important non-fatal condition."""


class Error(Exception):
    """Base class of every session-layer error."""


class InterfaceError(Error):
    """Misuse of the session API itself (closed handles, bad arguments)."""


class DatabaseError(Error):
    """Base class for errors from the database pipeline."""


class DataError(DatabaseError):
    """A value could not be processed (bad encoding, domain overflow)."""


class OperationalError(DatabaseError):
    """The deployment misbehaved: connection loss, engine failure."""


class IntegrityError(DatabaseError):
    """Constraint violation (unused: the SQL dialect has no constraints)."""


class InternalError(DatabaseError):
    """The pipeline reached an inconsistent state."""


class ProgrammingError(DatabaseError):
    """Bad SQL, unknown table/column, parameter count mismatch."""


class NotSupportedError(DatabaseError):
    """The operation is outside SDB's secure operator suite."""


class TransactionConflict(OperationalError):
    """First-updater-wins validation failed at COMMIT.

    Another session committed a change to a row (or table) this
    transaction also wrote, so the whole transaction rolled back at the
    server; nothing was applied.  The statement sequence is safe to
    retry from BEGIN -- the canonical OLTP response (the TPC-C workload
    driver does exactly that).
    """


class ShardUnavailableError(OperationalError):
    """A shard (or an entire replica group) cannot serve the request.

    Raised by the net client when a transport fails mid-call (connection
    refused, reset, or closed by the peer) and by the cluster tier when a
    replica group has no live member left.  Single-member transport
    failures inside a replica group are *not* surfaced: the group evicts
    the dead member, promotes a caught-up replica, and retries -- callers
    only see this error when no replica can serve.
    """


def _mapping() -> list:
    """(exception class, api class) pairs, most specific first."""
    from repro.core.decryptor import DecryptionError
    from repro.core.encryptor import UploadError
    from repro.core.keystore import KeyStoreError
    from repro.core.rewriter import RewriteError, UnsupportedQueryError
    from repro.core.server import ServerBusyError, StaleSnapshotError
    from repro.core.txn import (
        TransactionConflictError,
        TransactionError,
        TransactionStateError,
    )
    from repro.engine.catalog import CatalogError
    from repro.engine.dml import DMLError
    from repro.engine.executor import ExecutionError
    from repro.engine.expressions import EvaluationError
    from repro.engine.udf import UDFError
    from repro.net.protocol import NetError
    from repro.sql.lexer import LexError
    from repro.sql.params import BindError
    from repro.sql.parser import ParseError

    return [
        (UnsupportedQueryError, NotSupportedError),
        (RewriteError, ProgrammingError),
        (ParseError, ProgrammingError),
        (LexError, ProgrammingError),
        (BindError, ProgrammingError),
        (KeyStoreError, ProgrammingError),
        (CatalogError, ProgrammingError),
        (UDFError, ProgrammingError),
        (EvaluationError, ProgrammingError),
        (DMLError, ProgrammingError),
        (TransactionConflictError, TransactionConflict),
        (TransactionStateError, ProgrammingError),
        (TransactionError, OperationalError),
        (ServerBusyError, OperationalError),
        (StaleSnapshotError, OperationalError),
        (ExecutionError, OperationalError),
        (DecryptionError, OperationalError),
        (UploadError, DataError),
        (OverflowError, DataError),
        (NetError, OperationalError),
        (ConnectionError, OperationalError),
        (OSError, OperationalError),
        (RuntimeError, OperationalError),
    ]


def map_exception(exc: BaseException) -> BaseException:
    """The API exception for a pipeline error (``exc`` itself if unmapped)."""
    if isinstance(exc, Error):
        return exc
    for source, target in _mapping():
        if isinstance(exc, source):
            mapped = target(str(exc))
            mapped.__cause__ = exc
            return mapped
    return exc
