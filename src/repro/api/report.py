"""The unified per-execution report: one typed object per query.

Historically the session layer scattered execution telemetry across loose
cursor attributes -- ``cursor.cost``, ``cursor.leakage``, ``cursor.notes``,
``cursor.rewritten_sql`` -- plus backend-specific surfaces (the cluster's
scatter report, the engine's batch/row execution path).  A
:class:`QueryReport` folds all of them into a single value that stays
available across streaming fetches.  The old cursor attributes remain as
thin deprecated delegates, so nothing breaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class QueryReport:
    """Everything one execution reported, in one place.

    ``scatter`` is the cluster coordinator's
    :class:`~repro.cluster.coordinator.ScatterReport` for this execution
    (None on single-SP deployments); ``exec_path`` /``batch_fallback``
    mirror the engine's ``last_exec_path``/``last_batch_fallback``
    observability attributes where the backend exposes an engine
    (best-effort: None over a wire, where the engine is out of reach).
    ``leakage`` already folds routing leakage into the rewrite's declared
    leakage -- it is the complete disclosure list for the execution.
    """

    kind: str
    rewritten_sql: Optional[str]
    cost: Optional[object]           # CostBreakdown
    leakage: tuple
    notes: tuple
    scatter: Optional[object] = None  # ScatterReport
    exec_path: Optional[str] = None   # 'batch' | 'row' | None (unknown)
    batch_fallback: Optional[str] = None
    #: replica failover events (suspect/evict/promote) absorbed by this
    #: execution's transparent retry -- empty on a healthy cluster
    failover: tuple = ()
    #: per-phase durations in seconds (parse/rewrite/bind/route/scatter/
    #: merge/server/decrypt), folded from the execution's span timings;
    #: None when the backend reported none
    timing: Optional[dict] = None

    @property
    def scatter_leakage(self) -> tuple:
        """The routing-only slice of :attr:`leakage`."""
        return tuple(self.scatter.leakage) if self.scatter is not None else ()

    def pretty(self) -> str:
        lines = [f"-- {self.kind.upper()} --"]
        if self.rewritten_sql:
            lines.append(f"rewritten: {self.rewritten_sql}")
        if self.scatter is not None:
            lines.append(
                f"route: {self.scatter.mode} over {self.scatter.shards} "
                f"shard(s) ({self.scatter.reason})"
            )
        if self.failover:
            lines.append("failover events:")
            lines.extend(f"  - {event}" for event in self.failover)
        if self.exec_path:
            path = self.exec_path
            if self.batch_fallback:
                path += f" (batch fallback: {self.batch_fallback})"
            lines.append(f"execution path: {path}")
        lines.append("declared leakage:")
        if self.leakage:
            lines.extend(f"  - {item}" for item in self.leakage)
        else:
            lines.append("  (none)")
        if self.notes:
            lines.append("notes:")
            lines.extend(f"  - {note}" for note in self.notes)
        if self.timing:
            lines.append("timing:")
            lines.extend(
                f"  {phase}: {seconds * 1000.0:.3f} ms"
                for phase, seconds in self.timing.items()
                if seconds is not None
            )
        return "\n".join(lines)

    # ``render`` is the name some tooling expects; same text as pretty().
    render = pretty
