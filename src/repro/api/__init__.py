"""The session layer: a PEP-249-shaped client API for SDB.

The paper's proxy re-parses, re-rewrites and re-derives decryption plans
for every SQL string it receives.  This package gives applications the
lifecycle a database driver normally has -- and gives SDB a place to
amortize exactly the client-side work the cost breakdown blames::

    import repro.api as api

    conn = api.connect(modulus_bits=256)
    conn.proxy.create_table(...)                       # DDL/upload is proxy API

    cur = conn.cursor()
    cur.execute("SELECT dept, SUM(sal) AS t FROM pay GROUP BY dept")
    for dept, total in cur:
        ...

    q6 = conn.prepare(
        "SELECT SUM(price * disc) AS rev FROM lineitem "
        "WHERE qty < ? AND disc BETWEEN ? AND ?")
    cur.execute(q6, [24, 0.05, 0.07])                  # parse+rewrite amortized
    cur.execute(q6, [25, 0.03, 0.05])                  # ...bind only
    print(cur.fetchone())

Highlights:

* ``?`` parameters flow through the lexer, parser and rewriter; a prepared
  SELECT caches its rewritten query + decryption plan per parameter *type
  signature* and binds by computing a few deferred ring literals -- the SP
  never sees the plaintext parameter of a sensitive operation, and each
  single execution looks exactly like an inlined-constant query.  The one
  declared delta vs. string re-execution: a cached plan reuses its
  rewrite-time masks/tokens across executions (surfaced as a ``prepared:``
  leakage entry on the plan).
* Results stream: rows stay at the SP and are fetched + decrypted in
  ``cursor.arraysize`` chunks.
* The same Cursor works in-process and against a remote SP daemon --
  ``connect(host=..., port=...)`` -- where PREPARE ships the rewritten SQL
  once and EXECUTE carries only bindings.
* Every connection has an LRU statement cache (``cache_info()``), so even
  plain string re-execution skips parse + rewrite.
* Every deployment shape satisfies the typed :class:`~repro.api.backend.Backend`
  protocol, and every connection owns an
  :class:`~repro.api.backend.ExecutionContext` (session id, snapshot
  epoch, statement-cache handle, leakage accumulator) -- the explicit
  session model that replaced the per-server global lock.  Read-only
  statements from different sessions execute concurrently; DML/DDL runs
  exclusively and bumps the snapshot epoch.
* The same session surface exists in ``async``/``await`` form:
  ``repro.api.aio`` (``aconnect() -> AsyncConnection -> AsyncCursor``),
  differentially pinned row-for-row against this module.
"""

from repro.api.backend import (
    Backend,
    ClusterBackend,
    ExecutionContext,
    ShardBackend,
)
from repro.api.connection import CacheInfo, Connection, connect
from repro.api.cursor import Cursor
from repro.api.exceptions import (
    DatabaseError,
    DataError,
    Error,
    IntegrityError,
    InterfaceError,
    InternalError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
    ShardUnavailableError,
    TransactionConflict,
    Warning,
)
from repro.api.statement import SelectExecution, Statement

#: PEP-249 module globals
apilevel = "2.0"
threadsafety = 1  # threads may share the module, not connections
paramstyle = "qmark"

__all__ = [
    "connect",
    "Connection",
    "Cursor",
    "Statement",
    "SelectExecution",
    "CacheInfo",
    "Backend",
    "ShardBackend",
    "ClusterBackend",
    "ExecutionContext",
    "apilevel",
    "threadsafety",
    "paramstyle",
    "Warning",
    "Error",
    "InterfaceError",
    "DatabaseError",
    "DataError",
    "OperationalError",
    "IntegrityError",
    "InternalError",
    "ProgrammingError",
    "NotSupportedError",
    "ShardUnavailableError",
    "TransactionConflict",
]
