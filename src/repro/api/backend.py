"""The execution backend protocol and per-session execution contexts.

Every deployment shape the session layer can drive -- in-process
:class:`~repro.core.server.SDBServer`, crash-safe
:class:`~repro.storage.durable.DurableServer`, networked
:class:`~repro.net.client.RemoteServer`, sharded
:class:`~repro.cluster.Coordinator` -- presents the same duck-typed
surface.  This module makes that contract *formal*: :class:`Backend` is
the typed protocol the proxy and session layer program against, and the
conformance of every concrete backend is pinned by
``tests/api/test_backend_protocol.py``.

Alongside it lives :class:`ExecutionContext`: the per-session identity
that replaces the old "one global lock, no sessions" model.  A
:class:`~repro.api.connection.Connection` owns exactly one context --
session id, last observed snapshot epoch, a handle on the session's
statement cache, and a leakage accumulator -- and threads it through
cursor -> statement -> proxy, while the session id travels over the wire
so a networked SP can key its dispatch (and per-session statistics) by
session rather than by socket.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Optional, Protocol, Sequence, runtime_checkable

__all__ = [
    "Backend",
    "ShardBackend",
    "ClusterBackend",
    "ExecutionContext",
    "next_session_id",
]

_session_ids = itertools.count(1)


def next_session_id() -> int:
    """A process-unique session id (connections, wire clients)."""
    return next(_session_ids)


@runtime_checkable
class Backend(Protocol):
    """What the proxy and session layer require of an execution backend.

    Implementations must be safe for concurrent use by multiple sessions:
    read-only entry points (``execute``, ``execute_prepared`` of SELECTs,
    ``fetch_rows``) may run in parallel, while mutations (``execute_dml``,
    ``store_table``, ``drop_table``, transaction control) are exclusive
    and advance the backend's snapshot epoch.
    """

    # -- storage ---------------------------------------------------------------

    def store_table(self, name: str, table, replace: bool = False) -> None: ...

    def drop_table(self, name: str) -> None: ...

    # -- statements ------------------------------------------------------------

    def execute(self, query): ...

    def execute_dml(self, statement) -> int: ...

    # -- transactions ----------------------------------------------------------
    #
    # Session-scoped (see repro.core.txn): ``session`` is the
    # ExecutionContext / wire session id whose write set the call
    # addresses; None is the legacy anonymous (server-global) form.

    def begin(self, session=None) -> None: ...

    def commit(self, session=None) -> None: ...

    def rollback(self, session=None) -> None: ...

    # -- prepared statements / streaming fetch ----------------------------------

    def prepare_query(self, query) -> int: ...

    def execute_prepared(
        self, stmt_id: int, params: Sequence = ()
    ) -> tuple[int, int]: ...

    def fetch_rows(self, result_id: int, count: Optional[int] = None): ...

    def close_result(self, result_id: int) -> None: ...

    def close_prepared(self, stmt_id: int) -> None: ...


@runtime_checkable
class ShardBackend(Backend, Protocol):
    """A backend that can additionally serve as one shard of a cluster."""

    def shard_status(self) -> dict: ...

    def shard_store(
        self, name: str, table, placement=None, replace: bool = False
    ) -> int: ...

    def shard_dump(
        self, name: str, offset: Optional[int] = None,
        count: Optional[int] = None,
    ): ...

    def append_table(self, name: str, table) -> int: ...

    def execute_partial(self, query): ...

    # -- elastic resharding (bucket-chunk migration; see cluster.rebalance) ----

    def shard_migrate_extract(
        self,
        name: str,
        num_chunks: int,
        chunk: int,
        old_modulus: int,
        new_modulus: int,
    ): ...

    def shard_migrate_stage(self, name: str, table, placement=None) -> int: ...

    def shard_migrate_unstage(
        self, name: str, num_chunks: int, chunk: int
    ) -> int: ...

    def shard_migrate_promote(self, name: str, placement=None) -> int: ...

    def shard_migrate_purge(
        self, name: str, modulus: int, keep_index: int, placement=None
    ) -> int: ...

    def shard_migrate_abort(self, name: str) -> bool: ...


@runtime_checkable
class ClusterBackend(Backend, Protocol):
    """The extra surface a scatter-gather coordinator presents."""

    @property
    def num_shards(self) -> int: ...

    def shard_column(self, name: str) -> Optional[str]: ...

    def store_sharded(
        self,
        name: str,
        table,
        shard_column: str,
        buckets: Sequence[int],
        replace: bool = False,
    ) -> None: ...

    def insert_routed(
        self, statement, buckets: Sequence[int], session=None
    ) -> int: ...

    def scatter_report(self, result_id: int): ...

    # -- elastic resharding (driven by repro.cluster.rebalance) -----------------

    @property
    def topology(self): ...

    def begin_rebalance(self, plan, incoming: Sequence = ()): ...

    def migration_pending(self) -> tuple: ...

    def copy_chunk(self, table: str, chunk: int, rekey) -> int: ...

    def commit_rebalance(self, rekey, on_step=None): ...

    def recover_rebalance(self) -> str: ...


@dataclass
class ExecutionContext:
    """Per-session execution state, threaded through the stack.

    One instance per :class:`~repro.api.connection.Connection`; everything
    the old global-lock design kept implicit (who is executing, against
    which snapshot, with which plan cache, leaking what) is explicit here.
    """

    #: process-unique session identity; travels on the wire so a networked
    #: SP keys its per-session dispatch queues and statistics by it
    session_id: int = field(default_factory=next_session_id)
    #: snapshot epoch of the backend as of this session's last statement
    #: (None until the backend reports one)
    epoch: Optional[int] = None
    #: handle on the session's statement cache (the Connection's LRU); the
    #: cache travels with the context so anything holding the context can
    #: reach the session's prepared plans
    statements: Optional[object] = None
    #: per-session leakage accumulator: every declared leakage entry of
    #: every statement this session executed, in execution order
    leakage: list = field(default_factory=list)
    #: statements executed through this context
    executions: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def observe_epoch(self, epoch: Optional[int]) -> None:
        """Record the backend snapshot epoch a statement executed against."""
        if epoch is None:
            return
        with self._lock:
            self.epoch = epoch

    def record_statement(self, leakage: Sequence[str] = ()) -> None:
        """Account one executed statement (and what it declared leaking)."""
        with self._lock:
            self.executions += 1
            if leakage:
                self.leakage.extend(leakage)

    def leakage_report(self) -> tuple:
        """Everything this session has declared leaking so far."""
        with self._lock:
            return tuple(self.leakage)
