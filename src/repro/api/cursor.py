"""The DB-API cursor: execute, stream, iterate.

A cursor is a lightweight view over one execution at a time.  SELECT rows
are pulled from the server (and decrypted) lazily in ``arraysize`` chunks;
``fetchall`` on a million-row result still decrypts it, but ``fetchone`` on
the same result decrypts only the first chunk.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

from repro.api import exceptions as exc
from repro.api.statement import SelectExecution, Statement

#: description type codes, per output value kind
_TYPE_CODES = {"int": "INT", "decimal": "DECIMAL", "date": "DATE",
               "string": "STRING", "bool": "BOOL"}


class Cursor:
    """PEP-249 cursor over one :class:`~repro.api.connection.Connection`."""

    def __init__(self, connection):
        self.connection = connection
        self.arraysize = 256
        self.description: Optional[tuple] = None
        self.rowcount = -1
        self.statement: Optional[Statement] = None
        self._execution: Optional[SelectExecution] = None
        self._dml_result = None
        self._buffer: deque = deque()
        self._schema = None  # schema of the last decrypted chunk
        self._static_rows = False  # buffer holds pre-rendered rows (EXPLAIN)
        self._plan = None  # PlanNode from the last EXPLAIN on this cursor
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._reset()
        self._closed = True
        self.connection._cursors.discard(self)

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise exc.InterfaceError("cursor is closed")
        self.connection._check_open()

    def _reset(self) -> None:
        if self._execution is not None:
            self._execution.close()
        self._execution = None
        self._dml_result = None
        self._buffer.clear()
        self._schema = None
        self._static_rows = False
        self._plan = None
        self.description = None
        self.rowcount = -1

    # -- execution ----------------------------------------------------------

    def execute(self, operation, params: Sequence = ()) -> "Cursor":
        """Run a statement; ``operation`` is SQL text or a prepared Statement."""
        self._check_open()
        self._reset()
        try:
            if isinstance(operation, Statement):
                statement = operation
            else:
                statement = self.connection.statement(operation)
            self.statement = statement
            if statement.kind == "select":
                self._execution = statement.execute_select(params)
                self.rowcount = self._execution.num_rows
                self.description = _describe(self._execution.plan)
            elif statement.kind == "explain":
                self._plan = statement.execute_explain()
                self._load_plan_rows(self._plan)
            else:
                self._dml_result = statement.execute_dml(params)
                self.rowcount = self._dml_result.affected
        except exc.Error:
            raise
        except Exception as error:
            raise exc.map_exception(error) from error
        return self

    def executemany(self, operation, seq_of_params) -> "Cursor":
        """Run a DML statement once per parameter row; sums ``rowcount``."""
        self._check_open()
        self._reset()
        try:
            if isinstance(operation, Statement):
                statement = operation
            else:
                statement = self.connection.statement(operation)
            self.statement = statement
            if statement.kind in ("select", "explain"):
                raise exc.ProgrammingError(
                    f"executemany cannot run a {statement.kind} statement; "
                    "iterate execute() for queries"
                )
            total = 0
            last = None
            for params in seq_of_params:
                last = statement.execute_dml(params)
                total += last.affected
            self._dml_result = last
            self.rowcount = total
        except exc.Error:
            raise
        except Exception as error:
            raise exc.map_exception(error) from error
        return self

    def _load_plan_rows(self, tree) -> None:
        """Expose an EXPLAIN plan tree as a one-column static result set."""
        from repro.engine.schema import ColumnSpec, DataType, Schema

        lines = tree.explain().split("\n")
        self._buffer.extend((line,) for line in lines)
        self._static_rows = True
        self._schema = Schema((ColumnSpec("plan", DataType.STRING),))
        self.rowcount = len(lines)
        self.description = (("plan", "STRING", None, None, None, None, None),)

    # -- fetch --------------------------------------------------------------

    def _require_results(self) -> SelectExecution:
        if self._execution is None:
            raise exc.InterfaceError("no result set (execute a SELECT first)")
        return self._execution

    @staticmethod
    def _fetch_mapped(fetch, *args):
        """Run a fetch step, mapping pipeline errors like execute() does.

        Pipelined results evaluate rows at FETCH time, so runtime errors
        (division by zero, ...) that used to surface inside execute() now
        surface here -- they must land in the same PEP-249 hierarchy.
        """
        try:
            return fetch(*args)
        except exc.Error:
            raise
        except Exception as error:
            raise exc.map_exception(error) from error

    def _refill(self, want: int) -> None:
        if self._static_rows:
            return  # EXPLAIN rows are fully buffered at execute time
        execution = self._require_results()
        while len(self._buffer) < want and not execution.closed:
            chunk = self._fetch_mapped(
                execution.fetch_chunk, max(self.arraysize, want)
            )
            self._schema = chunk.schema
            if chunk.num_rows == 0:
                break
            self._buffer.extend(chunk.rows())

    def fetchone(self) -> Optional[tuple]:
        self._check_open()
        self._refill(1)
        return self._buffer.popleft() if self._buffer else None

    def fetchmany(self, size: Optional[int] = None) -> list:
        self._check_open()
        want = self.arraysize if size is None else size
        self._refill(want)
        return [self._buffer.popleft() for _ in range(min(want, len(self._buffer)))]

    def fetchall(self) -> list:
        self._check_open()
        if self._static_rows:
            rows = list(self._buffer)
            self._buffer.clear()
            return rows
        execution = self._require_results()
        rows = list(self._buffer)
        self._buffer.clear()
        if not execution.closed:
            rest = self._fetch_mapped(execution.fetch_rest)
            self._schema = rest.schema
            rows.extend(rest.rows())
        return rows

    def fetch_table(self):
        """Remaining rows as a :class:`~repro.engine.table.Table`.

        Most useful straight after ``execute`` (the shell and the proxy's
        compatibility shim render whole relations); rows already buffered
        by ``fetchone``/``fetchmany`` are included, so mixing is safe.
        """
        self._check_open()
        if self._static_rows:
            from repro.engine.table import Table

            rows = list(self._buffer)
            self._buffer.clear()
            return Table.from_rows(self._schema, rows)
        execution = self._require_results()
        table = (
            self._fetch_mapped(execution.fetch_rest)
            if not execution.closed
            else None
        )
        if table is not None:
            self._schema = table.schema
        if self._buffer:
            buffered = list(self._buffer)
            self._buffer.clear()
            from repro.engine.table import Table

            rebuilt = buffered + (list(table.rows()) if table is not None else [])
            return Table.from_rows(self._schema, rebuilt)
        if table is None:
            if self._schema is not None:
                from repro.engine.table import Table

                return Table.empty(self._schema)
            raise exc.InterfaceError("result set already consumed")
        return table

    def __iter__(self):
        return self

    def __next__(self):
        row = self.fetchone()
        if row is None:
            raise StopIteration
        return row

    # -- PEP-249 no-ops ------------------------------------------------------

    def setinputsizes(self, sizes) -> None:  # deliberate no-op (PEP-249)
        pass

    def setoutputsize(self, size, column=None) -> None:
        pass

    # -- SDB extensions ------------------------------------------------------

    def explain(self, operation=None):
        """The structured plan tree, without executing anything.

        With ``operation`` (SQL text or a prepared Statement), plan it
        directly; with no argument, return the tree from the last
        ``EXPLAIN`` executed on this cursor.  Either way the result is the
        same :class:`~repro.engine.planner.PlanNode` the ``EXPLAIN``
        statement and the shell's ``\\explain`` render -- one plan object,
        three surfaces.
        """
        self._check_open()
        if operation is None:
            if self._plan is None:
                raise exc.InterfaceError(
                    "no plan: execute an EXPLAIN first, or pass a statement"
                )
            return self._plan
        try:
            from repro.core.explain import plan as build_plan

            source = (
                operation.parsed
                if isinstance(operation, Statement)
                else operation
            )
            self._plan = build_plan(self.connection.proxy, source)
        except exc.Error:
            raise
        except Exception as error:
            raise exc.map_exception(error) from error
        return self._plan

    @property
    def plan(self):
        """Plan tree from the last ``EXPLAIN``/:meth:`explain` (or None)."""
        return self._plan

    @property
    def report(self):
        """Unified :class:`~repro.api.report.QueryReport` for the last execution.

        Folds the legacy per-attribute telemetry (``cost``,
        ``rewritten_sql``, ``leakage``, ``notes``), the cluster scatter
        report, and the engine's batch/row execution path into one frozen
        value.  Built on access from the retained execution handle, so it
        survives streaming fetches; None before any execution.
        """
        from repro.api.report import QueryReport

        if self._execution is not None:
            execution = self._execution
            engine = getattr(self.connection.proxy.server, "engine", None)
            return QueryReport(
                kind="select",
                rewritten_sql=execution.rewritten_sql,
                cost=execution.cost(),
                leakage=execution.plan.leakage + execution.scatter_leakage,
                notes=execution.plan.notes,
                scatter=execution.scatter,
                exec_path=getattr(engine, "last_exec_path", None),
                batch_fallback=getattr(engine, "last_batch_fallback", None),
                failover=tuple(
                    getattr(execution.scatter, "failover", ()) or ()
                ),
                timing=execution.timing_summary(),
            )
        if self._dml_result is not None:
            result = self._dml_result
            return QueryReport(
                kind=self.statement.kind if self.statement else "dml",
                rewritten_sql=result.rewritten_sql,
                cost=result.cost,
                leakage=tuple(result.leakage),
                notes=tuple(result.notes),
            )
        return None

    # The attribute quartet below predates QueryReport.  Each is a
    # deprecated alias kept for compatibility; prefer ``cursor.report``.

    @property
    def cost(self):
        """Per-execution :class:`~repro.core.proxy.CostBreakdown` so far.

        Deprecated alias: prefer ``cursor.report.cost``.
        """
        if self._execution is not None:
            return self._execution.cost()
        if self._dml_result is not None:
            return self._dml_result.cost
        return None

    @property
    def rewritten_sql(self) -> Optional[str]:
        """Deprecated alias: prefer ``cursor.report.rewritten_sql``."""
        if self._execution is not None:
            return self._execution.rewritten_sql
        if self._dml_result is not None:
            return self._dml_result.rewritten_sql
        return None

    @property
    def leakage(self) -> tuple:
        """Deprecated alias: prefer ``cursor.report.leakage``."""
        if self._execution is not None:
            return self._execution.plan.leakage + self._execution.scatter_leakage
        if self._dml_result is not None:
            return self._dml_result.leakage
        return ()

    @property
    def notes(self) -> tuple:
        """Deprecated alias: prefer ``cursor.report.notes``."""
        if self._execution is not None:
            return self._execution.plan.notes
        if self._dml_result is not None:
            return self._dml_result.notes
        return ()


def _describe(plan) -> tuple:
    """PEP-249 7-tuples from the decryption plan's output columns."""
    from repro.core.plan import PlainSlot, ShareSlot

    description = []
    for output in plan.outputs:
        vtype = None
        if isinstance(output.spec, (PlainSlot, ShareSlot)):
            vtype = output.spec.vtype
        type_code = _TYPE_CODES.get(vtype.kind) if vtype is not None else None
        precision = scale = None
        if vtype is not None and vtype.kind == "decimal":
            scale = vtype.scale
        internal_size = vtype.width if vtype is not None else None
        description.append(
            (output.name, type_code, None, internal_size, precision, scale, None)
        )
    return tuple(description)
