"""Prepared statements: the query pipeline as a first-class, cacheable value.

A :class:`Statement` captures every stage of the proxy pipeline --

    parse -> rewrite -> (decryption plan) -> execute -> decrypt

-- so that the per-execution work of a repeated query collapses to binding
parameters and running the already-rewritten query.  Concretely:

* **parse** happens once, at construction;
* **rewrite** happens once per parameter *type signature* (an ``int``
  parameter and a ``decimal(2)`` parameter need different ring scales) and
  is invalidated by :attr:`KeyStore.version` (table/view changes, key
  rotation);
* **bind** computes the rewritten query's deferred literals -- ring
  encodings and token/key-inverse maskings recorded as
  :class:`~repro.core.plan.ParamSlot` transforms -- a few modular
  multiplications, not a re-rewrite;
* **execute** submits through the prepared-statement surface of the server
  (in-process or remote: both expose ``prepare_query`` /
  ``execute_prepared`` / ``fetch_rows`` / ``close_*``), so a remote
  deployment ships the rewritten SQL once and then only parameter bindings;
* **decrypt** streams: results stay at the SP and are decrypted in
  fetch-sized chunks as the application reads them.
"""

from __future__ import annotations

import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.plan import RewrittenQuery
from repro.core.rewriter import infer_param_type
from repro.engine.table import Table
from repro.obs import trace as obs_trace
from repro.obs.metrics import DEFAULT_BUCKETS, global_metrics
from repro.sql import ast
from repro.sql.params import BindError, bind_parameters, num_parameters
from repro.sql.parser import parse_statement

_QUERY_SECONDS = global_metrics().histogram(
    "sdb_query_seconds",
    "end-to-end SELECT latency by route kind",
    buckets=DEFAULT_BUCKETS,
)
_PLAN_EVICTIONS = global_metrics().counter(
    "sdb_plan_cache_evictions_total",
    "prepared-statement plan variants evicted from the per-statement LRU",
)

_KINDS = {
    ast.Select: "select",
    ast.Insert: "insert",
    ast.Update: "update",
    ast.Delete: "delete",
    ast.TxnControl: "txn",
    ast.CreateTable: "create",
    ast.AlterCluster: "alter",
    ast.Explain: "explain",
}


def _release_handles(server_handles: list) -> None:
    """Close a statement's server-side handles (close() or GC finalizer)."""
    for server, stmt_id in server_handles:
        try:
            server.close_prepared(stmt_id)
        except Exception:
            pass  # connection already torn down
    server_handles.clear()


def _release_result(handle: list) -> None:
    """Close a server-side result set (close() or GC finalizer)."""
    if handle:
        server, result_id = handle
        handle.clear()
        try:
            server.close_result(result_id)
        except Exception:
            pass  # connection already torn down


@dataclass
class _PlanVariant:
    """One rewrite of a statement, specialized to a parameter signature."""

    plan: RewrittenQuery
    sql_text: str                  # rendered once; reused by results/channel
    store_version: int
    rewrite_s: float
    stmt_id: Optional[int] = None  # server-side prepared handle
    server_id: Optional[int] = None  # id() of the server holding stmt_id
    charged: bool = False          # rewrite cost reported once, then amortized


class Statement:
    """A parsed (and, for SELECTs, rewritten) statement bound to a connection."""

    #: plan variants held per statement; organic workloads can produce one
    #: signature per float precision or string length, so the dict is an
    #: LRU rather than unbounded (eviction also releases the variant's
    #: server-side handle)
    MAX_PLAN_VARIANTS = 8

    def __init__(self, connection, sql: str):
        self.connection = connection
        self.sql = sql
        t0 = time.perf_counter()
        self.parsed = parse_statement(sql)
        self.parse_s = time.perf_counter() - t0
        self.kind = _KINDS[type(self.parsed)]
        self.num_params = num_parameters(self.parsed)
        self._variants: OrderedDict[tuple, _PlanVariant] = OrderedDict()
        self._parse_charged = False  # parse cost reported on first execution
        self.executions = 0
        #: monotonic timestamp of the last execution (None: never executed)
        self.last_used_at: Optional[float] = None
        self.closed = False
        # server-side prepared handles this statement owns, as mutable
        # [server, stmt_id] pairs shared with a GC finalizer: a statement
        # evicted from the connection's LRU cache stays usable for anyone
        # still holding it, and its handles are released when it is
        # garbage-collected (or close()d), never while in use
        self._server_handles: list = []
        self._finalizer = weakref.finalize(
            self, _release_handles, self._server_handles
        )

    def __repr__(self) -> str:
        return f"Statement({self.kind}, {self.num_params} params, {self.sql[:60]!r})"

    @property
    def proxy(self):
        return self.connection.proxy

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release server-side prepared handles; the statement dies."""
        if self.closed:
            return
        self.closed = True
        _release_handles(self._server_handles)
        self._variants.clear()

    def _check_open(self) -> None:
        if self.closed:
            raise BindError("statement is closed")

    # -- execution ----------------------------------------------------------

    def execute(self, params: Sequence = ()):
        """Run with ``params`` bound; returns the execution handle.

        SELECTs return a :class:`SelectExecution` (streaming); DML and
        transaction control return the proxy's
        :class:`~repro.core.proxy.DMLResult`.
        """
        self._check_open()
        params = tuple(params)
        if self.kind == "select":
            return self.execute_select(params)
        if self.kind == "explain":
            return self.execute_explain()
        return self.execute_dml(params)

    def execute_explain(self):
        """Build the plan tree for an ``EXPLAIN <stmt>`` without executing.

        Returns the :class:`~repro.engine.planner.PlanNode` root.  The
        inner statement is rewritten (SELECT/UPDATE/DELETE) or described
        (INSERT/control) but never sent for execution, so EXPLAIN has no
        observable effect at the service provider beyond the routing probe
        a cluster coordinator answers locally.
        """
        self._check_open()
        from repro.core.explain import plan as build_plan

        tree = build_plan(self.proxy, self.parsed)
        self._parse_charged = True
        self._mark_used()
        return tree

    def _mark_used(self) -> None:
        self.executions += 1
        self.last_used_at = time.monotonic()

    def signatures(self) -> list[str]:
        """Rendered parameter type signatures of the cached plan variants."""
        def fmt(vtype) -> str:
            if vtype is None:
                return "null"
            if vtype.kind == "decimal":
                return f"decimal({vtype.scale})"
            if vtype.kind == "string":
                return f"string({vtype.width})"
            return vtype.kind

        return [
            "(" + ", ".join(fmt(v) for v in signature) + ")"
            for signature in self._variants
        ]

    def execute_select(self, params: Sequence = ()) -> "SelectExecution":
        self._check_open()
        params = tuple(params)
        if len(params) != self.num_params:
            raise BindError(
                f"statement expects {self.num_params} parameter(s), "
                f"got {len(params)}"
            )
        proxy = self.proxy
        context = self.connection.context
        tracer = getattr(self.connection, "tracer", obs_trace.NOOP_TRACER)
        t_total = time.perf_counter()
        with tracer.span("query") as root:
            root.set_attr("kind", "select")
            root.set_attr("params", len(params))
            # plan validation through server execution holds the shared side
            # of the proxy's key-epoch lock: the plan embeds the column keys
            # it was rewritten under, and a key rotation (exclusive side)
            # re-keying the stored shares in between would make the result
            # undecryptable.  Reads from different sessions still overlap.
            with proxy._key_lock.read_locked():
                variant = self._variant_for(params)
                t_bind = time.perf_counter()
                # mask-deferred plans re-draw their comparison masks / tokens
                # here, so consecutive binds are unlinkable on the wire
                literals = variant.plan.bind_slots(
                    proxy.store.keys.n, params, rng=proxy.rewriter.rng
                )
                bind_s = time.perf_counter() - t_bind
                tracer.record_timed(
                    "bind", root if root else None, t_bind, t_bind + bind_s,
                    slots=len(literals),
                )

                t0 = time.perf_counter()
                server = proxy.server
                if variant.stmt_id is None or variant.server_id != id(server):
                    # in-process servers take the AST directly; remote ones
                    # render the SQL text once and ship it over the wire.  The
                    # server identity check re-prepares after a server swap
                    # (e.g. crash recovery replacing proxy.server) so a stale
                    # handle can never alias a fresh one.
                    variant.stmt_id = server.prepare_query(
                        variant.plan.query, session=context.session_id
                    )
                    variant.server_id = id(server)
                    self._server_handles.append([server, variant.stmt_id])
                result_id, num_rows = server.execute_prepared(
                    variant.stmt_id, literals, session=context.session_id
                )
                server_s = time.perf_counter() - t0
            self._mark_used()
            # snapshot-epoch observation: in-process backends expose the epoch
            # as a plain attribute; wire backends make it an explicit call, so
            # the opportunistic read stays free of extra round trips
            epoch = getattr(server, "epoch", None)
            context.observe_epoch(epoch if isinstance(epoch, int) else None)
            # cluster deployments report how the query was routed (and what
            # the routing itself leaked); read it keyed by our result id so a
            # concurrent session's route can never be attributed to this one
            reporter = getattr(server, "scatter_report", None)
            scatter = reporter(result_id) if callable(reporter) else None
            proxy.channel.record_query(
                f"EXECUTE s{variant.stmt_id} ({len(literals)} bound values)"
            )

            parse_s = 0.0 if self._parse_charged else self.parse_s
            self._parse_charged = True
            # binding is the per-execution remainder of rewriting
            rewrite_s = bind_s
            if not variant.charged:
                variant.charged = True
                rewrite_s += variant.rewrite_s
            context.record_statement(
                variant.plan.leakage
                + (tuple(scatter.leakage) if scatter else ())
            )
            route = scatter.mode if scatter is not None else "single"
            root.set_attr("route", route)
            if num_rows >= 0:
                root.set_attr("rows", num_rows)
        elapsed = time.perf_counter() - t_total
        _QUERY_SECONDS.labels(route=route).observe(elapsed)
        execution = SelectExecution(
            statement=self,
            variant=variant,
            params=params,
            result_id=result_id,
            num_rows=num_rows,
            parse_s=parse_s,
            rewrite_s=rewrite_s,
            bind_s=bind_s,
            server_s=server_s,
            scatter=scatter,
            scatter_leakage=tuple(scatter.leakage) if scatter else (),
            root_span=root if root else None,
        )
        slowlog = getattr(self.connection, "slowlog", None)
        if slowlog is not None and slowlog.is_slow(elapsed):
            self.connection._record_slow_select(elapsed, execution)
        return execution

    def execute_dml(self, params: Sequence = ()):
        """Bind into the parsed AST and run the proxy's DML pipeline.

        DML cannot cache its rewrite (INSERT draws fresh row ids, UPDATE
        re-keys under per-statement masks), so only the parse is amortized.
        """
        self._check_open()
        bound = bind_parameters(self.parsed, tuple(params))
        context = self.connection.context
        from repro.core.txn import TransactionConflictError

        try:
            result = self.proxy.execute_statement(bound, context=context)
        except TransactionConflictError:
            if self.kind == "txn" and bound.kind == "commit":
                # the server rolled the transaction back on conflict; the
                # connection must not believe one is still open
                self.connection._in_txn = False
            raise
        self._parse_charged = True
        self._mark_used()
        context.record_statement(result.leakage)
        epoch = getattr(self.proxy.server, "epoch", None)
        context.observe_epoch(epoch if isinstance(epoch, int) else None)
        if self.kind == "txn":
            # keep the connection's transaction flag honest for SQL-level
            # BEGIN/COMMIT/ROLLBACK, so Connection.commit() after a
            # cursor-issued BEGIN actually commits instead of no-opping
            self.connection._in_txn = bound.kind == "begin"
        return result

    # -- plan cache ---------------------------------------------------------

    def _variant_for(self, params: tuple) -> _PlanVariant:
        signature = tuple(infer_param_type(value) for value in params)
        store = self.proxy.store
        variant = self._variants.get(signature)
        if variant is not None and variant.store_version == store.version:
            self._variants.move_to_end(signature)
            return variant
        if variant is not None:
            # key rotation / schema change: the cached rewrite embeds stale
            # key-update parameters -- drop the server-side handle too
            self._drop_variant_handle(variant)
        t0 = time.perf_counter()
        parent = obs_trace.current_span()
        plan = self.proxy.rewriter.rewrite(self.parsed, param_types=signature)
        # bind-time re-masking: mask/token literals become extra bind
        # markers, re-drawn per execution, so caching this plan does not
        # let the SP correlate masked values across executions
        plan = plan.defer_masks()
        if self.num_params and plan.leakage:
            # what caching still leaks: the SP sees the same prepared
            # handle (same plan shape, same slot positions) per execution,
            # so executions of one statement remain linkable as such even
            # though their masked literals are fresh.  Declare it the way
            # every other leakage source is declared.
            if plan.masks_deferred or not plan.mask_sites:
                plan.leakage = plan.leakage + (
                    "prepared: executions share one plan shape (linkable "
                    "by statement handle); masks/tokens are re-drawn per "
                    "bind",
                )
            else:
                plan.leakage = plan.leakage + (
                    "prepared: rewrite-time masks/tokens are reused across "
                    "executions of this plan",
                )
        sql_text = plan.sql
        rewrite_s = time.perf_counter() - t0
        if parent is not None:
            parent.tracer.record_timed(
                "rewrite", parent, t0, t0 + rewrite_s,
                variants=len(self._variants) + 1,
            )
        variant = _PlanVariant(
            plan=plan,
            sql_text=sql_text,
            store_version=store.version,
            rewrite_s=rewrite_s,
        )
        self._variants[signature] = variant
        while len(self._variants) > self.MAX_PLAN_VARIANTS:
            _, evicted = self._variants.popitem(last=False)
            self._drop_variant_handle(evicted)
            _PLAN_EVICTIONS.inc()
        self.proxy.channel.record_query(sql_text)
        return variant

    def _drop_variant_handle(self, variant: "_PlanVariant") -> None:
        """Release a variant's server-side handle, if it still owns one.

        The server-identity check matters: after a server swap, handle ids
        restart and this stmt_id may now belong to someone else.
        """
        server = self.proxy.server
        if variant.stmt_id is None or variant.server_id != id(server):
            return
        try:
            server.close_prepared(variant.stmt_id)
        except Exception:
            pass
        self._server_handles[:] = [
            pair for pair in self._server_handles
            if not (pair[0] is server and pair[1] == variant.stmt_id)
        ]
        variant.stmt_id = None
        variant.server_id = None

    @property
    def plan_variants(self) -> int:
        """How many specialized rewrites this statement holds (introspection)."""
        return len(self._variants)


@dataclass
class SelectExecution:
    """One execution of a prepared SELECT: a server-side streaming result."""

    statement: Statement
    variant: _PlanVariant
    params: tuple
    result_id: int
    num_rows: int
    parse_s: float = 0.0
    rewrite_s: float = 0.0
    bind_s: float = 0.0
    server_s: float = 0.0
    decrypt_s: float = 0.0
    fetched: int = 0
    closed: bool = False
    #: full routing report from a cluster coordinator (None on single SP)
    scatter: Optional[object] = None
    #: routing leakage reported by a cluster coordinator for this execution
    scatter_leakage: tuple = ()
    #: the execution's root trace span (None when tracing is off); fetch-
    #: time decrypt spans attach under it even after it finished
    root_span: Optional[object] = None

    def __post_init__(self):
        # an abandoned execution (cursor dropped before exhausting or
        # closing the result) must not pin its encrypted result at the SP
        # forever: the finalizer releases the server-side result set when
        # this object is garbage-collected
        self._result_handle = [self.statement.proxy.server, self.result_id]
        weakref.finalize(self, _release_result, self._result_handle)

    @property
    def plan(self) -> RewrittenQuery:
        return self.variant.plan

    @property
    def rewritten_sql(self) -> str:
        return self.variant.sql_text

    def cost(self):
        from repro.core.proxy import CostBreakdown

        return CostBreakdown(
            parse_s=self.parse_s,
            rewrite_s=self.rewrite_s,
            server_s=self.server_s,
            decrypt_s=self.decrypt_s,
        )

    def timing_summary(self) -> dict:
        """Per-phase durations (seconds) for the report's timing section.

        The legacy :meth:`cost` breakdown is untouched; this adds the
        finer phases (bind, and the coordinator's route/scatter/merge
        when the backend reported them).
        """
        timing = {
            "parse": self.parse_s,
            "rewrite": self.rewrite_s,
            "bind": self.bind_s,
            "server": self.server_s,
            "decrypt": self.decrypt_s,
        }
        extra = getattr(self.scatter, "timings", None)
        if extra:
            for phase in ("route", "scatter", "merge", "gather"):
                if f"{phase}_s" in extra:
                    timing[phase] = extra[f"{phase}_s"]
        return timing

    # -- streaming fetch ----------------------------------------------------

    def fetch_chunk(self, count: Optional[int]) -> Table:
        """Fetch and decrypt the next ``count`` rows (all when None)."""
        proxy = self.statement.proxy
        if self.closed:
            return self._empty()
        root = self.root_span
        fetch_cm = (
            root.tracer.span("fetch", parent=root)
            if root is not None
            else obs_trace.NOOP_SPAN
        )
        t0 = time.perf_counter()
        with fetch_cm as fetch_span:
            chunk = proxy.server.fetch_rows(self.result_id, count)
            fetch_span.set_attr("rows", chunk.num_rows)
        t1 = time.perf_counter()
        self.server_s += t1 - t0
        proxy.channel.record_result(chunk)
        table = proxy._decryptor.decrypt(
            chunk, self.plan.outputs, params=self.params
        )
        t2 = time.perf_counter()
        self.decrypt_s += t2 - t1
        self.fetched += table.num_rows
        if root is not None:
            # row count from the *encrypted* chunk (decryption is
            # row-preserving): the decrypted table is taint-tracked and
            # must not reach a telemetry sink, even for its shape
            root.tracer.record_timed(
                "decrypt", root, t1, t2, rows=chunk.num_rows
            )
        if (
            count is None
            or table.num_rows < count
            # num_rows is -1 for pipelined results: the total is unknown
            # until a short (or empty) chunk marks the end of the scan
            or (self.num_rows >= 0 and self.fetched >= self.num_rows)
        ):
            self.close()
        return table

    def fetch_rest(self) -> Table:
        return self.fetch_chunk(None)

    def _empty(self) -> Table:
        from repro.engine.schema import ColumnSpec, DataType, Schema

        specs = tuple(
            ColumnSpec(output.name, DataType.STRING)
            for output in self.plan.outputs
        )
        return Table.empty(Schema(specs))

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        _release_result(self._result_handle)
