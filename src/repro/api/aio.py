"""The asyncio client tier: ``aconnect() -> AsyncConnection -> AsyncCursor``.

The synchronous session layer (:mod:`repro.api`) is the reference
semantics; this tier gives the identical surface in ``async``/``await``
form, differentially pinned row-for-row by ``tests/api/test_aio.py``::

    import repro.api.aio as aio

    conn = await aio.aconnect(modulus_bits=256)
    await conn.run_sync(
        lambda c: c.proxy.create_table("pay", COLUMNS, ROWS, sensitive=["sal"])
    )
    cur = await conn.execute("SELECT dept, SUM(sal) AS t FROM pay GROUP BY dept")
    async for dept, total in cur:
        ...
    st = await conn.prepare("SELECT COUNT(*) AS c FROM pay WHERE sal > ?")
    cur = await conn.execute(st, [100.0])
    print(await cur.fetchone())
    await conn.close()

Design: each :class:`AsyncConnection` owns one synchronous
:class:`~repro.api.connection.Connection` plus a dedicated single-thread
executor.  Every operation is awaited by handing the sync call to that
worker thread -- the event loop never blocks on parsing, rewriting,
decryption or a wire round trip, and one connection's operations stay
strictly ordered (the PEP-249 contract: a connection is a session, not a
thread pool).  *Concurrency comes from having several connections*: their
worker threads overlap, and the server side -- the readers-writer
in-process server, the session-keyed networked daemon, the scatter pool
of a cluster coordinator -- executes them in parallel.

For remote deployments (``aconnect(host=..., port=...)``) the wire is the
non-blocking pipelining client (:class:`repro.net.aio.AsyncRemoteServer`):
the proxy pipeline runs on the worker thread and its backend calls are
scheduled onto the event loop through the sync bridge, so socket I/O is
always loop-driven.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

from repro.api import connection as _connection
from repro.api import exceptions as exc
from repro.api.backend import next_session_id
from repro.api.cursor import Cursor
from repro.api.statement import Statement

__all__ = ["aconnect", "AsyncConnection", "AsyncCursor", "AsyncStatement"]


class AsyncStatement:
    """Awaitable handle on a prepared :class:`~repro.api.Statement`."""

    def __init__(self, connection: "AsyncConnection", statement: Statement):
        self._connection = connection
        self.statement = statement

    @property
    def sql(self) -> str:
        return self.statement.sql

    @property
    def kind(self) -> str:
        return self.statement.kind

    @property
    def num_params(self) -> int:
        return self.statement.num_params

    @property
    def plan_variants(self) -> int:
        return self.statement.plan_variants

    @property
    def executions(self) -> int:
        return self.statement.executions

    def signatures(self) -> list[str]:
        return self.statement.signatures()

    async def close(self) -> None:
        await self._connection._run(self.statement.close)


class AsyncCursor:
    """The :class:`~repro.api.Cursor` surface, one ``await`` per operation."""

    def __init__(self, connection: "AsyncConnection", cursor: Cursor):
        self._connection = connection
        self._cursor = cursor

    # -- passthrough state ---------------------------------------------------

    @property
    def arraysize(self) -> int:
        return self._cursor.arraysize

    @arraysize.setter
    def arraysize(self, value: int) -> None:
        self._cursor.arraysize = value

    @property
    def description(self):
        return self._cursor.description

    @property
    def rowcount(self):
        return self._cursor.rowcount

    @property
    def statement(self):
        return self._cursor.statement

    @property
    def cost(self):
        return self._cursor.cost

    @property
    def rewritten_sql(self):
        return self._cursor.rewritten_sql

    @property
    def leakage(self):
        return self._cursor.leakage

    @property
    def notes(self):
        return self._cursor.notes

    @property
    def report(self):
        """Unified :class:`~repro.api.report.QueryReport` for the last execution."""
        return self._cursor.report

    @property
    def plan(self):
        """Plan tree from the last ``EXPLAIN``/:meth:`explain` (or None)."""
        return self._cursor.plan

    async def explain(self, operation=None):
        """Plan tree for ``operation`` (or the last EXPLAIN); never executes."""
        op = operation.statement if isinstance(operation, AsyncStatement) else operation
        return await self._connection._run(self._cursor.explain, op)

    # -- execution -----------------------------------------------------------

    async def execute(self, operation, params: Sequence = ()) -> "AsyncCursor":
        op = operation.statement if isinstance(operation, AsyncStatement) else operation
        await self._connection._run(self._cursor.execute, op, params)
        return self

    async def executemany(self, operation, seq_of_params) -> "AsyncCursor":
        op = operation.statement if isinstance(operation, AsyncStatement) else operation
        await self._connection._run(self._cursor.executemany, op, seq_of_params)
        return self

    # -- fetch ---------------------------------------------------------------

    async def fetchone(self):
        return await self._connection._run(self._cursor.fetchone)

    async def fetchmany(self, size: Optional[int] = None) -> list:
        return await self._connection._run(self._cursor.fetchmany, size)

    async def fetchall(self) -> list:
        return await self._connection._run(self._cursor.fetchall)

    async def fetch_table(self):
        return await self._connection._run(self._cursor.fetch_table)

    def __aiter__(self) -> "AsyncCursor":
        return self

    async def __anext__(self):
        row = await self.fetchone()
        if row is None:
            raise StopAsyncIteration
        return row

    # -- PEP-249 no-ops -------------------------------------------------------

    def setinputsizes(self, sizes) -> None:
        pass

    def setoutputsize(self, size, column=None) -> None:
        pass

    # -- lifecycle -----------------------------------------------------------

    async def close(self) -> None:
        await self._connection._run(self._cursor.close)

    async def __aenter__(self) -> "AsyncCursor":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


class AsyncConnection:
    """One session: a sync Connection driven from its own worker thread."""

    # exceptions as attributes, like the sync Connection (PEP-249 extension)
    Warning = exc.Warning
    Error = exc.Error
    InterfaceError = exc.InterfaceError
    DatabaseError = exc.DatabaseError
    DataError = exc.DataError
    OperationalError = exc.OperationalError
    IntegrityError = exc.IntegrityError
    InternalError = exc.InternalError
    ProgrammingError = exc.ProgrammingError
    NotSupportedError = exc.NotSupportedError

    def __init__(self, connection: _connection.Connection, executor, wire=None):
        self._sync = connection
        self._executor = executor
        self._wire = wire  # AsyncRemoteServer for host/port deployments
        self._loop = asyncio.get_running_loop()
        self.closed = False

    async def _run(self, fn, *args):
        """Run one sync session operation on this connection's worker."""
        return await self._loop.run_in_executor(self._executor, lambda: fn(*args))

    # -- introspection passthrough --------------------------------------------

    @property
    def sync_connection(self) -> _connection.Connection:
        """The underlying synchronous connection (advanced use)."""
        return self._sync

    @property
    def proxy(self):
        return self._sync.proxy

    @property
    def context(self):
        """This session's :class:`~repro.api.backend.ExecutionContext`."""
        return self._sync.context

    def cache_info(self):
        return self._sync.cache_info()

    def cached_statements(self) -> list[str]:
        return self._sync.cached_statements()

    def metrics(self) -> dict:
        """Process metrics snapshot (see :meth:`Connection.metrics`)."""
        return self._sync.metrics()

    def trace_spans(self, trace_id=None) -> list:
        return self._sync.trace_spans(trace_id)

    def span_tree(self, trace_id=None) -> str:
        return self._sync.span_tree(trace_id)

    def slow_queries(self) -> list:
        return self._sync.slow_queries()

    # -- session surface ------------------------------------------------------

    def cursor(self) -> AsyncCursor:
        if self.closed:
            raise exc.InterfaceError("connection is closed")
        return AsyncCursor(self, self._sync.cursor())

    async def prepare(self, sql: str) -> AsyncStatement:
        statement = await self._run(self._sync.prepare, sql)
        return AsyncStatement(self, statement)

    async def execute(self, operation, params: Sequence = ()) -> AsyncCursor:
        cursor = self.cursor()
        await cursor.execute(operation, params)
        return cursor

    async def executemany(self, operation, seq_of_params) -> AsyncCursor:
        cursor = self.cursor()
        await cursor.executemany(operation, seq_of_params)
        return cursor

    async def begin(self) -> None:
        await self._run(self._sync.begin)

    async def commit(self) -> None:
        await self._run(self._sync.commit)

    async def rollback(self) -> None:
        await self._run(self._sync.rollback)

    async def run_sync(self, fn):
        """Run ``fn(sync_connection)`` on the worker thread.

        The escape hatch for proxy-level operations (table upload, views,
        key rotation) that have no async wrapper: they stay off the event
        loop but keep the session's strict operation ordering.
        """
        return await self._loop.run_in_executor(
            self._executor, lambda: fn(self._sync)
        )

    # -- lifecycle ------------------------------------------------------------

    async def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            await self._run(self._sync.close)
        finally:
            if self._wire is not None:
                await self._wire.aclose()
            self._executor.shutdown(wait=False)

    async def __aenter__(self) -> "AsyncConnection":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


async def aconnect(
    proxy=None,
    *,
    server=None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    durable: Optional[str] = None,
    shards=None,
    modulus_bits: int = 1024,
    value_bits: int = 64,
    policy=None,
    rng=None,
    statement_cache_size: int = 64,
    tracing: bool = False,
    slow_query_s: Optional[float] = None,
) -> AsyncConnection:
    """Open an async session; deployment shapes mirror :func:`repro.api.connect`.

    ``host``/``port`` deployments speak the pipelining non-blocking wire
    client (:class:`repro.net.aio.AsyncRemoteServer`); every other shape
    wraps the same backend objects the sync tier uses.  Key generation and
    the proxy pipeline run on the connection's worker thread, never on the
    event loop.
    """
    loop = asyncio.get_running_loop()
    executor = ThreadPoolExecutor(
        max_workers=1, thread_name_prefix=f"sdb-aio-{next_session_id()}"
    )
    wire = None
    try:
        if proxy is None and server is None and (
            host is not None or port is not None
        ):
            if durable is not None or shards is not None:
                raise exc.InterfaceError(
                    "host/port is its own deployment shape; do not combine "
                    "it with durable/shards"
                )
            from repro.net.aio import AsyncRemoteServer

            wire = await AsyncRemoteServer.connect(
                host or "127.0.0.1", int(port)
            )
            server = wire.sync_backend(loop)
            host = port = None

        def build() -> _connection.Connection:
            return _connection.connect(
                proxy,
                server=server,
                host=host,
                port=port,
                durable=durable,
                shards=shards,
                modulus_bits=modulus_bits,
                value_bits=value_bits,
                policy=policy,
                rng=rng,
                statement_cache_size=statement_cache_size,
                tracing=tracing,
                slow_query_s=slow_query_s,
            )

        sync_conn = await loop.run_in_executor(executor, build)
    except Exception:
        if wire is not None:
            await wire.aclose()
        executor.shutdown(wait=False)
        raise
    return AsyncConnection(sync_conn, executor, wire=wire)
