"""Connections: session state, statement cache, transaction control.

A :class:`Connection` wraps one :class:`~repro.core.proxy.SDBProxy` (and
therefore one key store + one server, in-process or remote) and owns an LRU
cache of prepared :class:`~repro.api.statement.Statement` objects keyed by
SQL text.  Even applications that never call :meth:`Connection.prepare` get
plan reuse: re-executing the same SQL string through any cursor hits the
cache and skips parse + rewrite.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict, namedtuple
from typing import Optional, Sequence

from repro.api import exceptions as exc
from repro.api.backend import ExecutionContext
from repro.api.cursor import Cursor
from repro.api.statement import Statement
from repro.obs.metrics import global_metrics
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import NOOP_TRACER, Tracer, render_span_tree
from repro.sql import ast

CacheInfo = namedtuple("CacheInfo", "hits misses maxsize currsize evictions")

_STMT_CACHE = global_metrics().counter(
    "sdb_stmt_cache_total",
    "statement-cache lookups by outcome (hit/miss/eviction)",
)


class Connection:
    """A PEP-249 connection over an SDB proxy."""

    # exceptions as attributes (PEP-249 optional extension)
    Warning = exc.Warning
    Error = exc.Error
    InterfaceError = exc.InterfaceError
    DatabaseError = exc.DatabaseError
    DataError = exc.DataError
    OperationalError = exc.OperationalError
    IntegrityError = exc.IntegrityError
    InternalError = exc.InternalError
    ProgrammingError = exc.ProgrammingError
    NotSupportedError = exc.NotSupportedError

    def __init__(self, proxy, statement_cache_size: int = 64,
                 tracing: bool = False,
                 slow_query_s: Optional[float] = None):
        if statement_cache_size < 1:
            raise exc.InterfaceError("statement cache needs at least one slot")
        self.proxy = proxy
        self.closed = False
        #: per-session tracer; disabled by default so the hot path pays one
        #: ContextVar read.  ``tracing=True`` (or connect(tracing=True))
        #: records span trees for every statement on this connection.
        self.tracer = Tracer() if tracing else NOOP_TRACER
        #: session-level slow-query log (span tree + QueryReport body)
        self.slowlog = (
            SlowQueryLog(slow_query_s) if slow_query_s is not None else None
        )
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self._cache_size = statement_cache_size
        self._cache: OrderedDict[str, Statement] = OrderedDict()
        # weak: a cursor the application dropped must not be kept alive
        # (with its buffered rows) just so close() can reach it
        self._cursors: weakref.WeakSet = weakref.WeakSet()
        self._in_txn = False
        #: this session's execution context: identity, last observed
        #: snapshot epoch, statement-cache handle, leakage accumulator.
        #: Threaded through cursor -> statement -> proxy; the session id
        #: also tags wire requests so a networked SP keys its dispatch
        #: (and per-session statistics) by session.
        self.context = ExecutionContext(statements=self._cache)
        remote_session = getattr(proxy.server, "session_id", None)
        if remote_session is not None:
            # a wire client allocated its own session identity; adopt it
            # so client- and server-side views of the session line up
            self.context.session_id = remote_session

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self.closed:
            return
        if self._in_txn:
            # PEP-249: closing with work pending rolls it back; leaving the
            # transaction open would also wedge the server's single-writer
            # transaction slot for every other session
            try:
                self._txn("rollback")
            except Exception:
                pass  # server already gone
            self._in_txn = False
        for cursor in list(self._cursors):
            cursor.close()
        self._cursors.clear()
        for statement in self._cache.values():
            statement.close()
        self._cache.clear()
        cluster = getattr(self, "_owned_cluster", None)
        if cluster is not None:
            # connect(shards=...) built this coordinator (scatter pool,
            # possibly remote shard sockets); release it with the session
            try:
                cluster.close()
            except Exception:
                pass
        self.closed = True

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self.closed:
            raise exc.InterfaceError("connection is closed")

    # -- cursors / statements ------------------------------------------------

    def cursor(self) -> Cursor:
        self._check_open()
        cursor = Cursor(self)
        self._cursors.add(cursor)
        return cursor

    def prepare(self, sql: str) -> Statement:
        """Parse (and cache) ``sql`` as a prepared statement.

        The first SELECT execution per parameter type signature also caches
        the rewritten query and decryption plan; later executions only bind.
        """
        self._check_open()
        try:
            return self.statement(sql)
        except exc.Error:
            raise
        except Exception as error:
            raise exc.map_exception(error) from error

    def statement(self, sql: str) -> Statement:
        """LRU-cached Statement lookup (raw errors; used by the proxy shim)."""
        cached = self._cache.get(sql)
        if cached is not None and not cached.closed:
            self._cache.move_to_end(sql)
            self.cache_hits += 1
            _STMT_CACHE.labels(outcome="hit").inc()
            return cached
        self.cache_misses += 1
        _STMT_CACHE.labels(outcome="miss").inc()
        statement = Statement(self, sql)
        self._cache[sql] = statement
        while len(self._cache) > self._cache_size:
            # eviction only drops the cache's reference: a statement the
            # application still holds (conn.prepare) keeps working, and its
            # server-side handles are released by its GC finalizer once the
            # last reference is gone
            self._cache.popitem(last=False)
            self.cache_evictions += 1
            _STMT_CACHE.labels(outcome="eviction").inc()
        return statement

    def execute(self, sql, params: Sequence = ()) -> Cursor:
        """Convenience: ``cursor().execute(sql, params)``."""
        return self.cursor().execute(sql, params)

    def executemany(self, sql, seq_of_params) -> Cursor:
        return self.cursor().executemany(sql, seq_of_params)

    def cache_info(self) -> CacheInfo:
        return CacheInfo(
            hits=self.cache_hits,
            misses=self.cache_misses,
            maxsize=self._cache_size,
            currsize=len(self._cache),
            evictions=self.cache_evictions,
        )

    def cached_statements(self) -> list[str]:
        """Cached SQL texts in eviction order (least recent first)."""
        return list(self._cache)

    # -- observability --------------------------------------------------------

    def metrics(self) -> dict:
        """A JSON-able snapshot of the process metrics registry plus this
        session's statement-cache counters (the ``\\stats`` surface)."""
        snapshot = global_metrics().snapshot()
        snapshot["session"] = {
            "type": "session",
            "help": "per-connection statement cache",
            "values": [
                {"labels": {"counter": "cache_hits"},
                 "value": self.cache_hits},
                {"labels": {"counter": "cache_misses"},
                 "value": self.cache_misses},
                {"labels": {"counter": "cache_evictions"},
                 "value": self.cache_evictions},
                {"labels": {"counter": "statements"},
                 "value": self.context.executions},
            ],
        }
        return snapshot

    def trace_spans(self, trace_id: Optional[str] = None) -> list:
        """Finished spans from this connection's tracer (last trace when
        ``trace_id`` is None)."""
        if trace_id is None:
            trace_id = self.tracer.last_trace_id
        return self.tracer.spans(trace_id)

    def span_tree(self, trace_id: Optional[str] = None) -> str:
        """Rendered ASCII span tree of one trace (default: the last)."""
        return render_span_tree(self.trace_spans(trace_id))

    def slow_queries(self) -> list:
        """Entries from the session slow-query log (empty when disabled)."""
        return self.slowlog.entries() if self.slowlog is not None else []

    def _record_slow_select(self, elapsed_s: float, execution) -> None:
        """Session slow-log hook: span tree + report for one offender."""
        from repro.api.report import QueryReport

        report = QueryReport(
            kind="select",
            rewritten_sql=execution.rewritten_sql,
            cost=execution.cost(),
            leakage=execution.plan.leakage + execution.scatter_leakage,
            notes=execution.plan.notes,
            scatter=execution.scatter,
            timing=execution.timing_summary(),
        )
        root = execution.root_span
        body = report.pretty()
        trace_id = None
        if root is not None:
            trace_id = root.trace_id
            tree = render_span_tree(self.tracer.spans(trace_id))
            if tree:
                body = f"{body}\nspans:\n{tree}"
        self.slowlog.record_slow_query(
            elapsed_s, "select", body, trace_id=trace_id
        )

    # -- elastic resharding ---------------------------------------------------

    def rebalance(self, target_count: int, *, endpoints=None, **options):
        """Grow or shrink this session's cluster to ``target_count`` shards.

        Online: other sessions keep executing while encrypted buckets
        stream between shards, re-keyed in flight.  ``endpoints`` supplies
        ``"host:port"`` daemons (or server objects) when growing a remote
        cluster.  The per-rebalance leakage report (reassignment
        cardinalities) is recorded on this session's context and returned
        as part of the :class:`~repro.cluster.rebalance.RebalanceReport`.
        """
        self._check_open()
        try:
            report = self.proxy.rebalance(
                target_count, endpoints=endpoints, **options
            )
        except exc.Error:
            raise
        except Exception as error:
            raise exc.map_exception(error) from error
        self.context.record_statement(report.leakage)
        return report

    # -- transactions --------------------------------------------------------

    def begin(self) -> None:
        self._check_open()
        self._txn("begin")
        self._in_txn = True

    def commit(self) -> None:
        """Commit the open transaction (no-op outside one, per PEP-249).

        A first-updater-wins validation failure surfaces as
        :class:`~repro.api.exceptions.TransactionConflict`; the server
        already discarded the write set, so the connection leaves the
        transaction either way and the application may simply retry
        from :meth:`begin`.
        """
        self._check_open()
        if not self._in_txn:
            return
        try:
            self._txn("commit")
        except exc.TransactionConflict:
            self._in_txn = False  # the server rolled the transaction back
            raise
        self._in_txn = False

    def rollback(self) -> None:
        self._check_open()
        if not self._in_txn:
            return
        self._txn("rollback")
        self._in_txn = False

    def _txn(self, kind: str) -> None:
        # txn control gets its own root span (there is no SELECT root to
        # nest under); daemon-side 2PC spans stitch beneath it
        with self.tracer.span(f"txn-{kind}") as span:
            span.set_attr("kind", kind)
            try:
                self.proxy.execute_statement(
                    ast.TxnControl(kind=kind), context=self.context
                )
            except exc.Error:
                raise
            except Exception as error:
                raise exc.map_exception(error) from error

    # -- compatibility shim (used by SDBProxy.query) -------------------------

    def query(self, sql: str, params: Sequence = ()):
        """Execute a SELECT and materialize the classic QueryResult.

        Raises the pipeline's raw exceptions (ParseError, RewriteError...)
        -- this is the back-compat surface behind ``SDBProxy.query``.
        """
        from repro.core.proxy import QueryResult

        self._check_open()
        statement = self.statement(sql)
        if statement.kind != "select":
            raise ValueError("query() runs SELECT statements only")
        execution = statement.execute_select(tuple(params))
        table = execution.fetch_rest()
        return QueryResult(
            table=table,
            rewritten_sql=execution.rewritten_sql,
            cost=execution.cost(),
            leakage=execution.plan.leakage + execution.scatter_leakage,
            notes=execution.plan.notes,
        )


def _build_backend(spec, shard_id: int):
    """One shard backend from a spec entry (str endpoint / server / None)."""
    if spec is None:
        from repro.core.server import SDBServer

        return SDBServer(shard_id=shard_id)
    if isinstance(spec, str):
        from repro.net.client import RemoteServer

        shard_host, _, shard_port = spec.partition(":")
        return RemoteServer.connect(
            shard_host or "127.0.0.1", int(shard_port or 9753)
        )
    return spec  # an already-built server object


def _build_cluster(shards, replicas: int = 0, weights=None):
    """A :class:`~repro.cluster.Coordinator` from a ``shards=`` spec.

    ``replicas`` > 0 wraps every shard in a
    :class:`~repro.cluster.ShardGroup` of ``1 + replicas`` members (the
    extra members are fresh in-process servers unless the spec entry is
    itself a list/tuple naming every member explicitly).  A list spec
    whose entries are lists/tuples always builds replica groups, one group
    per entry.
    """
    from repro.cluster import Coordinator, ShardGroup

    if isinstance(shards, int):
        specs: list = [None] * shards
    else:
        specs = list(shards)
    grouped = replicas > 0 or any(
        isinstance(spec, (list, tuple)) for spec in specs
    )
    backends = []
    for index, spec in enumerate(specs):
        if not grouped:
            backends.append(_build_backend(spec, index))
            continue
        if isinstance(spec, (list, tuple)):
            members = [_build_backend(m, index) for m in spec]
        else:
            members = [_build_backend(spec, index)]
        while len(members) < 1 + max(0, replicas):
            members.append(_build_backend(None, index))
        backends.append(ShardGroup(members))
    return Coordinator(backends, weights=weights)


def connect(
    proxy=None,
    *,
    server=None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    durable: Optional[str] = None,
    shards=None,
    replicas: int = 0,
    weights=None,
    modulus_bits: int = 1024,
    value_bits: int = 64,
    policy=None,
    rng=None,
    statement_cache_size: int = 64,
    tracing: bool = False,
    slow_query_s: Optional[float] = None,
) -> Connection:
    """Open a session.

    Exactly one deployment shape is chosen, in this order:

    * ``proxy=...``        -- wrap an existing :class:`SDBProxy`;
    * ``server=...``       -- wrap an existing server object (in-process
      :class:`SDBServer`, :class:`DurableServer`, :class:`RemoteServer`
      or a cluster :class:`~repro.cluster.Coordinator`);
    * ``shards=...``       -- a sharded cluster: an int (that many
      in-process shard servers) or a list of ``"host:port"`` strings /
      server objects, wrapped in a :class:`~repro.cluster.Coordinator`
      whose first entry is the primary shard.  ``replicas=N`` gives every
      shard N synchronous replicas (reads fan out across them; a dead
      primary fails over automatically); a list-of-lists spec names each
      replica group's members explicitly.  ``weights=`` skews row
      placement toward higher-capacity shards;
    * ``host=.../port=...``-- connect to a remote SP daemon;
    * ``durable=DIR``      -- in-process SP persisted under ``DIR``;
    * nothing              -- fresh in-memory SP.

    When no proxy is supplied a new one is created, which draws fresh system
    keys (``modulus_bits``/``value_bits``/``rng``).

    ``tracing=True`` records a structured span tree per query
    (:mod:`repro.obs.trace`); ``slow_query_s=`` arms the coordinator-side
    slow-query log at that threshold.  Both default off and cost ~nothing
    when off.
    """
    owned_cluster = None
    if proxy is None:
        from repro.core.proxy import SDBProxy

        if server is None:
            if shards is not None:
                if host is not None or port is not None or durable is not None:
                    raise exc.InterfaceError(
                        "shards= is its own deployment shape; do not combine "
                        "it with host/port/durable"
                    )
                if replicas < 0:
                    raise exc.InterfaceError("replicas= cannot be negative")
                server = owned_cluster = _build_cluster(
                    shards, replicas=replicas, weights=weights
                )
            elif host is not None or port is not None:
                from repro.net.client import RemoteServer

                server = RemoteServer.connect(host or "127.0.0.1", int(port))
            elif durable is not None:
                from repro.storage.durable import DurableServer

                server = DurableServer(durable)
            else:
                from repro.core.server import SDBServer

                server = SDBServer()
        elif shards is not None:
            raise exc.InterfaceError(
                "pass either server= or shards=, not both"
            )
        if shards is None and (replicas or weights):
            raise exc.InterfaceError(
                "replicas=/weights= only apply to the shards= deployment shape"
            )
        proxy = SDBProxy(
            server,
            modulus_bits=modulus_bits,
            value_bits=value_bits,
            policy=policy,
            rng=rng,
        )
    elif (
        server is not None or host is not None or durable is not None
        or shards is not None
    ):
        raise exc.InterfaceError(
            "pass either an existing proxy or deployment parameters, not both"
        )
    connection = Connection(
        proxy,
        statement_cache_size=statement_cache_size,
        tracing=tracing,
        slow_query_s=slow_query_s,
    )
    connection._owned_cluster = owned_cluster
    return connection
