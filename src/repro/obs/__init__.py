"""Leakage-safe observability: tracing, metrics, and a slow-query log.

Telemetry in an encrypted database is itself a disclosure channel: a span
attribute or metric label that carries a decrypted value, key material, or
a shard-key plaintext hands the SP-side operator exactly what the crypto
was bought to hide.  Everything in this package therefore deals in
**operator shapes only** -- durations, row counts, route kinds, shard
indices, cache hit ratios -- and every emission API (``Span.set_attr``,
``Counter.labels``, ``Histogram.observe``, ``SlowQueryLog.
record_slow_query``) is registered as a taint *sink* in
:mod:`repro.analysis.contracts`, so ``sdb-lint`` statically proves no
plaintext can flow into a span, metric label, or log line.

Three subsystems:

* :mod:`repro.obs.trace` -- ``Tracer``/``Span`` with monotonic timings and
  parent/child links; trace context propagates across the wire protocol so
  daemon-side spans stitch into the client's trace.
* :mod:`repro.obs.metrics` -- counters, gauges, and fixed-bucket
  histograms with Prometheus-text and JSON export; a process-global
  registry keeps the hot-path cost to one dict update under a lock.
* :mod:`repro.obs.slowlog` -- a bounded slow-query log capturing the span
  tree and ``QueryReport`` of queries over a configurable threshold.
"""

from repro.obs.metrics import (  # noqa: F401
    MetricsRegistry,
    global_metrics,
    render_prometheus,
)
from repro.obs.slowlog import SlowQueryLog  # noqa: F401
from repro.obs.trace import (  # noqa: F401
    NOOP_TRACER,
    Span,
    Tracer,
    child_span,
    current_span,
    render_span_tree,
)
