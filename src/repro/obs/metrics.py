"""Counters, gauges, and fixed-bucket histograms with text/JSON export.

A :class:`MetricsRegistry` names metrics once and hands out cheap handles;
the hot-path cost of an increment is one dict update under a lock.  Label
*values* are the disclosure channel -- a label carrying a decrypted value
would publish it to any scrape endpoint -- so :meth:`Counter.labels` /
:meth:`Gauge.labels` / :meth:`Histogram.labels` and
:meth:`Histogram.observe` are declared taint sinks in
:mod:`repro.analysis.contracts`: ``sdb-lint`` proves statically that only
operator shapes (route kinds, layer names, cache names) reach them.

The process-global registry (:func:`global_metrics`) is deliberate: a
daemon process exports one registry over the ``metrics`` wire op, a client
process reads the same registry through ``connection.metrics()``, and
components (replica groups, admission control, statement caches) increment
module-level handles without any constructor plumbing.  Counters only ever
grow, so concurrent tests assert deltas, not absolutes.
"""

from __future__ import annotations

import threading
from typing import Optional

#: Default latency buckets (seconds): sub-ms crypto ops up to multi-second
#: fallback gathers.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets for small integer shapes (scatter fan-out, retry counts).
COUNT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class _Metric:
    """Shared naming/locking for the three metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()


class Counter(_Metric):
    """A monotonically increasing count, optionally per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: dict = {}

    def labels(self, **labels) -> "_CounterChild":
        """Select a labeled child.  **Declared taint sink**: label values
        must be operator shapes (route kinds, layer names), never data."""
        return _CounterChild(self, _label_key(labels))

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def snapshot(self) -> dict:
        with self._lock:
            values = [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ]
        return {"type": self.kind, "help": self.help, "values": values}


class _CounterChild:
    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Counter, key: tuple):
        self._metric = metric
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        metric = self._metric
        with metric._lock:
            metric._values[self._key] = (
                metric._values.get(self._key, 0.0) + amount
            )


class Gauge(_Metric):
    """A value that can go up and down (in-flight requests, pool sizes)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: dict = {}

    def labels(self, **labels) -> "_GaugeChild":
        """Select a labeled child.  **Declared taint sink** -- see
        :meth:`Counter.labels`."""
        return _GaugeChild(self, _label_key(labels))

    def set(self, value: float) -> None:
        self.labels().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().inc(-amount)

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def snapshot(self) -> dict:
        with self._lock:
            values = [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ]
        return {"type": self.kind, "help": self.help, "values": values}


class _GaugeChild:
    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Gauge, key: tuple):
        self._metric = metric
        self._key = key

    def set(self, value: float) -> None:
        with self._metric._lock:
            self._metric._values[self._key] = value

    def inc(self, amount: float = 1.0) -> None:
        metric = self._metric
        with metric._lock:
            metric._values[self._key] = (
                metric._values.get(self._key, 0.0) + amount
            )


class Histogram(_Metric):
    """Fixed-bucket distribution (cumulative counts, Prometheus-style)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS):
        super().__init__(name, help)
        self.buckets = tuple(sorted(buckets))
        #: label key -> [bucket counts..., +Inf count, sum]
        self._series: dict = {}

    def labels(self, **labels) -> "_HistogramChild":
        """Select a labeled child.  **Declared taint sink** -- see
        :meth:`Counter.labels`."""
        return _HistogramChild(self, _label_key(labels))

    def observe(self, value: float) -> None:
        """Record one sample.  **Declared taint sink**: samples must be
        durations or shape counts, never data values."""
        self.labels().observe(value)

    def _observe(self, key: tuple, value: float) -> None:
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = [0] * (len(self.buckets) + 1) + [0.0]
                self._series[key] = series
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series[i] += 1
                    break
            else:
                series[len(self.buckets)] += 1
            series[-1] += value

    def count(self, **labels) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return sum(series[:-1]) if series else 0

    def snapshot(self) -> dict:
        with self._lock:
            values = []
            for key, series in sorted(self._series.items()):
                cumulative = []
                running = 0
                for i in range(len(self.buckets)):
                    running += series[i]
                    cumulative.append(running)
                total = running + series[len(self.buckets)]
                values.append(
                    {
                        "labels": dict(key),
                        "buckets": {
                            str(bound): cumulative[i]
                            for i, bound in enumerate(self.buckets)
                        },
                        "count": total,
                        "sum": series[-1],
                    }
                )
        return {"type": self.kind, "help": self.help, "values": values}


class _HistogramChild:
    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Histogram, key: tuple):
        self._metric = metric
        self._key = key

    def observe(self, value: float) -> None:
        self._metric._observe(self._key, value)


class MetricsRegistry:
    """Named metrics; re-registration returns the existing instance."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict = {}

    def _get(self, name: str, factory, cls):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, lambda: Counter(name, help), Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, lambda: Gauge(name, help), Gauge)

    def histogram(self, name: str, help: str = "",
                  buckets=DEFAULT_BUCKETS) -> Histogram:
        return self._get(
            name, lambda: Histogram(name, help, buckets), Histogram
        )

    def snapshot(self) -> dict:
        """JSON-able state of every registered metric."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metric.snapshot() for name, metric in sorted(metrics.items())}


def render_prometheus(snapshot: dict) -> str:
    """Prometheus text exposition of a :meth:`MetricsRegistry.snapshot`."""
    lines: list = []
    for name, metric in snapshot.items():
        if metric.get("help"):
            lines.append(f"# HELP {name} {metric['help']}")
        lines.append(f"# TYPE {name} {metric['type']}")
        for row in metric.get("values", ()):
            labels = row.get("labels") or {}
            if metric["type"] == "histogram":
                for bound, count in row["buckets"].items():
                    le = dict(labels, le=bound)
                    lines.append(f"{name}_bucket{_fmt_labels(le)} {count}")
                inf = dict(labels, le="+Inf")
                lines.append(f"{name}_bucket{_fmt_labels(inf)} {row['count']}")
                lines.append(f"{name}_sum{_fmt_labels(labels)} {row['sum']}")
                lines.append(f"{name}_count{_fmt_labels(labels)} {row['count']}")
            else:
                lines.append(f"{name}{_fmt_labels(labels)} {_fmt_num(row['value'])}")
    return "\n".join(lines) + "\n"


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"


def _fmt_num(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


_GLOBAL: Optional[MetricsRegistry] = None
_GLOBAL_LOCK = threading.Lock()


def global_metrics() -> MetricsRegistry:
    """The process-wide registry (daemon export, connection.metrics())."""
    global _GLOBAL
    if _GLOBAL is None:
        with _GLOBAL_LOCK:
            if _GLOBAL is None:
                _GLOBAL = MetricsRegistry()
    return _GLOBAL
