"""Bounded slow-query log: span tree + report for thresholded queries.

Configurable on the coordinator (``slow_query_s=``), the net daemon
(``--slow-query-ms`` on ``sdb-server``), and the session layer
(``connect(..., slow_query_s=...)``).  An offending query's entry carries
its elapsed time, statement kind, trace id, and a rendered body -- the
span tree plus the ``QueryReport`` text, both of which are shape-only by
construction (the report shows the *rewritten* SQL the SP already sees,
never the original statement).

:meth:`SlowQueryLog.record_slow_query` is a declared taint sink
(:mod:`repro.analysis.contracts`): ``sdb-lint`` proves no decrypted value
or key material is interpolated into an entry.  The log line emitted to
the ``repro.obs.slowlog`` logger is shape-only (kind, elapsed, span
count); the full body stays in the in-process ring buffer.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from typing import Optional

logger = logging.getLogger("repro.obs.slowlog")


class SlowQueryLog:
    """Ring buffer of queries that exceeded the configured threshold."""

    def __init__(self, threshold_s: Optional[float] = None,
                 capacity: int = 128):
        self.threshold_s = threshold_s
        self._entries: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.threshold_s is not None

    def is_slow(self, elapsed_s: float) -> bool:
        return self.threshold_s is not None and elapsed_s >= self.threshold_s

    def record_slow_query(self, elapsed_s: float, kind: str, body: str = "",
                          trace_id: Optional[str] = None) -> None:
        """Record one offending query.  **Declared taint sink**: ``kind``
        and ``body`` must carry operator shapes and SP-visible rewritten
        text only -- never plaintext or key material."""
        entry = {
            "unix_time": time.time(),
            "elapsed_s": elapsed_s,
            "kind": kind,
            "trace_id": trace_id,
            "body": body,
        }
        with self._lock:
            self._entries.append(entry)
        logger.warning(
            "slow query: kind=%s elapsed_ms=%.1f trace=%s body_lines=%d",
            kind, elapsed_s * 1000.0, trace_id, body.count("\n") + 1,
        )

    def maybe_record(self, elapsed_s: float, kind: str, body: str = "",
                     trace_id: Optional[str] = None) -> bool:
        """Record iff over threshold; returns whether it recorded."""
        if not self.is_slow(elapsed_s):
            return False
        self.record_slow_query(elapsed_s, kind, body, trace_id)
        return True

    def entries(self) -> list:
        with self._lock:
            return [dict(entry) for entry in self._entries]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
