"""Structured tracing: spans with monotonic timings and parent/child links.

A :class:`Tracer` records :class:`Span` trees for the full query
lifecycle -- bind -> rewrite -> route choice -> per-shard scatter RPC ->
ring merge -> client decrypt -- plus transaction, replica, and rebalance
events.  Spans carry **operator-shape attributes only** (durations, row
counts, route kinds, shard indices); :meth:`Span.set_attr` is a declared
taint sink (:mod:`repro.analysis.contracts`), so ``sdb-lint`` proves no
plaintext, key material, or shard-key value ever enters a span.

Propagation is by ambient context, not plumbing: the active span lives in
a :mod:`contextvars` variable, so instrumentation points anywhere in the
stack ask :func:`current_span` and attach children without the tracer
being threaded through every constructor.  ``contextvars`` (rather than a
bare thread-local) matters for the asyncio tier: the sync->async bridge in
:mod:`repro.net.aio` schedules coroutines with
``run_coroutine_threadsafe``, which copies the *calling* thread's context
onto the created task -- a span opened on the proxy worker thread is
visible inside the coroutine that ships its frames.  Thread pools do not
inherit context; code that fans work out (coordinator scatter, the net
server's session pool) captures the parent span before submitting and
re-opens a child inside the task.

Across the wire, a request carries ``{"trace": {"t": trace_id, "s":
span_id}}``; the daemon opens its own span under that parent and returns
the finished span records piggybacked on the response, where the client
absorbs them into its tracer -- one stitched trace, client and daemon
spans interleaved.  Frames without the field behave exactly as before
(legacy clients and servers interoperate unchanged).

When tracing is off (the default), :func:`child_span` costs one
``ContextVar.get`` and a ``None`` check -- the bench gate pins the
disabled overhead at ~0 and the enabled overhead at <=5% on the Q6-style
hot path.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from collections import deque
from typing import Optional

#: Request/response keys for wire propagation (see repro.net.protocol).
TRACE_KEY = "trace"
SPANS_KEY = "spans"

#: The ambient active span (set by the Span context manager).
_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "sdb_current_span", default=None
)


def _new_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


class Span:
    """One timed operation in a trace tree.

    Start/end come from ``time.perf_counter()`` -- monotonic, so
    durations are exact; absolute values are only comparable within one
    process (daemon spans from another process still stitch by id, their
    offsets are rendered per-process).
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id",
        "start_s", "end_s", "attrs", "origin", "tracer",
    )

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: Optional[str], tracer: "Tracer",
                 origin: str = "client"):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.tracer = tracer
        self.origin = origin
        self.start_s = time.perf_counter()
        self.end_s: Optional[float] = None
        self.attrs: dict = {}

    # -- the leakage boundary ------------------------------------------------

    def set_attr(self, key: str, value) -> None:
        """Attach one shape attribute.  **Declared taint sink**: callers
        must only pass operator shapes (counts, durations, route kinds,
        identifiers) -- never plaintext, keys, or shard-key values; the
        ``taint-to-telemetry`` lint rule enforces it statically."""
        self.attrs[key] = value

    # -- lifecycle -----------------------------------------------------------

    def finish(self) -> None:
        if self.end_s is None:
            self.end_s = time.perf_counter()
            self.tracer._record(self)

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return end - self.start_s

    def context(self) -> dict:
        """The wire form of this span's identity (trace id + span id)."""
        return {"t": self.trace_id, "s": self.span_id}

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "origin": self.origin,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # shape-only: no attribute values
        return (
            f"<Span {self.name!r} trace={self.trace_id} "
            f"span={self.span_id} attrs={len(self.attrs)}>"
        )


class _SpanHandle:
    """Context manager: opens a span, parks it in the ambient context."""

    __slots__ = ("span", "_token")

    def __init__(self, span: Span):
        self.span = span
        self._token = None

    def __enter__(self) -> Span:
        self._token = _CURRENT.set(self.span)
        return self.span

    def __exit__(self, *exc_info) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        self.span.finish()


class _NoopSpan:
    """Absorbs the tracing surface at zero cost when tracing is off."""

    __slots__ = ()

    trace_id = None
    span_id = None
    parent_id = None
    attrs: dict = {}
    duration_s = 0.0

    def set_attr(self, key, value) -> None:
        pass

    def finish(self) -> None:
        pass

    def context(self):
        return None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def __bool__(self) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Records finished spans into a bounded buffer.

    One tracer per trust domain: the connection owns the client-side
    tracer; each net daemon opens per-request spans into a throwaway
    sink that rides back on the response (the daemon retains nothing).
    """

    def __init__(self, enabled: bool = True, capacity: int = 4096):
        self.enabled = enabled
        self._finished: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: trace id of the most recently started root span
        self.last_trace_id: Optional[str] = None

    # -- span creation -------------------------------------------------------

    def span(self, name: str, parent: Optional[Span] = None,
             parent_ctx: Optional[dict] = None, origin: str = "client"):
        """A context manager for one span.

        ``parent`` links under an in-process span; ``parent_ctx`` links
        under a remote one (the wire form from :meth:`Span.context`).
        With neither, the ambient current span is the parent; with no
        ambient span either, a new trace root is opened.
        """
        if not self.enabled:
            return NOOP_SPAN
        return _SpanHandle(self.start(name, parent, parent_ctx, origin))

    def start(self, name: str, parent: Optional[Span] = None,
              parent_ctx: Optional[dict] = None,
              origin: str = "client") -> Span:
        """Open a span without entering it (caller pairs with finish)."""
        if not self.enabled:
            return NOOP_SPAN
        if parent is None and parent_ctx is None:
            ambient = _CURRENT.get()
            if isinstance(ambient, Span):
                parent = ambient
        if parent is not None and isinstance(parent, Span):
            trace_id = parent.trace_id
            parent_id = parent.span_id
        elif parent_ctx:
            trace_id = parent_ctx.get("t") or _new_id(8)
            parent_id = parent_ctx.get("s")
        else:
            trace_id = _new_id(8)
            parent_id = None
            self.last_trace_id = trace_id
        return Span(name, trace_id, _new_id(4), parent_id, self, origin)

    def record_timed(self, name: str, parent: Optional[Span],
                     start_s: float, end_s: float, origin: str = "client",
                     **attrs) -> None:
        """Retro-record a phase measured with explicit timers.

        Lets already-instrumented hot paths (which time phases with
        ``perf_counter`` deltas for their cost breakdowns) contribute
        spans without being restructured around context managers.
        **Declared taint sink**: ``attrs`` values must be operator shapes
        only -- the ``taint-to-telemetry`` rule enforces it."""
        if not self.enabled or not isinstance(parent, Span):
            return
        span = Span(name, parent.trace_id, _new_id(4), parent.span_id,
                    self, origin)
        span.start_s = start_s
        span.end_s = end_s
        span.attrs = dict(attrs)
        self._record(span)

    # -- the record ----------------------------------------------------------

    def _record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)

    def absorb(self, span_dicts) -> None:
        """Merge remote span records (response piggyback) into this trace."""
        if not span_dicts or not self.enabled:
            return
        with self._lock:
            for raw in span_dicts:
                span = Span.__new__(Span)
                span.name = str(raw.get("name", ""))
                span.trace_id = raw.get("trace")
                span.span_id = raw.get("span")
                span.parent_id = raw.get("parent")
                span.start_s = float(raw.get("start_s") or 0.0)
                span.end_s = raw.get("end_s")
                span.origin = str(raw.get("origin", "daemon"))
                span.attrs = dict(raw.get("attrs") or {})
                span.tracer = self
                self._finished.append(span)

    def spans(self, trace_id: Optional[str] = None) -> list:
        """Finished spans, optionally restricted to one trace."""
        with self._lock:
            out = list(self._finished)
        if trace_id is not None:
            out = [s for s in out if s.trace_id == trace_id]
        return out

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()


#: Shared disabled tracer: the default wherever none was configured.
NOOP_TRACER = Tracer(enabled=False)


def current_span() -> Optional[Span]:
    """The ambient active span, or None when tracing is off/inactive."""
    span = _CURRENT.get()
    return span if isinstance(span, Span) else None


def child_span(name: str, origin: str = "client"):
    """A child of the ambient span, or a free no-op when none is active.

    The universal instrumentation point: deep layers (coordinator,
    replica groups, wire clients) call this without holding a tracer --
    when the session layer opened no root span, the cost is one
    ``ContextVar.get``.
    """
    parent = _CURRENT.get()
    if not isinstance(parent, Span):
        return NOOP_SPAN
    return parent.tracer.span(name, parent=parent, origin=origin)


def render_span_tree(spans, trace_id: Optional[str] = None) -> str:
    """ASCII tree of one trace: names, durations, shape attributes.

    Children indent under their parent; orphans (parent span not in the
    set -- e.g. a daemon span whose parent was pruned) root at depth 0.
    Daemon-origin spans are marked so a stitched trace reads clearly.
    """
    if trace_id is not None:
        spans = [s for s in spans if s.trace_id == trace_id]
    spans = sorted(spans, key=lambda s: s.start_s)
    by_id = {s.span_id: s for s in spans}
    children: dict = {}
    roots = []
    for span in spans:
        if span.parent_id and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    lines: list = []

    def walk(span: Span, depth: int) -> None:
        ms = span.duration_s * 1000.0
        attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
        tag = "" if span.origin == "client" else f" [{span.origin}]"
        lines.append(
            "  " * depth
            + f"- {span.name}{tag} ({ms:.2f} ms)"
            + (f" {attrs}" if attrs else "")
        )
        for child in children.get(span.span_id, ()):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)
