"""Wire protocol: length-prefixed JSON frames plus a typed value codec.

A frame is a 4-byte big-endian length followed by a UTF-8 JSON document.
Requests are ``{"op": <name>, ...args}``; responses are ``{"ok": value}``
or ``{"error": message}``.

JSON cannot natively carry everything that crosses the DO/SP boundary, so
non-JSON values are tagged objects:

=====================  =========================================
value                  encoding
=====================  =========================================
``datetime.date``      ``{"$d": "2024-01-31"}``
``SIESCiphertext``     ``{"$sies": [value, nonce]}``
``decimal.Decimal``    ``{"$dec": "12.34"}``
``Table``              ``{"$table": {"schema": [...], "columns": [...]}}``
=====================  =========================================

Shares are arbitrary-precision integers; Python's ``json`` round-trips
those exactly, so no tagging is needed for them.

Operation families (dispatched by ``op`` in :mod:`repro.net.server`):
core statements (``execute`` / ``execute_dml`` / ``insert_rows`` /
``txn``), storage (``store_table`` / ``drop_table`` / ``catalog``),
prepared statements (``prepare`` / ``execute_prepared`` / ``fetch`` /
``close_*``), cluster slices (``shard_status`` / ``shard_store`` /
``shard_dump`` / ``shard_partial``) and elastic resharding
(``shard_migrate_extract`` / ``_stage`` / ``_unstage`` / ``_promote`` /
``_purge`` / ``_abort`` -- see :mod:`repro.cluster.rebalance`).
"""

from __future__ import annotations

import datetime
import decimal
import json
import socket
import struct

from repro.crypto.sies import SIESCiphertext
from repro.engine.schema import ColumnSpec, DataType, Schema
from repro.engine.table import Table

#: Frames above this size are rejected (a malformed peer, not a workload).
MAX_FRAME_BYTES = 1 << 30

_LENGTH = struct.Struct(">I")


class NetError(ConnectionError):
    """Protocol violation or failed remote call."""


# -- value codec ---------------------------------------------------------------


def encode_value(value):
    """Map a boundary value to a JSON-representable structure."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, datetime.date):
        return {"$d": value.isoformat()}
    if isinstance(value, SIESCiphertext):
        return {"$sies": [value.value, value.nonce]}
    if isinstance(value, decimal.Decimal):
        return {"$dec": str(value)}
    if isinstance(value, Table):
        return {
            "$table": {
                "schema": [
                    [c.name, c.dtype.value, c.scale] for c in value.schema.columns
                ],
                "columns": [
                    [encode_value(cell) for cell in column]
                    for column in value.columns
                ],
            }
        }
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    raise NetError(f"cannot encode {type(value).__name__} on the wire")


def decode_value(payload):
    """Inverse of :func:`encode_value`."""
    if payload is None or isinstance(payload, (bool, int, float, str)):
        return payload
    if isinstance(payload, list):
        return [decode_value(item) for item in payload]
    if isinstance(payload, dict):
        if "$d" in payload:
            return datetime.date.fromisoformat(payload["$d"])
        if "$sies" in payload:
            value, nonce = payload["$sies"]
            return SIESCiphertext(value=int(value), nonce=int(nonce))
        if "$dec" in payload:
            return decimal.Decimal(payload["$dec"])
        if "$table" in payload:
            body = payload["$table"]
            specs = tuple(
                ColumnSpec(name, DataType(dtype), scale)
                for name, dtype, scale in body["schema"]
            )
            columns = [
                [decode_value(cell) for cell in column]
                for column in body["columns"]
            ]
            return Table(Schema(specs), columns)
        raise NetError(f"unknown tagged value: {sorted(payload)}")
    raise NetError(f"cannot decode {type(payload).__name__}")


# -- framing ----------------------------------------------------------------------


def send_message(sock: socket.socket, message: dict) -> int:
    """Serialize and send one frame; returns the bytes written."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise NetError(f"frame too large: {len(body)} bytes")
    sock.sendall(_LENGTH.pack(len(body)) + body)
    return _LENGTH.size + len(body)


def recv_message(sock: socket.socket) -> dict:
    """Receive one frame; raises :class:`NetError` on EOF mid-frame."""
    header = _recv_exact(sock, _LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise NetError(f"frame too large: {length} bytes")
    body = _recv_exact(sock, length)
    return json.loads(body.decode("utf-8"))


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise NetError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
