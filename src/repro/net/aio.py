"""Non-blocking wire client: the SP protocol over asyncio streams.

:class:`AsyncRemoteServer` speaks exactly the :mod:`repro.net.protocol`
frame format the daemon serves, but **pipelined**: every request carries a
request ``id`` and the session tag, a background reader task matches
responses back to their futures, and any number of requests may be in
flight on one socket.  The daemon's session-keyed thread pool
(:mod:`repro.net.server`) executes same-session requests in order and
different sessions concurrently, so a pipelining client composes with the
readers-writer server into true cross-session parallelism.

Two surfaces are offered:

* the ``async`` methods (``await remote.execute(...)``) -- the native tier;
* :meth:`AsyncRemoteServer.sync_backend` -- an adapter presenting the
  synchronous :class:`~repro.api.backend.Backend` protocol by scheduling
  each call onto the client's event loop.  The asyncio session layer runs
  the (CPU-bound) proxy pipeline on a worker thread; the adapter is how
  that thread's backend calls travel the non-blocking wire without ever
  blocking the loop.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import struct
from typing import Optional

from repro.engine.table import Table
from repro.net import protocol
from repro.net.client import _server_exception_types
from repro.obs.trace import SPANS_KEY, TRACE_KEY, current_span
from repro.sql import ast

_LENGTH = struct.Struct(">I")


async def _send_frame(writer: asyncio.StreamWriter, message: dict) -> int:
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > protocol.MAX_FRAME_BYTES:
        raise protocol.NetError(f"frame too large: {len(body)} bytes")
    writer.write(_LENGTH.pack(len(body)) + body)
    await writer.drain()
    return _LENGTH.size + len(body)


async def _recv_frame(reader: asyncio.StreamReader) -> dict:
    try:
        header = await reader.readexactly(_LENGTH.size)
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise protocol.NetError("connection closed mid-frame") from exc
    (length,) = _LENGTH.unpack(header)
    if length > protocol.MAX_FRAME_BYTES:
        raise protocol.NetError(f"frame too large: {length} bytes")
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise protocol.NetError("connection closed mid-frame") from exc
    return json.loads(body.decode("utf-8"))


class AsyncRemoteServer:
    """A pipelining asyncio client for one SP daemon connection."""

    def __init__(self, reader, writer, session_id=None):
        from repro.api.backend import next_session_id

        self._reader = reader
        self._writer = writer
        self._request_ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._send_lock = asyncio.Lock()
        self._closed = False
        #: wire session identity (one per connection by default)
        self.session_id = (
            session_id if session_id is not None else next_session_id()
        )
        self.bytes_sent = 0
        self.bytes_received = 0
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_responses()
        )

    @classmethod
    async def connect(
        cls, host: str, port: int, session_id=None
    ) -> "AsyncRemoteServer":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, session_id=session_id)

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass

    async def __aenter__(self) -> "AsyncRemoteServer":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # -- request plumbing -----------------------------------------------------

    async def _read_responses(self) -> None:
        """Match incoming frames to in-flight futures by request id.

        Any reader failure -- clean EOF, a corrupt frame (bad JSON, bad
        length), an unexpected OSError -- must fail every in-flight and
        future call instead of leaving them awaiting forever.
        """
        try:
            while True:
                response = await _recv_frame(self._reader)
                self.bytes_received += len(repr(response))
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (asyncio.CancelledError, Exception) as exc:
            self._closed = True
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        protocol.NetError(f"connection lost: {exc!r}")
                    )
            self._pending.clear()

    async def _call(self, op: str, session=None, **args):
        if self._closed:
            raise protocol.NetError("client is closed")
        request_id = next(self._request_ids)
        request = {
            "op": op,
            "id": request_id,
            "session": self.session_id if session is None else session,
            **args,
        }
        # trace propagation: run_coroutine_threadsafe copies the calling
        # thread's contextvars onto this task, so the ambient span set on
        # the proxy worker thread is visible here
        span = current_span()
        if span is not None:
            request[TRACE_KEY] = span.context()
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            async with self._send_lock:
                self.bytes_sent += await _send_frame(self._writer, request)
        except Exception:
            self._pending.pop(request_id, None)
            raise
        response = await future
        if span is not None:
            span.tracer.absorb(response.get(SPANS_KEY))
        if "error" in response:
            exc_type = _server_exception_types().get(response.get("error_type"))
            if exc_type is not None:
                raise exc_type(response.get("error_message", response["error"]))
            raise protocol.NetError(response["error"])
        return response["ok"]

    # -- SDBServer surface (async) ----------------------------------------------

    async def ping(self) -> bool:
        return await self._call("ping") == "pong"

    async def store_table(
        self, name: str, table: Table, replace: bool = False
    ) -> None:
        await self._call(
            "store_table",
            name=name,
            table=protocol.encode_value(table),
            replace=replace,
        )

    async def drop_table(self, name: str) -> None:
        await self._call("drop_table", name=name)

    async def execute(self, query, session=None) -> Table:
        sql = query if isinstance(query, str) else query.to_sql()
        return protocol.decode_value(
            await self._call("execute", sql=sql, session=session)
        )

    async def execute_dml(self, statement, session=None) -> int:
        if isinstance(statement, ast.Insert):
            rows = []
            for value_row in statement.rows:
                cells = []
                for expr in value_row:
                    if not isinstance(expr, ast.Literal):
                        raise protocol.NetError(
                            "remote INSERT requires literal values"
                        )
                    cells.append(protocol.encode_value(expr.value))
                rows.append(cells)
            return await self._call(
                "insert_rows",
                name=statement.table,
                columns=list(statement.columns or ()),
                rows=rows,
                session=session,
            )
        sql = statement if isinstance(statement, str) else statement.to_sql()
        return await self._call("execute_dml", sql=sql, session=session)

    async def begin(self, session=None) -> None:
        await self._call("txn", action="begin", session=session)

    async def commit(self, session=None) -> None:
        await self._call("txn", action="commit", session=session)

    async def rollback(self, session=None) -> None:
        await self._call("txn", action="rollback", session=session)

    async def catalog_names(self) -> list[str]:
        return await self._call("catalog")

    async def session_stats(self) -> dict:
        return await self._call("session_stats")

    async def epoch(self) -> int:
        return int(await self._call("epoch"))

    # -- prepared statements / streaming fetch ---------------------------------

    async def prepare_query(self, query, session=None) -> int:
        sql = query if isinstance(query, str) else query.to_sql()
        return int(await self._call("prepare", sql=sql, session=session))

    async def execute_prepared(
        self, stmt_id: int, params=(), session=None
    ) -> tuple[int, int]:
        body = await self._call(
            "execute_prepared",
            stmt=stmt_id,
            params=[protocol.encode_value(p) for p in params],
            session=session,
        )
        return int(body["result"]), int(body["num_rows"])

    async def fetch_rows(self, result_id: int, count=None) -> Table:
        return protocol.decode_value(
            await self._call("fetch", result=result_id, count=count)
        )

    async def close_result(self, result_id: int) -> None:
        await self._call("close_result", result=result_id)

    async def close_prepared(self, stmt_id: int) -> None:
        await self._call("close_prepared", stmt=stmt_id)

    # -- sync Backend bridge ----------------------------------------------------

    def sync_backend(self, loop: Optional[asyncio.AbstractEventLoop] = None):
        """A synchronous :class:`~repro.api.backend.Backend` over this wire.

        Each call schedules the matching coroutine onto ``loop`` (the
        client's running loop) and blocks the *calling* thread -- never
        the loop -- until the response lands.  Must not be called from
        the loop thread itself; the asyncio session layer guarantees that
        by running the proxy pipeline on a worker thread.
        """
        return _SyncBridge(self, loop or asyncio.get_running_loop())


class _SyncBridge:
    """Blocking Backend facade over an :class:`AsyncRemoteServer`."""

    def __init__(self, remote: AsyncRemoteServer, loop):
        self._remote = remote
        self._loop = loop
        self.session_id = remote.session_id

    def _run(self, coro):
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is self._loop:
            coro.close()
            raise RuntimeError(
                "sync bridge called from the event loop thread; "
                "run proxy work on a worker thread"
            )
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def close(self) -> None:
        self._run(self._remote.aclose())

    # the Backend surface, forwarded call for call

    def ping(self) -> bool:
        return self._run(self._remote.ping())

    def store_table(self, name, table, replace: bool = False) -> None:
        self._run(self._remote.store_table(name, table, replace=replace))

    def drop_table(self, name) -> None:
        self._run(self._remote.drop_table(name))

    def execute(self, query, session=None):
        return self._run(self._remote.execute(query, session=session))

    def execute_dml(self, statement, session=None) -> int:
        return self._run(self._remote.execute_dml(statement, session=session))

    def begin(self, session=None) -> None:
        self._run(self._remote.begin(session=session))

    def commit(self, session=None) -> None:
        self._run(self._remote.commit(session=session))

    def rollback(self, session=None) -> None:
        self._run(self._remote.rollback(session=session))

    def catalog_names(self) -> list[str]:
        return self._run(self._remote.catalog_names())

    def session_stats(self) -> dict:
        return self._run(self._remote.session_stats())

    def epoch(self) -> int:
        return self._run(self._remote.epoch())

    def prepare_query(self, query, session=None) -> int:
        return self._run(self._remote.prepare_query(query, session=session))

    def execute_prepared(self, stmt_id, params=(), session=None):
        return self._run(
            self._remote.execute_prepared(stmt_id, params, session=session)
        )

    def fetch_rows(self, result_id, count=None):
        return self._run(self._remote.fetch_rows(result_id, count))

    def close_result(self, result_id) -> None:
        self._run(self._remote.close_result(result_id))

    def close_prepared(self, stmt_id) -> None:
        self._run(self._remote.close_prepared(stmt_id))
