"""The DO-side connection to a remote SP.

:class:`RemoteServer` speaks :mod:`repro.net.protocol` and exposes the
same surface as the in-process :class:`repro.core.server.SDBServer`
(``store_table`` / ``drop_table`` / ``execute`` / ``execute_dml``), so

    proxy = SDBProxy(RemoteServer.connect(host, port))

gives the paper's two-machine deployment with no proxy changes.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time

from repro.api.exceptions import ShardUnavailableError
from repro.engine.table import Table
from repro.net import protocol
from repro.obs.trace import SPANS_KEY, TRACE_KEY, current_span
from repro.sql import ast


def _server_exception_types() -> dict:
    """Exception classes the SP may raise, keyed by type name.

    The daemon tags every error response with the original type name
    (``error_type``); re-raising the same class here makes remote error
    paths indistinguishable from in-process ones -- the differential tests
    pin this.
    """
    import builtins

    from repro.core.server import ServerBusyError, StaleSnapshotError
    from repro.core.txn import (
        TransactionConflictError,
        TransactionError,
        TransactionStateError,
    )
    from repro.engine.catalog import CatalogError
    from repro.engine.dml import DMLError
    from repro.engine.executor import ExecutionError
    from repro.engine.expressions import EvaluationError
    from repro.engine.udf import UDFError
    from repro.sql.lexer import LexError
    from repro.sql.params import BindError
    from repro.sql.parser import ParseError

    named = (
        ParseError, LexError, BindError, ExecutionError, DMLError,
        EvaluationError, CatalogError, UDFError, StaleSnapshotError,
        ServerBusyError, TransactionConflictError, TransactionStateError,
        TransactionError,
    )
    registry = {cls.__name__: cls for cls in named}
    for name in ("ValueError", "KeyError", "TypeError", "RuntimeError"):
        registry[name] = getattr(builtins, name)
    return registry


class RemoteServer:
    """A proxy-side handle on a networked SP.

    Every request carries a request ``id`` and this client's ``session``
    tag, so the daemon dispatches it on its session-keyed pool: two
    RemoteServers against the same daemon execute concurrently (subject
    to the server's readers-writer lock), where the legacy protocol
    serialized them behind one global statement lock.  This client keeps
    one request in flight at a time; the asyncio tier's wire client
    pipelines.
    """

    def __init__(self, sock: socket.socket, session_id=None):
        from repro.api.backend import next_session_id

        self._sock = sock
        self._lock = threading.Lock()
        self._request_ids = itertools.count(1)
        #: wire session identity (defaults to a fresh ExecutionContext id)
        self.session_id = session_id if session_id is not None else next_session_id()
        self.bytes_sent = 0
        self.bytes_received = 0
        self._dead = False
        try:
            self.endpoint = "%s:%d" % sock.getpeername()[:2]
        except OSError:
            self.endpoint = "<unknown>"

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        timeout: float = 10.0,
        retries: int = 0,
        backoff: float = 0.2,
    ) -> "RemoteServer":
        """Connect, optionally retrying with exponential backoff.

        ``retries`` extra attempts are made after the first failure,
        sleeping ``backoff * 2**attempt`` seconds between them; the final
        failure surfaces as :class:`ShardUnavailableError`.
        """
        last: Exception | None = None
        for attempt in range(max(0, retries) + 1):
            try:
                sock = socket.create_connection((host, port), timeout=timeout)
                return cls(sock)
            except OSError as exc:
                last = exc
                if attempt < retries:
                    time.sleep(backoff * (2**attempt))
        raise ShardUnavailableError(
            f"cannot connect to {host}:{port}: {last}"
        ) from last

    def close(self) -> None:
        self._dead = True
        self._sock.close()

    def __enter__(self) -> "RemoteServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request plumbing -----------------------------------------------------

    def _call(self, op: str, session=None, **args):
        request = {"op": op, **args}
        # trace propagation: the ambient span's identity rides the request
        # so the daemon's spans stitch under it; absent when tracing is off
        # (and legacy daemons ignore the extra key)
        span = current_span()
        if span is not None:
            request[TRACE_KEY] = span.context()
        with self._lock:
            if self._dead:
                raise ShardUnavailableError(
                    f"connection to {self.endpoint} is closed"
                )
            request_id = next(self._request_ids)
            request["id"] = request_id
            request["session"] = self.session_id if session is None else session
            try:
                self.bytes_sent += protocol.send_message(self._sock, request)
                response = protocol.recv_message(self._sock)
            except (OSError, protocol.NetError) as exc:
                # Transport loss mid-call: the frame stream is unusable
                # (a reply may be half-read), so poison the handle -- every
                # later call fast-fails with the same typed error instead
                # of a raw OSError.
                self._dead = True
                try:
                    self._sock.close()
                except OSError:
                    pass
                raise ShardUnavailableError(
                    f"lost connection to {self.endpoint} during {op!r}: {exc}"
                ) from exc
        if response.get("id") not in (None, request_id):
            raise protocol.NetError(
                f"out-of-order response: expected {request_id}, "
                f"got {response.get('id')}"
            )
        self.bytes_received += len(repr(response))
        if span is not None:
            # daemon-side spans piggyback on the response (error or ok:
            # the daemon's work happened either way)
            span.tracer.absorb(response.get(SPANS_KEY))
        if "error" in response:
            exc_type = _server_exception_types().get(response.get("error_type"))
            if exc_type is not None:
                raise exc_type(response.get("error_message", response["error"]))
            raise protocol.NetError(response["error"])
        return response["ok"]

    # -- SDBServer surface -----------------------------------------------------

    def ping(self) -> bool:
        return self._call("ping") == "pong"

    def health(self) -> dict:
        """One-round-trip liveness + catch-up probe (failure detector food)."""
        return self._call("health")

    def store_table(self, name: str, table: Table, replace: bool = False) -> None:
        self._call(
            "store_table",
            name=name,
            table=protocol.encode_value(table),
            replace=replace,
        )

    def drop_table(self, name: str) -> None:
        self._call("drop_table", name=name)

    def execute(self, query, session=None) -> Table:
        sql = query if isinstance(query, str) else query.to_sql()
        return protocol.decode_value(
            self._call("execute", sql=sql, session=session)
        )

    def execute_dml(self, statement, session=None) -> int:
        """Submit DML.

        INSERTs go as structured rows (their literals include SIES
        ciphertexts, which have no SQL text form); UPDATE/DELETE go as the
        rewritten SQL text.
        """
        if isinstance(statement, ast.Insert):
            rows = []
            for value_row in statement.rows:
                cells = []
                for expr in value_row:
                    if not isinstance(expr, ast.Literal):
                        raise protocol.NetError(
                            "remote INSERT requires literal values"
                        )
                    cells.append(protocol.encode_value(expr.value))
                rows.append(cells)
            return self._call(
                "insert_rows",
                name=statement.table,
                columns=list(statement.columns or ()),
                rows=rows,
                session=session,
            )
        sql = statement if isinstance(statement, str) else statement.to_sql()
        return self._call("execute_dml", sql=sql, session=session)

    def begin(self, session=None) -> None:
        self._call("txn", action="begin", session=session)

    def commit(self, session=None) -> None:
        self._call("txn", action="commit", session=session)

    def rollback(self, session=None) -> None:
        self._call("txn", action="rollback", session=session)

    def txn_prepare(self, token: str, session=None) -> dict:
        """Stage the session's write set under ``token`` (2PC phase one)."""
        return self._call("txn_prepare", token=token, session=session)

    def txn_finalize(self, token: str) -> int:
        return self._call("txn_finalize", token=token)

    def txn_discard(self, token=None) -> int:
        return self._call("txn_discard", token=token)

    def catalog_names(self) -> list[str]:
        return self._call("catalog")

    def session_stats(self) -> dict:
        """Per-session statement counters, as recorded by the daemon."""
        return self._call("session_stats")

    def metrics(self) -> dict:
        """The daemon's metrics-registry snapshot (JSON form)."""
        return self._call("metrics")

    def metrics_text(self) -> str:
        """The daemon's metrics in Prometheus text exposition format."""
        return str(self._call("metrics_text"))

    def slow_queries(self) -> list:
        """The daemon's slow-query log entries (empty when disabled)."""
        return list(self._call("slow_queries"))

    def epoch(self) -> int:
        """The daemon's current snapshot epoch (one round trip).

        Deliberately a method, not a property: the session layer snapshots
        ``server.epoch`` opportunistically after executions when it is a
        plain attribute, and a property here would turn that into a wire
        round trip per statement.
        """
        return int(self._call("epoch"))

    # -- SHARD_* operations (used by the cluster coordinator) -------------------

    def shard_status(self) -> dict:
        return self._call("shard_status")

    def shard_store(
        self, name: str, table: Table, placement=None, replace: bool = False
    ) -> int:
        return int(
            self._call(
                "shard_store",
                name=name,
                table=protocol.encode_value(table),
                placement=placement,
                replace=replace,
            )
        )

    def shard_dump(
        self, name: str, offset=None, count=None
    ) -> Table:
        return protocol.decode_value(
            self._call("shard_dump", name=name, offset=offset, count=count)
        )

    def append_table(self, name: str, table: Table) -> int:
        return int(
            self._call(
                "append_table",
                name=name,
                table=protocol.encode_value(table),
            )
        )

    def execute_partial(self, query, session=None) -> Table:
        sql = query if isinstance(query, str) else query.to_sql()
        return protocol.decode_value(
            self._call("shard_partial", sql=sql, session=session)
        )

    # -- SHARD_MIGRATE_* operations (elastic resharding) -------------------------

    def shard_migrate_extract(
        self,
        name: str,
        num_chunks: int,
        chunk: int,
        old_modulus: int,
        new_modulus: int,
        old_weights=None,
        new_weights=None,
    ) -> Table:
        return protocol.decode_value(
            self._call(
                "shard_migrate_extract",
                name=name,
                num_chunks=num_chunks,
                chunk=chunk,
                old_modulus=old_modulus,
                new_modulus=new_modulus,
                old_weights=list(old_weights) if old_weights else None,
                new_weights=list(new_weights) if new_weights else None,
            )
        )

    def shard_migrate_stage(
        self, name: str, table: Table, placement=None
    ) -> int:
        return int(
            self._call(
                "shard_migrate_stage",
                name=name,
                table=protocol.encode_value(table),
                placement=placement,
            )
        )

    def shard_migrate_unstage(self, name: str, num_chunks: int, chunk: int) -> int:
        return int(
            self._call(
                "shard_migrate_unstage",
                name=name, num_chunks=num_chunks, chunk=chunk,
            )
        )

    def shard_migrate_promote(self, name: str, placement=None) -> int:
        return int(
            self._call(
                "shard_migrate_promote", name=name, placement=placement
            )
        )

    def shard_migrate_purge(
        self, name: str, modulus: int, keep_index: int, placement=None, weights=None
    ) -> int:
        return int(
            self._call(
                "shard_migrate_purge",
                name=name, modulus=modulus, keep_index=keep_index,
                placement=placement,
                weights=list(weights) if weights else None,
            )
        )

    def shard_migrate_abort(self, name: str) -> bool:
        return bool(self._call("shard_migrate_abort", name=name))

    # -- prepared statements / streaming fetch ---------------------------------
    #
    # PREPARE ships the (rewritten) SQL text once; EXECUTE_PREPARED then
    # carries only the parameter bindings, and FETCH streams the encrypted
    # result back chunk by chunk -- the wire never re-transmits the query.

    def prepare_query(self, query, session=None) -> int:
        sql = query if isinstance(query, str) else query.to_sql()
        return int(self._call("prepare", sql=sql, session=session))

    def execute_prepared(
        self, stmt_id: int, params=(), session=None
    ) -> tuple[int, int]:
        body = self._call(
            "execute_prepared",
            stmt=stmt_id,
            params=[protocol.encode_value(p) for p in params],
            session=session,
        )
        return int(body["result"]), int(body["num_rows"])

    def fetch_rows(self, result_id: int, count=None) -> Table:
        return protocol.decode_value(
            self._call("fetch", result=result_id, count=count)
        )

    def close_result(self, result_id: int) -> None:
        self._call("close_result", result=result_id)

    def close_prepared(self, stmt_id: int) -> None:
        self._call("close_prepared", stmt=stmt_id)
