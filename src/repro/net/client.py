"""The DO-side connection to a remote SP.

:class:`RemoteServer` speaks :mod:`repro.net.protocol` and exposes the
same surface as the in-process :class:`repro.core.server.SDBServer`
(``store_table`` / ``drop_table`` / ``execute`` / ``execute_dml``), so

    proxy = SDBProxy(RemoteServer.connect(host, port))

gives the paper's two-machine deployment with no proxy changes.
"""

from __future__ import annotations

import socket
import threading

from repro.engine.table import Table
from repro.net import protocol
from repro.sql import ast


def _server_exception_types() -> dict:
    """Exception classes the SP may raise, keyed by type name.

    The daemon tags every error response with the original type name
    (``error_type``); re-raising the same class here makes remote error
    paths indistinguishable from in-process ones -- the differential tests
    pin this.
    """
    import builtins

    from repro.engine.catalog import CatalogError
    from repro.engine.dml import DMLError
    from repro.engine.executor import ExecutionError
    from repro.engine.expressions import EvaluationError
    from repro.engine.udf import UDFError
    from repro.sql.lexer import LexError
    from repro.sql.params import BindError
    from repro.sql.parser import ParseError

    named = (
        ParseError, LexError, BindError, ExecutionError, DMLError,
        EvaluationError, CatalogError, UDFError,
    )
    registry = {cls.__name__: cls for cls in named}
    for name in ("ValueError", "KeyError", "TypeError", "RuntimeError"):
        registry[name] = getattr(builtins, name)
    return registry


class RemoteServer:
    """A proxy-side handle on a networked SP."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._lock = threading.Lock()
        self.bytes_sent = 0
        self.bytes_received = 0

    @classmethod
    def connect(cls, host: str, port: int, timeout: float = 10.0) -> "RemoteServer":
        sock = socket.create_connection((host, port), timeout=timeout)
        return cls(sock)

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "RemoteServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request plumbing -----------------------------------------------------

    def _call(self, op: str, **args):
        request = {"op": op, **args}
        with self._lock:
            self.bytes_sent += protocol.send_message(self._sock, request)
            response = protocol.recv_message(self._sock)
        self.bytes_received += len(repr(response))
        if "error" in response:
            exc_type = _server_exception_types().get(response.get("error_type"))
            if exc_type is not None:
                raise exc_type(response.get("error_message", response["error"]))
            raise protocol.NetError(response["error"])
        return response["ok"]

    # -- SDBServer surface -----------------------------------------------------

    def ping(self) -> bool:
        return self._call("ping") == "pong"

    def store_table(self, name: str, table: Table, replace: bool = False) -> None:
        self._call(
            "store_table",
            name=name,
            table=protocol.encode_value(table),
            replace=replace,
        )

    def drop_table(self, name: str) -> None:
        self._call("drop_table", name=name)

    def execute(self, query) -> Table:
        sql = query if isinstance(query, str) else query.to_sql()
        return protocol.decode_value(self._call("execute", sql=sql))

    def execute_dml(self, statement) -> int:
        """Submit DML.

        INSERTs go as structured rows (their literals include SIES
        ciphertexts, which have no SQL text form); UPDATE/DELETE go as the
        rewritten SQL text.
        """
        if isinstance(statement, ast.Insert):
            rows = []
            for value_row in statement.rows:
                cells = []
                for expr in value_row:
                    if not isinstance(expr, ast.Literal):
                        raise protocol.NetError(
                            "remote INSERT requires literal values"
                        )
                    cells.append(protocol.encode_value(expr.value))
                rows.append(cells)
            return self._call(
                "insert_rows",
                name=statement.table,
                columns=list(statement.columns or ()),
                rows=rows,
            )
        sql = statement if isinstance(statement, str) else statement.to_sql()
        return self._call("execute_dml", sql=sql)

    def begin(self) -> None:
        self._call("txn", action="begin")

    def commit(self) -> None:
        self._call("txn", action="commit")

    def rollback(self) -> None:
        self._call("txn", action="rollback")

    def catalog_names(self) -> list[str]:
        return self._call("catalog")

    # -- SHARD_* operations (used by the cluster coordinator) -------------------

    def shard_status(self) -> dict:
        return self._call("shard_status")

    def shard_store(
        self, name: str, table: Table, placement=None, replace: bool = False
    ) -> int:
        return int(
            self._call(
                "shard_store",
                name=name,
                table=protocol.encode_value(table),
                placement=placement,
                replace=replace,
            )
        )

    def shard_dump(self, name: str) -> Table:
        return protocol.decode_value(self._call("shard_dump", name=name))

    def execute_partial(self, query) -> Table:
        sql = query if isinstance(query, str) else query.to_sql()
        return protocol.decode_value(self._call("shard_partial", sql=sql))

    # -- prepared statements / streaming fetch ---------------------------------
    #
    # PREPARE ships the (rewritten) SQL text once; EXECUTE_PREPARED then
    # carries only the parameter bindings, and FETCH streams the encrypted
    # result back chunk by chunk -- the wire never re-transmits the query.

    def prepare_query(self, query) -> int:
        sql = query if isinstance(query, str) else query.to_sql()
        return int(self._call("prepare", sql=sql))

    def execute_prepared(self, stmt_id: int, params=()) -> tuple[int, int]:
        body = self._call(
            "execute_prepared",
            stmt=stmt_id,
            params=[protocol.encode_value(p) for p in params],
        )
        return int(body["result"]), int(body["num_rows"])

    def fetch_rows(self, result_id: int, count=None) -> Table:
        return protocol.decode_value(
            self._call("fetch", result=result_id, count=count)
        )

    def close_result(self, result_id: int) -> None:
        self._call("close_result", result=result_id)

    def close_prepared(self, stmt_id: int) -> None:
        self._call("close_prepared", stmt=stmt_id)
