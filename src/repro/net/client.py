"""The DO-side connection to a remote SP.

:class:`RemoteServer` speaks :mod:`repro.net.protocol` and exposes the
same surface as the in-process :class:`repro.core.server.SDBServer`
(``store_table`` / ``drop_table`` / ``execute`` / ``execute_dml``), so

    proxy = SDBProxy(RemoteServer.connect(host, port))

gives the paper's two-machine deployment with no proxy changes.
"""

from __future__ import annotations

import socket
import threading

from repro.engine.table import Table
from repro.net import protocol
from repro.sql import ast


class RemoteServer:
    """A proxy-side handle on a networked SP."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._lock = threading.Lock()
        self.bytes_sent = 0
        self.bytes_received = 0

    @classmethod
    def connect(cls, host: str, port: int, timeout: float = 10.0) -> "RemoteServer":
        sock = socket.create_connection((host, port), timeout=timeout)
        return cls(sock)

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "RemoteServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request plumbing -----------------------------------------------------

    def _call(self, op: str, **args):
        request = {"op": op, **args}
        with self._lock:
            self.bytes_sent += protocol.send_message(self._sock, request)
            response = protocol.recv_message(self._sock)
        self.bytes_received += len(repr(response))
        if "error" in response:
            raise protocol.NetError(response["error"])
        return response["ok"]

    # -- SDBServer surface -----------------------------------------------------

    def ping(self) -> bool:
        return self._call("ping") == "pong"

    def store_table(self, name: str, table: Table, replace: bool = False) -> None:
        self._call(
            "store_table",
            name=name,
            table=protocol.encode_value(table),
            replace=replace,
        )

    def drop_table(self, name: str) -> None:
        self._call("drop_table", name=name)

    def execute(self, query) -> Table:
        sql = query if isinstance(query, str) else query.to_sql()
        return protocol.decode_value(self._call("execute", sql=sql))

    def execute_dml(self, statement) -> int:
        """Submit DML.

        INSERTs go as structured rows (their literals include SIES
        ciphertexts, which have no SQL text form); UPDATE/DELETE go as the
        rewritten SQL text.
        """
        if isinstance(statement, ast.Insert):
            rows = []
            for value_row in statement.rows:
                cells = []
                for expr in value_row:
                    if not isinstance(expr, ast.Literal):
                        raise protocol.NetError(
                            "remote INSERT requires literal values"
                        )
                    cells.append(protocol.encode_value(expr.value))
                rows.append(cells)
            return self._call(
                "insert_rows",
                name=statement.table,
                columns=list(statement.columns or ()),
                rows=rows,
            )
        sql = statement if isinstance(statement, str) else statement.to_sql()
        return self._call("execute_dml", sql=sql)

    def begin(self) -> None:
        self._call("txn", action="begin")

    def commit(self) -> None:
        self._call("txn", action="commit")

    def rollback(self) -> None:
        self._call("txn", action="rollback")

    def catalog_names(self) -> list[str]:
        return self._call("catalog")
