"""The SP as a network daemon (the demo's machine ``MSP``).

Wraps an :class:`repro.core.server.SDBServer` behind a TCP listener
speaking the :mod:`repro.net.protocol` frame format.  The daemon is
exactly as trusted as the in-process server -- i.e. not at all: it only
ever sees encrypted uploads and rewritten queries.

Concurrency model: every connected client gets a reader thread, but the
*work* runs on one shared thread pool keyed by **session**.  A request
carrying a request ``id`` (and optionally a ``session`` tag -- the wire
form of the client's :class:`~repro.api.backend.ExecutionContext` id) is
dispatched to the pool; requests of the same session execute in submission
order, while different sessions run concurrently -- the underlying
:class:`SDBServer` readers-writer lock then lets read-only statements
overlap and serializes mutations.  Responses echo the request ``id`` and
may return out of order, which is what lets a pipelining client (the
asyncio tier) keep several requests in flight on one socket.  Requests
without an ``id`` are handled inline on the reader thread, exactly like
the pre-session protocol (legacy clients keep working unchanged).
"""

from __future__ import annotations

import socketserver
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor, wait
from typing import Optional

from repro.core.server import SDBServer
from repro.net import protocol
from repro.obs.metrics import DEFAULT_BUCKETS, global_metrics, render_prometheus
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import NOOP_SPAN, SPANS_KEY, TRACE_KEY, Tracer
from repro.sql import ast

#: Wall time per dispatched wire operation, by op name (shape-only).
_OP_SECONDS = global_metrics().histogram(
    "sdb_server_op_seconds",
    "daemon-side wall time per wire operation",
    buckets=DEFAULT_BUCKETS,
)

#: Requests refused because a session's dispatch queue was full.
_ADMIT_REJECTS = global_metrics().counter(
    "sdb_admission_rejections_total",
    "statements refused by admission control, by layer",
)


class _RequestHandler(socketserver.BaseRequestHandler):
    """One connected client; work is dispatched to the session pool."""

    def setup(self) -> None:
        # handles created over this connection, released on disconnect
        self._stmt_ids: set[int] = set()
        self._result_ids: set[int] = set()
        # pool tasks still in flight for this connection
        self._pending: set[Future] = set()
        self._pending_lock = threading.Lock()
        # one frame on the wire at a time, even with out-of-order responses
        self._send_lock = threading.Lock()

    def finish(self) -> None:
        # drain in-flight work before releasing its handles: a task may
        # still be fetching from a result set this loop would close
        with self._pending_lock:
            pending = list(self._pending)
        if pending:
            wait(pending)
        for result_id in self._result_ids:
            self._sdb.close_result(result_id)
        for stmt_id in self._stmt_ids:
            self._sdb.close_prepared(stmt_id)

    def handle(self) -> None:
        while True:
            try:
                request = protocol.recv_message(self.request)
            except protocol.NetError:
                return  # peer closed the connection
            request_id = request.get("id")
            if request_id is None:
                # legacy one-at-a-time path: dispatch inline, respond now
                response = self._dispatch(request)
                if not self._send(response):
                    return
                continue
            self._submit(request, request_id)

    def _submit(self, request: dict, request_id) -> None:
        session_key = request.get("session")
        if session_key is None:
            session_key = f"conn-{id(self)}"
        else:
            session_key = f"session-{session_key}"

        # admission control: a session's dispatch queue is bounded; the
        # overflow request is answered immediately with a typed busy
        # error instead of growing the backlog without limit
        if not self.server.admit_session_request(session_key):
            self._send({
                "id": request_id,
                "error": "ServerBusyError: server busy",
                "error_type": "ServerBusyError",
                "error_message": (
                    "server busy: session queue full "
                    f"(limit {self.server.max_session_queue})"
                ),
            })
            return

        def task():
            response = self._dispatch(request)
            response["id"] = request_id
            self._send(response)

        future = self.server.submit_session_task(session_key, task)
        with self._pending_lock:
            self._pending.add(future)
        future.add_done_callback(self._forget)
        future.add_done_callback(
            lambda _f, key=session_key: self.server.release_session_request(key)
        )

    def _forget(self, future: Future) -> None:
        with self._pending_lock:
            self._pending.discard(future)

    def _send(self, response: dict) -> bool:
        try:
            with self._send_lock:
                protocol.send_message(self.request, response)
            return True
        except OSError:
            return False

    def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        ctx = request.get(TRACE_KEY)
        # trace stitching: a request carrying a trace context gets its own
        # throwaway tracer -- the daemon span opens under the *client's*
        # span id, and every span finished during this request rides back
        # on the response (the daemon retains nothing).  Legacy requests
        # (no context) skip all of it.
        tracer = Tracer(enabled=True, capacity=256) if isinstance(ctx, dict) else None
        span_cm = (
            tracer.span(f"sp:{op}", parent_ctx=ctx, origin="daemon")
            if tracer is not None
            else NOOP_SPAN
        )
        t0 = time.perf_counter()
        with span_cm:
            response = self._dispatch_inner(request, op)
        elapsed = time.perf_counter() - t0
        _OP_SECONDS.labels(op=str(op)).observe(elapsed)
        self.server.slowlog.maybe_record(
            elapsed,
            f"op-{op}",
            trace_id=ctx.get("t") if isinstance(ctx, dict) else None,
        )
        if tracer is not None:
            response[SPANS_KEY] = [span.to_dict() for span in tracer.spans()]
        return response

    def _dispatch_inner(self, request: dict, op) -> dict:
        try:
            handler = getattr(self, f"_op_{op}", None)
            if handler is None:
                raise protocol.NetError(f"unknown operation {op!r}")
            return {"ok": handler(request)}
        except Exception as exc:  # surface the failure to the caller
            # the type name lets the client re-raise the same exception
            # class, so error paths look identical to in-process execution
            return {
                "error": f"{type(exc).__name__}: {exc}",
                "error_type": type(exc).__name__,
                "error_message": str(exc),
            }

    # -- operations ---------------------------------------------------------

    @property
    def _sdb(self) -> SDBServer:
        return self.server.sdb_server

    @staticmethod
    def _session_of(request: dict):
        return request.get("session")

    def _op_ping(self, request: dict):
        return "pong"

    def _op_health(self, request: dict):
        """Liveness + catch-up probe (replica failure detection)."""
        return self._sdb.health()

    def _op_store_table(self, request: dict):
        table = protocol.decode_value(request["table"])
        self._sdb.store_table(
            request["name"], table, replace=bool(request.get("replace"))
        )
        return table.num_rows

    def _op_drop_table(self, request: dict):
        self._sdb.drop_table(request["name"])
        return True

    def _op_execute(self, request: dict):
        result = self._sdb.execute(
            request["sql"], session=self._session_of(request)
        )
        return protocol.encode_value(result)

    def _op_execute_dml(self, request: dict):
        return self._sdb.execute_dml(
            request["sql"], session=self._session_of(request)
        )

    def _op_insert_rows(self, request: dict):
        """Structured INSERT: rows whose cells cannot render as SQL text
        (SIES ciphertexts in the hidden row-id column)."""
        rows = [
            tuple(protocol.decode_value(cell) for cell in row)
            for row in request["rows"]
        ]
        statement = ast.Insert(
            table=request["name"],
            columns=tuple(request["columns"]) or None,
            rows=tuple(
                tuple(ast.Literal(cell) for cell in row) for row in rows
            ),
        )
        return self._sdb.execute_dml(
            statement, session=self._session_of(request)
        )

    def _op_txn(self, request: dict):
        op = request["action"]
        session = self._session_of(request)
        if op == "begin":
            self._sdb.begin(session=session)
        elif op == "commit":
            self._sdb.commit(session=session)
        elif op == "rollback":
            self._sdb.rollback(session=session)
        else:
            raise protocol.NetError(f"unknown transaction op {op!r}")
        return True

    def _op_txn_prepare(self, request: dict):
        """Stage this session's write set under a token (2PC phase one)."""
        return self._sdb.txn_prepare(
            request["token"], session=self._session_of(request)
        )

    def _op_txn_finalize(self, request: dict):
        return self._sdb.txn_finalize(request["token"])

    def _op_txn_discard(self, request: dict):
        return self._sdb.txn_discard(request.get("token"))

    def _op_catalog(self, request: dict):
        return self._sdb.catalog.names()

    def _op_session_stats(self, request: dict):
        """Per-session statement counters (ExecutionContext observability)."""
        return {
            str(key): stats
            for key, stats in self._sdb.session_stats_snapshot().items()
        }

    def _op_epoch(self, request: dict):
        return self._sdb.epoch

    # -- observability ----------------------------------------------------------

    def _op_metrics(self, request: dict):
        """The process metrics registry as a JSON-able snapshot."""
        return global_metrics().snapshot()

    def _op_metrics_text(self, request: dict):
        """The same registry in Prometheus text exposition format."""
        return render_prometheus(global_metrics().snapshot())

    def _op_slow_queries(self, request: dict):
        """Entries from the daemon's slow-query log ([] when disabled)."""
        return self.server.slowlog.entries()

    # -- SHARD_* operations (cluster coordinator traffic) ----------------------
    #
    # A shard daemon is an ordinary SP daemon that additionally accepts
    # placement-tagged stores, partial queries from a scatter, status
    # probes and schema-exact dumps (the gather side of the fallback
    # materialization).  It still never sees keys, plaintext of sensitive
    # values, or the routing PRF -- only which slice it was handed.

    def _op_shard_status(self, request: dict):
        return self._sdb.shard_status()

    def _op_shard_store(self, request: dict):
        table = protocol.decode_value(request["table"])
        return self._sdb.shard_store(
            request["name"],
            table,
            placement=request.get("placement"),
            replace=bool(request.get("replace")),
        )

    def _op_shard_dump(self, request: dict):
        offset = request.get("offset")
        count = request.get("count")
        return protocol.encode_value(
            self._sdb.shard_dump(
                request["name"],
                offset=None if offset is None else int(offset),
                count=None if count is None else int(count),
            )
        )

    def _op_append_table(self, request: dict):
        table = protocol.decode_value(request["table"])
        return self._sdb.append_table(request["name"], table)

    def _op_shard_partial(self, request: dict):
        return protocol.encode_value(
            self._sdb.execute_partial(
                request["sql"], session=self._session_of(request)
            )
        )

    # -- SHARD_MIGRATE_* operations (elastic resharding) -----------------------
    #
    # The coordinator streams bucket chunks shard -> shard during an
    # online topology change: extract movers (selected by stored routing
    # residues), stage re-keyed rows invisibly, then promote/purge at the
    # commit record.  The daemon still never sees keys or plaintext --
    # staged rows arrive exactly as encrypted as stored ones.

    def _op_shard_migrate_extract(self, request: dict):
        return protocol.encode_value(
            self._sdb.shard_migrate_extract(
                request["name"],
                int(request["num_chunks"]),
                int(request["chunk"]),
                int(request["old_modulus"]),
                int(request["new_modulus"]),
                old_weights=request.get("old_weights"),
                new_weights=request.get("new_weights"),
            )
        )

    def _op_shard_migrate_stage(self, request: dict):
        table = protocol.decode_value(request["table"])
        return self._sdb.shard_migrate_stage(
            request["name"], table, placement=request.get("placement")
        )

    def _op_shard_migrate_unstage(self, request: dict):
        return self._sdb.shard_migrate_unstage(
            request["name"], int(request["num_chunks"]), int(request["chunk"])
        )

    def _op_shard_migrate_promote(self, request: dict):
        return self._sdb.shard_migrate_promote(
            request["name"], placement=request.get("placement")
        )

    def _op_shard_migrate_purge(self, request: dict):
        return self._sdb.shard_migrate_purge(
            request["name"],
            int(request["modulus"]),
            int(request["keep_index"]),
            placement=request.get("placement"),
            weights=request.get("weights"),
        )

    def _op_shard_migrate_abort(self, request: dict):
        return self._sdb.shard_migrate_abort(request["name"])

    # -- prepared statements / streaming fetch --------------------------------

    def _op_prepare(self, request: dict):
        stmt_id = self._sdb.prepare_query(
            request["sql"], session=self._session_of(request)
        )
        self._stmt_ids.add(stmt_id)
        return stmt_id

    def _op_execute_prepared(self, request: dict):
        params = [protocol.decode_value(p) for p in request.get("params", [])]
        result_id, num_rows = self._sdb.execute_prepared(
            int(request["stmt"]), params, session=self._session_of(request)
        )
        self._result_ids.add(result_id)
        return {"result": result_id, "num_rows": num_rows}

    def _op_fetch(self, request: dict):
        count = request.get("count")
        chunk = self._sdb.fetch_rows(
            int(request["result"]), None if count is None else int(count)
        )
        return protocol.encode_value(chunk)

    def _op_close_result(self, request: dict):
        result_id = int(request["result"])
        self._sdb.close_result(result_id)
        self._result_ids.discard(result_id)
        return True

    def _op_close_prepared(self, request: dict):
        stmt_id = int(request["stmt"])
        self._sdb.close_prepared(stmt_id)
        self._stmt_ids.discard(stmt_id)
        return True


class SDBNetServer(socketserver.ThreadingTCPServer):
    """TCP daemon owning one :class:`SDBServer` instance.

    Request execution runs on :attr:`executor`, a shared pool keyed by
    session: one session's requests execute in order, different sessions
    in parallel (bounded by ``max_workers``).
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address=("127.0.0.1", 0),
        sdb_server: Optional[SDBServer] = None,
        max_workers: int = 8,
        max_session_queue: int = 64,
        slow_query_s: Optional[float] = None,
    ):
        super().__init__(address, _RequestHandler)
        self.sdb_server = sdb_server or SDBServer()
        #: daemon-side slow-operation log (inert until a threshold is set)
        self.slowlog = SlowQueryLog(slow_query_s)
        self.executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="sdb-session"
        )
        #: admission control: max requests a session may have queued or
        #: running at once (<= 0 disables the bound)
        self.max_session_queue = max_session_queue
        self._session_pending: dict[str, int] = {}
        self._tails: dict[str, Future] = {}
        self._tails_lock = threading.Lock()

    def admit_session_request(self, session_key: str) -> bool:
        """Reserve one slot on the session's bounded dispatch queue."""
        if self.max_session_queue <= 0:
            return True
        with self._tails_lock:
            count = self._session_pending.get(session_key, 0)
            if count >= self.max_session_queue:
                _ADMIT_REJECTS.labels(layer="server").inc()
                return False
            self._session_pending[session_key] = count + 1
            return True

    def release_session_request(self, session_key: str) -> None:
        with self._tails_lock:
            count = self._session_pending.get(session_key, 1) - 1
            if count <= 0:
                self._session_pending.pop(session_key, None)
            else:
                self._session_pending[session_key] = count

    def submit_session_task(self, session_key: str, fn) -> Future:
        """Queue ``fn`` behind the session's previous request.

        Per-session FIFO ordering comes from chaining on the session's
        current tail future: the new task enters the pool only once its
        predecessor has *completed* (via ``add_done_callback``), so a
        deeply pipelining session queues behind itself without ever
        parking a worker thread -- the pool's workers stay available to
        every other session.
        """
        future: Future = Future()

        def run() -> None:
            if not future.set_running_or_notify_cancel():
                return
            try:
                future.set_result(fn())
            except BaseException as exc:
                future.set_exception(exc)

        def enqueue(_previous=None) -> None:
            try:
                self.executor.submit(run)
            except RuntimeError as exc:  # pool shut down mid-flight
                if not future.done():
                    future.set_exception(exc)

        with self._tails_lock:
            previous = self._tails.get(session_key)
            self._tails[session_key] = future
            if len(self._tails) > 128:
                for key in [k for k, f in self._tails.items() if f.done()]:
                    if self._tails[key].done():
                        del self._tails[key]
        if previous is None:
            enqueue()
        else:
            # fires immediately when the predecessor is already done
            previous.add_done_callback(enqueue)
        return future

    def server_close(self) -> None:
        super().server_close()
        self.executor.shutdown(wait=False)

    @property
    def port(self) -> int:
        return self.server_address[1]


def start_server(
    host: str = "127.0.0.1",
    port: int = 0,
    sdb_server: Optional[SDBServer] = None,
    max_workers: int = 8,
    max_session_queue: int = 64,
    slow_query_s: Optional[float] = None,
) -> tuple[SDBNetServer, threading.Thread]:
    """Start a daemon thread serving on ``(host, port)``.

    ``port=0`` picks a free port (read it back from ``server.port``).
    The caller owns shutdown: ``server.shutdown(); server.server_close()``.
    """
    server = SDBNetServer(
        (host, port), sdb_server=sdb_server, max_workers=max_workers,
        max_session_queue=max_session_queue, slow_query_s=slow_query_s,
    )
    thread = threading.Thread(
        target=server.serve_forever, name="sdb-sp", daemon=True
    )
    thread.start()
    return server, thread
