"""The SP as a network daemon (the demo's machine ``MSP``).

Wraps an :class:`repro.core.server.SDBServer` behind a threaded TCP
listener speaking the :mod:`repro.net.protocol` frame format.  The daemon
is exactly as trusted as the in-process server -- i.e. not at all: it only
ever sees encrypted uploads and rewritten queries.
"""

from __future__ import annotations

import socketserver
import threading
from typing import Optional

from repro.core.server import SDBServer
from repro.net import protocol
from repro.sql import ast
from repro.sql.parser import parse_statement


class _RequestHandler(socketserver.BaseRequestHandler):
    """One connected proxy; requests are handled sequentially per socket."""

    def setup(self) -> None:
        # handles created over this connection, released on disconnect
        self._stmt_ids: set[int] = set()
        self._result_ids: set[int] = set()

    def finish(self) -> None:
        for result_id in self._result_ids:
            self._sdb.close_result(result_id)
        for stmt_id in self._stmt_ids:
            self._sdb.close_prepared(stmt_id)

    def handle(self) -> None:
        while True:
            try:
                request = protocol.recv_message(self.request)
            except protocol.NetError:
                return  # peer closed the connection
            response = self._dispatch(request)
            try:
                protocol.send_message(self.request, response)
            except OSError:
                return

    def _dispatch(self, request: dict) -> dict:
        try:
            op = request["op"]
            handler = getattr(self, f"_op_{op}", None)
            if handler is None:
                raise protocol.NetError(f"unknown operation {op!r}")
            return {"ok": handler(request)}
        except Exception as exc:  # surface the failure to the caller
            # the type name lets the client re-raise the same exception
            # class, so error paths look identical to in-process execution
            return {
                "error": f"{type(exc).__name__}: {exc}",
                "error_type": type(exc).__name__,
                "error_message": str(exc),
            }

    # -- operations ---------------------------------------------------------

    @property
    def _sdb(self) -> SDBServer:
        return self.server.sdb_server

    def _op_ping(self, request: dict):
        return "pong"

    def _op_store_table(self, request: dict):
        table = protocol.decode_value(request["table"])
        self._sdb.store_table(
            request["name"], table, replace=bool(request.get("replace"))
        )
        return table.num_rows

    def _op_drop_table(self, request: dict):
        self._sdb.drop_table(request["name"])
        return True

    def _op_execute(self, request: dict):
        result = self._sdb.execute(request["sql"])
        return protocol.encode_value(result)

    def _op_execute_dml(self, request: dict):
        return self._sdb.execute_dml(request["sql"])

    def _op_insert_rows(self, request: dict):
        """Structured INSERT: rows whose cells cannot render as SQL text
        (SIES ciphertexts in the hidden row-id column)."""
        rows = [
            tuple(protocol.decode_value(cell) for cell in row)
            for row in request["rows"]
        ]
        statement = ast.Insert(
            table=request["name"],
            columns=tuple(request["columns"]) or None,
            rows=tuple(
                tuple(ast.Literal(cell) for cell in row) for row in rows
            ),
        )
        return self._sdb.execute_dml(statement)

    def _op_txn(self, request: dict):
        op = request["action"]
        if op == "begin":
            self._sdb.begin()
        elif op == "commit":
            self._sdb.commit()
        elif op == "rollback":
            self._sdb.rollback()
        else:
            raise protocol.NetError(f"unknown transaction op {op!r}")
        return True

    def _op_catalog(self, request: dict):
        return self._sdb.catalog.names()

    # -- SHARD_* operations (cluster coordinator traffic) ----------------------
    #
    # A shard daemon is an ordinary SP daemon that additionally accepts
    # placement-tagged stores, partial queries from a scatter, status
    # probes and schema-exact dumps (the gather side of the fallback
    # materialization).  It still never sees keys, plaintext of sensitive
    # values, or the routing PRF -- only which slice it was handed.

    def _op_shard_status(self, request: dict):
        return self._sdb.shard_status()

    def _op_shard_store(self, request: dict):
        table = protocol.decode_value(request["table"])
        return self._sdb.shard_store(
            request["name"],
            table,
            placement=request.get("placement"),
            replace=bool(request.get("replace")),
        )

    def _op_shard_dump(self, request: dict):
        return protocol.encode_value(self._sdb.shard_dump(request["name"]))

    def _op_shard_partial(self, request: dict):
        return protocol.encode_value(self._sdb.execute_partial(request["sql"]))

    # -- prepared statements / streaming fetch --------------------------------

    def _op_prepare(self, request: dict):
        stmt_id = self._sdb.prepare_query(request["sql"])
        self._stmt_ids.add(stmt_id)
        return stmt_id

    def _op_execute_prepared(self, request: dict):
        params = [protocol.decode_value(p) for p in request.get("params", [])]
        result_id, num_rows = self._sdb.execute_prepared(
            int(request["stmt"]), params
        )
        self._result_ids.add(result_id)
        return {"result": result_id, "num_rows": num_rows}

    def _op_fetch(self, request: dict):
        count = request.get("count")
        chunk = self._sdb.fetch_rows(
            int(request["result"]), None if count is None else int(count)
        )
        return protocol.encode_value(chunk)

    def _op_close_result(self, request: dict):
        result_id = int(request["result"])
        self._sdb.close_result(result_id)
        self._result_ids.discard(result_id)
        return True

    def _op_close_prepared(self, request: dict):
        stmt_id = int(request["stmt"])
        self._sdb.close_prepared(stmt_id)
        self._stmt_ids.discard(stmt_id)
        return True


class SDBNetServer(socketserver.ThreadingTCPServer):
    """TCP daemon owning one :class:`SDBServer` instance."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address=("127.0.0.1", 0), sdb_server: Optional[SDBServer] = None):
        super().__init__(address, _RequestHandler)
        self.sdb_server = sdb_server or SDBServer()

    @property
    def port(self) -> int:
        return self.server_address[1]


def start_server(
    host: str = "127.0.0.1",
    port: int = 0,
    sdb_server: Optional[SDBServer] = None,
) -> tuple[SDBNetServer, threading.Thread]:
    """Start a daemon thread serving on ``(host, port)``.

    ``port=0`` picks a free port (read it back from ``server.port``).
    The caller owns shutdown: ``server.shutdown(); server.server_close()``.
    """
    server = SDBNetServer((host, port), sdb_server=sdb_server)
    thread = threading.Thread(
        target=server.serve_forever, name="sdb-sp", daemon=True
    )
    thread.start()
    return server, thread
