"""Networked deployment: the DO and SP as separate processes.

The demo runs on two machines -- ``MDO`` with the SDB proxy and ``MSP``
with the engine.  This package provides that deployment shape:

* :mod:`repro.net.protocol` -- length-prefixed JSON framing with a codec
  for every value that crosses the trust boundary (shares, dates,
  SIES ciphertexts, whole relations);
* :mod:`repro.net.server` -- a threaded TCP daemon wrapping an
  :class:`repro.core.server.SDBServer`;
* :mod:`repro.net.client` -- :class:`RemoteServer`, a drop-in replacement
  for the in-process server object, so ``SDBProxy(RemoteServer(...))``
  works unchanged.

Only ciphertext and rewritten queries travel on this wire; the security
analysis of :mod:`repro.core.security` applies verbatim to a wire-tapper.
"""

from repro.net.client import RemoteServer
from repro.net.protocol import NetError, decode_value, encode_value
from repro.net.server import SDBNetServer, start_server

__all__ = [
    "RemoteServer",
    "SDBNetServer",
    "start_server",
    "NetError",
    "encode_value",
    "decode_value",
]
