"""CryptDB capability model: which queries run *natively* on onions.

The SDB paper's intro claim: "CryptDB can only support 4 out of 22 TPC-H
queries without significantly involving the DO or extensive precomputation
in query processing."  This module reproduces the analysis behind such a
number: it walks a query and checks every operation touching an encrypted
column against what the onion layers can actually evaluate server-side:

* DET -- equality, IN, GROUP BY, equi-join, COUNT(DISTINCT);
* OPE -- order predicates, ORDER BY, MIN/MAX, BETWEEN (base columns only);
* HOM (Paillier) -- SUM and *linear* expressions (additions, plain-constant
  multiples) of encrypted columns;
* SEARCH -- single-word ``%word%`` LIKE patterns.

The crucial rule is the one SDB is built to remove: onion outputs are not
interoperable.  A HOM sum cannot feed an OPE comparison; an OPE minimum
cannot feed a DET equality; a product of two encrypted columns does not
exist server-side at all.  Every such composition is recorded as a
violation with the reason.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.sql import ast

#: expression classes over encrypted data
PLAIN = "plain"            # no encrypted inputs
ENC_COLUMN = "enc_column"  # a bare encrypted column (all onions available)
HOM_LINEAR = "hom_linear"  # linear combination: HOM-computable, add-only space
BLOCKED = "blocked"        # not computable server-side


@dataclass
class QuerySupport:
    """Verdict for one query."""

    supported: bool
    violations: list = field(default_factory=list)

    def blocked(self, reason: str) -> None:
        self.supported = False
        if reason not in self.violations:
            self.violations.append(reason)


class CryptDBCapabilityModel:
    """Static analysis of native (no-client, no-precomputation) support.

    ``sensitive`` decides which columns are encrypted: a callable
    ``(table, column) -> bool``; ``None`` means *every* column is encrypted
    (CryptDB's standard deployment).
    """

    def __init__(self, tables: dict, sensitive=None):
        self._tables = {name: [c for c, _ in columns] for name, columns in tables.items()}
        self._sensitive = sensitive

    # -- public ------------------------------------------------------------

    def analyze(self, query: ast.Select) -> QuerySupport:
        support = QuerySupport(supported=True)
        self._analyze_select(query, support, outer={})
        return support

    # -- helpers --------------------------------------------------------------

    def _bindings(self, texpr, support, outer) -> dict:
        bindings = dict(outer)
        for item in self._flatten(texpr):
            if isinstance(item, ast.TableRef):
                bindings[item.binding] = ("table", item.name)
            elif isinstance(item, ast.SubqueryRef):
                inner = self._analyze_select(item.query, support, outer)
                bindings[item.alias] = ("derived", inner)
            if isinstance(item, ast.Join) and item.condition is not None:
                pass  # conditions handled by caller after bindings known
        return bindings

    def _flatten(self, texpr):
        if texpr is None:
            return []
        if isinstance(texpr, ast.Join):
            return self._flatten(texpr.left) + self._flatten(texpr.right)
        return [texpr]

    def _join_conditions(self, texpr):
        if isinstance(texpr, ast.Join):
            yield from self._join_conditions(texpr.left)
            yield from self._join_conditions(texpr.right)
            if texpr.condition is not None:
                yield texpr.condition
        return

    def _analyze_select(self, query: ast.Select, support, outer) -> dict:
        """Analyze one SELECT; returns {output_name: expr class}."""
        bindings = self._bindings(query.from_clause, support, outer)
        for condition in self._join_conditions(query.from_clause or ast.TableRef("_")):
            self._predicate(condition, bindings, support)
        if query.where is not None:
            self._predicate(query.where, bindings, support)
        for g in query.group_by:
            cls = self._classify(g, bindings, support)
            if cls not in (PLAIN, ENC_COLUMN):
                support.blocked(
                    f"GROUP BY on a computed encrypted expression: {g.to_sql()}"
                )
        if query.having is not None:
            self._predicate(query.having, bindings, support)
        outputs = {}
        for i, item in enumerate(query.items):
            if isinstance(item.expr, ast.Star):
                continue
            cls = self._output_class(item.expr, bindings, support)
            name = item.alias or (
                item.expr.name if isinstance(item.expr, ast.Column) else f"_col{i}"
            )
            outputs[name] = cls
        for order in query.order_by:
            expr = order.expr
            if isinstance(expr, ast.Column) and expr.table is None and expr.name in outputs:
                cls = outputs[expr.name]
                if cls == HOM_LINEAR:
                    support.blocked(
                        f"ORDER BY a HOM aggregate ({expr.name}): HOM output "
                        "is not order-comparable (onion interoperability gap)"
                    )
                elif cls == BLOCKED:
                    support.blocked(f"ORDER BY a blocked expression {expr.name}")
                continue
            cls = self._classify(expr, bindings, support)
            if cls == HOM_LINEAR or cls == BLOCKED:
                support.blocked(f"ORDER BY not OPE-evaluable: {expr.to_sql()}")
        return outputs

    # -- classification -------------------------------------------------------------

    def _is_sensitive(self, binding_info, column: str) -> bool:
        kind, payload = binding_info
        if kind == "derived":
            return payload.get(column, PLAIN) != PLAIN
        table = payload
        if self._sensitive is None:
            return True
        return self._sensitive(table, column)

    def _column_class(self, node: ast.Column, bindings) -> str:
        candidates = []
        for binding, info in bindings.items():
            if node.table is not None and binding != node.table:
                continue
            kind, payload = info
            columns = (
                payload.keys() if kind == "derived" else self._tables.get(payload, [])
            )
            if node.name in columns:
                candidates.append(info)
        if not candidates:
            return PLAIN  # unknown (outer) -- treated as a constant here
        info = candidates[0]
        if info[0] == "derived":
            return info[1].get(node.name, PLAIN)
        return ENC_COLUMN if self._is_sensitive(info, node.name) else PLAIN

    def _classify(self, expr, bindings, support) -> str:
        """Expression class; records violations for inherently blocked ops."""
        if isinstance(expr, (ast.Literal, ast.Interval)):
            return PLAIN
        if isinstance(expr, ast.Column):
            return self._column_class(expr, bindings)
        if isinstance(expr, ast.UnaryOp):
            return self._classify(expr.operand, bindings, support)
        if isinstance(expr, ast.BinaryOp) and expr.op in ("+", "-"):
            left = self._classify(expr.left, bindings, support)
            right = self._classify(expr.right, bindings, support)
            if BLOCKED in (left, right):
                return BLOCKED
            if left == PLAIN and right == PLAIN:
                return PLAIN
            return HOM_LINEAR
        if isinstance(expr, ast.BinaryOp) and expr.op == "*":
            left = self._classify(expr.left, bindings, support)
            right = self._classify(expr.right, bindings, support)
            if left == PLAIN and right == PLAIN:
                return PLAIN
            if PLAIN in (left, right) and BLOCKED not in (left, right):
                return HOM_LINEAR  # plain-constant multiple
            return BLOCKED  # product of two encrypted values: no onion
        if isinstance(expr, ast.BinaryOp) and expr.op == "/":
            left = self._classify(expr.left, bindings, support)
            right = self._classify(expr.right, bindings, support)
            if left == PLAIN and right == PLAIN:
                return PLAIN
            return BLOCKED  # no homomorphic division
        if isinstance(expr, ast.Aggregate):
            return self._aggregate_class(expr, bindings, support)
        if isinstance(expr, ast.CaseWhen):
            for cond, _ in expr.branches:
                self._predicate(cond, bindings, support)
            classes = [
                self._classify(branch, bindings, support)
                for _, branch in expr.branches
            ]
            if expr.default is not None:
                classes.append(self._classify(expr.default, bindings, support))
            return PLAIN if all(c == PLAIN for c in classes) else BLOCKED
        if isinstance(expr, ast.Extract):
            inner = self._classify(expr.operand, bindings, support)
            return PLAIN if inner == PLAIN else BLOCKED
        if isinstance(expr, ast.Substring):
            inner = self._classify(expr.operand, bindings, support)
            return PLAIN if inner == PLAIN else BLOCKED
        if isinstance(expr, ast.ScalarSubquery):
            outputs = self._analyze_select(expr.query, support, bindings)
            classes = list(outputs.values()) or [PLAIN]
            return classes[0]
        if isinstance(expr, (ast.BinaryOp, ast.Between, ast.InList,
                             ast.InSubquery, ast.Exists, ast.Like, ast.IsNull)):
            self._predicate(expr, bindings, support)
            return PLAIN
        return BLOCKED

    def _aggregate_class(self, expr: ast.Aggregate, bindings, support) -> str:
        if expr.arg is None:
            return PLAIN  # COUNT(*)
        arg = self._classify(expr.arg, bindings, support)
        if expr.func == "count":
            return PLAIN  # DET distinct / presence counting
        if arg == PLAIN:
            return PLAIN
        if arg == BLOCKED:
            return BLOCKED
        if expr.func == "sum":
            return HOM_LINEAR if not expr.distinct else BLOCKED
        if expr.func in ("min", "max"):
            # OPE gives the position; the matching ciphertext is returned
            return ENC_COLUMN if arg == ENC_COLUMN else BLOCKED
        if expr.func == "avg":
            return BLOCKED  # needs division
        return BLOCKED

    # -- predicates -------------------------------------------------------------------

    def _predicate(self, expr, bindings, support) -> None:
        if isinstance(expr, ast.BinaryOp) and expr.op in ("and", "or"):
            self._predicate(expr.left, bindings, support)
            self._predicate(expr.right, bindings, support)
            return
        if isinstance(expr, ast.UnaryOp) and expr.op == "not":
            self._predicate(expr.operand, bindings, support)
            return
        if isinstance(expr, ast.BinaryOp) and expr.op in ast.COMPARISON_OPS:
            left = self._classify(expr.left, bindings, support)
            right = self._classify(expr.right, bindings, support)
            if left == PLAIN and right == PLAIN:
                return
            if BLOCKED in (left, right):
                support.blocked(f"comparison not evaluable: {expr.to_sql()}")
                return
            if HOM_LINEAR in (left, right):
                support.blocked(
                    f"comparison consumes a HOM output: {expr.to_sql()} "
                    "(HOM and OPE/DET spaces are not interoperable)"
                )
                return
            # enc_column vs enc_column/plain-constant: DET or OPE handles it
            return
        if isinstance(expr, ast.Between):
            subject = self._classify(expr.subject, bindings, support)
            low = self._classify(expr.low, bindings, support)
            high = self._classify(expr.high, bindings, support)
            if subject == BLOCKED or subject == HOM_LINEAR:
                support.blocked(f"BETWEEN not OPE-evaluable: {expr.to_sql()}")
            if HOM_LINEAR in (low, high) or BLOCKED in (low, high):
                support.blocked(f"BETWEEN bound not evaluable: {expr.to_sql()}")
            return
        if isinstance(expr, ast.InList):
            subject = self._classify(expr.subject, bindings, support)
            if subject not in (PLAIN, ENC_COLUMN):
                support.blocked(f"IN on computed encrypted value: {expr.to_sql()}")
            return
        if isinstance(expr, ast.InSubquery):
            subject = self._classify(expr.subject, bindings, support)
            outputs = self._analyze_select(expr.query, support, bindings)
            inner = list(outputs.values()) or [PLAIN]
            if subject not in (PLAIN, ENC_COLUMN) or inner[0] not in (PLAIN, ENC_COLUMN):
                support.blocked(f"IN-subquery not DET-joinable: {expr.to_sql()}")
            return
        if isinstance(expr, ast.Exists):
            self._analyze_select(expr.query, support, bindings)
            return
        if isinstance(expr, ast.Like):
            subject = self._classify(expr.subject, bindings, support)
            if subject == PLAIN:
                return
            if not re.fullmatch(r"%\w+%", expr.pattern):
                support.blocked(
                    f"LIKE pattern beyond SEARCH word matching: '{expr.pattern}'"
                )
            return
        if isinstance(expr, ast.IsNull):
            return
        # value used as predicate
        self._classify(expr, bindings, support)

    def _output_class(self, expr, bindings, support) -> str:
        cls = self._classify(expr, bindings, support)
        if cls == BLOCKED:
            support.blocked(f"output not computable server-side: {expr.to_sql()}")
        return cls
