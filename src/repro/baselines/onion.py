"""CryptDB-style onion encryption columns.

CryptDB stores each sensitive column under several *onions*, each a stack
of encryption layers peeled on demand:

* **Equality onion**: RND (probabilistic AES-like) over DET
  (deterministic) -- peel RND to enable equality/joins/group-by.
* **Order onion**: RND over OPE -- peel to enable range predicates.
* **Add onion**: Paillier (HOM) -- supports SUM and addition only.

This module implements the layers (PRF-based RND/DET, the real OPE and
Paillier from their modules) and the peeling state machine.  What it
deliberately reproduces is the *data interoperability gap* the SDB paper
criticizes: each onion's ciphertexts live in a different space, so e.g.
the output of a HOM addition can never feed an OPE comparison -- which is
why CryptDB supports so few TPC-H queries natively (experiment E2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.baselines.ope import OPECipher, OPEKey
from repro.baselines.paillier import PaillierKeypair
from repro.crypto.prf import derive_key, prf_int


class Layer(enum.Enum):
    RND = "rnd"
    DET = "det"
    OPE = "ope"
    HOM = "hom"
    PLAIN = "plain"


def det_encrypt(key: bytes, plaintext: int, bits: int = 128) -> int:
    """Deterministic encryption (PRF of the plaintext).

    Supports equality tests only; stands in for AES-ECB/SIV in CryptDB.
    (One-way here, which suffices for equality semantics and benchmarks;
    CryptDB decrypts by peeling, we track plaintexts at the client.)
    """
    return prf_int(key, plaintext.to_bytes(16, "big", signed=True), bits)


def rnd_encrypt(key: bytes, inner: int, nonce: int, bits: int = 128) -> int:
    """Probabilistic layer: XOR the inner ciphertext with a PRF pad."""
    pad = prf_int(key, nonce.to_bytes(16, "big"), bits)
    return inner ^ pad


def rnd_decrypt(key: bytes, outer: int, nonce: int, bits: int = 128) -> int:
    return rnd_encrypt(key, outer, nonce, bits)  # XOR is its own inverse


@dataclass
class OnionColumn:
    """One sensitive column encrypted under the three CryptDB onions."""

    name: str
    eq_cells: list = field(default_factory=list)    # RND(DET(v)) or DET(v)
    ord_cells: list = field(default_factory=list)   # RND(OPE(v)) or OPE(v)
    add_cells: list = field(default_factory=list)   # Paillier(v)
    eq_layer: Layer = Layer.RND
    ord_layer: Layer = Layer.RND

    def peel_equality(self, key: bytes) -> None:
        """Expose DET ciphertexts (needed for =, IN, GROUP BY, join)."""
        if self.eq_layer is Layer.RND:
            self.eq_cells = [
                rnd_decrypt(key, cell, nonce) for nonce, cell in enumerate(self.eq_cells)
            ]
            self.eq_layer = Layer.DET

    def peel_order(self, key: bytes) -> None:
        """Expose OPE ciphertexts (needed for <, BETWEEN, ORDER BY)."""
        if self.ord_layer is Layer.RND:
            self.ord_cells = [
                rnd_decrypt(key, cell, nonce) for nonce, cell in enumerate(self.ord_cells)
            ]
            self.ord_layer = Layer.OPE


class OnionEncryptor:
    """Encrypts integer columns under the three onions."""

    def __init__(self, master_key: bytes, paillier: PaillierKeypair, rng=None):
        self._det_key = derive_key(master_key, "det")
        self._rnd_eq_key = derive_key(master_key, "rnd-eq")
        self._rnd_ord_key = derive_key(master_key, "rnd-ord")
        self._ope = OPECipher(OPEKey(key=derive_key(master_key, "ope")))
        self._paillier = paillier
        self._rng = rng

    @property
    def rnd_eq_key(self) -> bytes:
        return self._rnd_eq_key

    @property
    def rnd_ord_key(self) -> bytes:
        return self._rnd_ord_key

    def encrypt_column(self, name: str, values) -> OnionColumn:
        column = OnionColumn(name=name)
        for nonce, value in enumerate(values):
            det = det_encrypt(self._det_key, value)
            column.eq_cells.append(rnd_encrypt(self._rnd_eq_key, det, nonce))
            ope = self._ope.encrypt(value)
            column.ord_cells.append(rnd_encrypt(self._rnd_ord_key, ope, nonce))
            column.add_cells.append(
                self._paillier.public.encrypt(value, self._rng)
            )
        return column
