"""MONOMI-style split client/server execution planning.

MONOMI (Tu et al., PVLDB 2013) extends the CryptDB approach for analytical
queries with two ideas the SDB paper's intro references:

* **precomputation** -- materialize encrypted derived columns (e.g.
  ``l_extendedprice * (1 - l_discount)``) at upload time so the server can
  HOM-sum them;
* **split execution** -- whatever the encryption cannot evaluate at the
  server is shipped back (as encrypted rows or partial aggregates) and
  finished at the client.

This planner reuses the CryptDB capability analysis, first rewriting the
query against a configured set of precomputed expressions, and classifies
the residue: ``server`` (fully native), ``split`` (server filters/groups,
client finishes aggregates or divisions), or ``client`` (base data must be
shipped).  The coverage experiment (E2) reports all three systems side by
side, which is exactly the paper's positioning: SDB runs everything
natively, MONOMI needs precomputation plus client work, CryptDB supports a
handful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baselines.cryptdb import BLOCKED, CryptDBCapabilityModel, QuerySupport
from repro.sql import ast


@dataclass(frozen=True)
class Precomputation:
    """A derived encrypted column materialized at upload time."""

    table: str
    name: str
    expr: ast.Expr


#: the precomputations MONOMI's optimizer would pick for TPC-H
def default_tpch_precomputations() -> list[Precomputation]:
    from repro.sql.parser import parse

    def expr_of(sql: str) -> ast.Expr:
        return parse(f"SELECT {sql}").items[0].expr

    return [
        Precomputation(
            "lineitem", "disc_price", expr_of("l_extendedprice * (1 - l_discount)")
        ),
        Precomputation(
            "lineitem",
            "charge",
            expr_of("l_extendedprice * (1 - l_discount) * (1 + l_tax)"),
        ),
        Precomputation(
            "lineitem", "disc_revenue", expr_of("l_extendedprice * l_discount")
        ),
        Precomputation(
            "partsupp", "ps_value", expr_of("ps_supplycost * ps_availqty")
        ),
    ]


@dataclass
class MonomiPlan:
    mode: str  # 'server' | 'split' | 'client'
    precomputed_used: list = field(default_factory=list)
    client_ops: list = field(default_factory=list)
    violations: list = field(default_factory=list)


class MonomiPlanner:
    """Plan queries for a MONOMI-style deployment."""

    def __init__(
        self,
        tables: dict,
        sensitive=None,
        precomputations: Optional[list] = None,
    ):
        self._precomputations = (
            default_tpch_precomputations()
            if precomputations is None
            else precomputations
        )
        # expose precomputed columns as extra (encrypted) columns
        extended = {
            name: list(columns) for name, columns in tables.items()
        }
        for pre in self._precomputations:
            extended.setdefault(pre.table, []).append((pre.name, None))
        self._tables = extended
        base_sensitive = sensitive

        def sensitive_with_precomputed(table, column):
            if any(p.table == table and p.name == column for p in self._precomputations):
                return True
            if base_sensitive is None:
                return True
            return base_sensitive(table, column)

        self._model = CryptDBCapabilityModel(
            extended, sensitive=sensitive_with_precomputed
        )

    # -- planning -----------------------------------------------------------

    def plan(self, query: ast.Select) -> MonomiPlan:
        rewritten, used = self._substitute(query)
        support = self._model.analyze(rewritten)
        if support.supported:
            return MonomiPlan(mode="server", precomputed_used=used)
        client_ops, hard = self._classify_violations(support)
        if not hard:
            return MonomiPlan(
                mode="split",
                precomputed_used=used,
                client_ops=client_ops,
                violations=support.violations,
            )
        return MonomiPlan(
            mode="client",
            precomputed_used=used,
            client_ops=client_ops,
            violations=support.violations,
        )

    def _classify_violations(self, support: QuerySupport):
        """Split violations into client-finishable and server-blocking.

        HOM outputs consumed by comparisons/HAVING and output divisions can
        be finished at the client (ship partial aggregates); products of
        encrypted columns or pattern matching cannot (ship raw rows).
        """
        client_ops = []
        hard = []
        for violation in support.violations:
            if "HOM output" in violation or "ORDER BY a HOM aggregate" in violation:
                client_ops.append(f"client-side comparison: {violation}")
            elif "output not computable" in violation and (
                "/" in violation or "AVG(" in violation.upper()
            ):
                # ship partial aggregates (sums/counts), divide at the client
                client_ops.append(f"client-side division: {violation}")
            else:
                hard.append(violation)
        return client_ops, hard

    # -- precomputation substitution ---------------------------------------------

    def _substitute(self, query: ast.Select):
        used: list[str] = []

        def sub_expr(expr):
            for pre in self._precomputations:
                if expr == pre.expr:
                    if pre.name not in used:
                        used.append(pre.name)
                    return ast.Column(pre.name)
            return self._rebuild(expr, sub_expr)

        def sub_select(select: ast.Select) -> ast.Select:
            return ast.Select(
                items=tuple(
                    ast.SelectItem(expr=sub_expr(i.expr), alias=i.alias)
                    for i in select.items
                ),
                from_clause=sub_from(select.from_clause),
                where=sub_expr(select.where) if select.where is not None else None,
                group_by=tuple(sub_expr(g) for g in select.group_by),
                having=sub_expr(select.having) if select.having is not None else None,
                order_by=tuple(
                    ast.OrderItem(expr=sub_expr(o.expr), descending=o.descending)
                    for o in select.order_by
                ),
                limit=select.limit,
                distinct=select.distinct,
            )

        def sub_from(texpr):
            if texpr is None or isinstance(texpr, ast.TableRef):
                return texpr
            if isinstance(texpr, ast.SubqueryRef):
                return ast.SubqueryRef(query=sub_select(texpr.query), alias=texpr.alias)
            if isinstance(texpr, ast.Join):
                return ast.Join(
                    left=sub_from(texpr.left),
                    right=sub_from(texpr.right),
                    kind=texpr.kind,
                    condition=(
                        sub_expr(texpr.condition)
                        if texpr.condition is not None
                        else None
                    ),
                )
            return texpr

        return sub_select(query), used

    def _rebuild(self, expr, sub):
        """Structurally rebuild an expression, substituting children."""
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(op=expr.op, left=sub(expr.left), right=sub(expr.right))
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(op=expr.op, operand=sub(expr.operand))
        if isinstance(expr, ast.Aggregate) and expr.arg is not None:
            return ast.Aggregate(func=expr.func, arg=sub(expr.arg), distinct=expr.distinct)
        if isinstance(expr, ast.CaseWhen):
            return ast.CaseWhen(
                branches=tuple((sub(c), sub(r)) for c, r in expr.branches),
                default=sub(expr.default) if expr.default is not None else None,
            )
        if isinstance(expr, ast.Between):
            return ast.Between(
                subject=sub(expr.subject), low=sub(expr.low), high=sub(expr.high),
                negated=expr.negated,
            )
        if isinstance(expr, ast.InList):
            return ast.InList(
                subject=sub(expr.subject),
                items=tuple(sub(i) for i in expr.items),
                negated=expr.negated,
            )
        if isinstance(expr, ast.ScalarSubquery):
            return expr  # precomputation inside subqueries: handled coarsely
        return expr
