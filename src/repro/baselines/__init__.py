"""Comparison systems the paper positions SDB against.

* :mod:`repro.baselines.paillier` -- the Paillier cryptosystem (CryptDB /
  MONOMI's additively homomorphic HOM onion layer).
* :mod:`repro.baselines.ope` -- an order-preserving encoding (the OPE
  layer), implemented as a keyed monotone mapping.
* :mod:`repro.baselines.onion` -- RND/DET/OPE/HOM onion columns in the
  CryptDB style, with layer peeling.
* :mod:`repro.baselines.cryptdb` -- a capability model deciding which
  queries a specialized-encryption system supports *natively* (without DO
  involvement or precomputation); reproduces the "4 of 22 TPC-H" claim.
* :mod:`repro.baselines.monomi` -- MONOMI-style split client/server
  planning: the server does what its encryption supports, the client
  finishes the rest, and the planner reports how much work moved back to
  the client.
"""

from repro.baselines.cryptdb import CryptDBCapabilityModel, QuerySupport
from repro.baselines.monomi import MonomiPlanner
from repro.baselines.ope import OPECipher
from repro.baselines.paillier import PaillierKeypair, paillier_keygen

__all__ = [
    "PaillierKeypair",
    "paillier_keygen",
    "OPECipher",
    "CryptDBCapabilityModel",
    "QuerySupport",
    "MonomiPlanner",
]
