"""Order-preserving encryption (the CryptDB/MONOMI OPE onion layer).

A keyed, strictly monotone mapping from a bounded plaintext domain into a
larger ciphertext domain.  We implement the classic recursive
binary-partition construction (a practical stand-in for Boldyreva et al.'s
hypergeometric sampler, which the paper's reference [4] analyses): the
ciphertext of ``m`` is obtained by walking a key-derived pseudorandom
binary search tree over the ciphertext space.  Deterministic per key,
strictly order-preserving, and -- as reference [4] proves -- inherently
leaky: ciphertext order (and approximate magnitude) is public.  That
leak is exactly why CryptDB needs it as a *separate* onion that cannot
feed other operators, while SDB's masked comparisons stay inside the
share space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.prf import prf_int


@dataclass(frozen=True)
class OPEKey:
    key: bytes
    plaintext_bits: int = 32
    expansion_bits: int = 32  # ciphertext space = plaintext space << expansion


class OPECipher:
    """Deterministic order-preserving cipher over a signed bounded domain."""

    def __init__(self, key: OPEKey):
        self._key = key
        self._plain_lo = -(1 << (key.plaintext_bits - 1))
        self._plain_hi = (1 << (key.plaintext_bits - 1)) - 1
        span = (self._plain_hi - self._plain_lo + 1)
        self._cipher_hi = span << key.expansion_bits

    def encrypt(self, plaintext: int) -> int:
        """Map ``plaintext`` to its ciphertext; strictly monotone."""
        if not self._plain_lo <= plaintext <= self._plain_hi:
            raise ValueError("plaintext outside OPE domain")
        plain_lo, plain_hi = self._plain_lo, self._plain_hi
        cipher_lo, cipher_hi = 0, self._cipher_hi
        depth = 0
        while plain_lo < plain_hi:
            plain_mid = (plain_lo + plain_hi) // 2
            # key-derived split point of the ciphertext interval: keeps the
            # mapping pseudorandom while preserving order
            gap = cipher_hi - cipher_lo
            label = f"{depth}:{plain_lo}:{plain_hi}".encode()
            offset = prf_int(self._key.key, label, 64) % max(gap // 4, 1)
            cipher_mid = cipher_lo + gap // 2 + offset - max(gap // 8, 0)
            cipher_mid = min(max(cipher_mid, cipher_lo + 1), cipher_hi - 1)
            if plaintext <= plain_mid:
                plain_hi = plain_mid
                cipher_hi = cipher_mid
            else:
                plain_lo = plain_mid + 1
                cipher_lo = cipher_mid + 1
            depth += 1
        return cipher_lo

    def encrypt_many(self, values) -> list[int]:
        return [self.encrypt(v) for v in values]
