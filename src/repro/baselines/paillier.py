"""The Paillier cryptosystem.

CryptDB's and MONOMI's HOM onion layer: additively homomorphic public-key
encryption.  Implemented in full (keygen / encrypt / decrypt / ciphertext
addition / plaintext multiplication) so the operator microbenchmarks
(experiment E4) compare SDB's one-multiplication operators against real
HOM costs, not a stub.

Standard scheme with g = n + 1 (so encryption needs no extra exponent):

    c = (1 + m*n) * r^n  mod n^2,   m = L(c^lambda mod n^2) * mu mod n.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.crypto import ntheory


@dataclass(frozen=True)
class PaillierPublicKey:
    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    def encrypt(self, plaintext: int, rng=None) -> int:
        """Encrypt ``plaintext`` (signed values taken mod n)."""
        m = plaintext % self.n
        n2 = self.n_squared
        r = ntheory.random_unit(self.n, rng)
        return (1 + m * self.n) % n2 * pow(r, self.n, n2) % n2

    def add(self, c1: int, c2: int) -> int:
        """Homomorphic addition: Dec(add(c1,c2)) = m1 + m2."""
        return c1 * c2 % self.n_squared

    def mul_plain(self, c: int, k: int) -> int:
        """Homomorphic plaintext multiplication: Dec = m * k."""
        return pow(c, k % self.n, self.n_squared)


@dataclass(frozen=True)
class PaillierPrivateKey:
    public: PaillierPublicKey
    lam: int  # lcm(p-1, q-1)
    mu: int   # (L(g^lam mod n^2))^-1 mod n

    def decrypt(self, ciphertext: int) -> int:
        n = self.public.n
        n2 = self.public.n_squared
        x = pow(ciphertext, self.lam, n2)
        l_value = (x - 1) // n
        m = l_value * self.mu % n
        return m - n if m > n // 2 else m


@dataclass(frozen=True)
class PaillierKeypair:
    public: PaillierPublicKey
    private: PaillierPrivateKey


def paillier_keygen(modulus_bits: int = 2048, rng=None) -> PaillierKeypair:
    half = modulus_bits // 2
    p = ntheory.random_prime(half, rng)
    q = ntheory.random_prime(modulus_bits - half, rng)
    while q == p:
        q = ntheory.random_prime(modulus_bits - half, rng)
    n = p * q
    lam = (p - 1) * (q - 1) // ntheory.gcd(p - 1, q - 1)
    public = PaillierPublicKey(n=n)
    x = pow(n + 1, lam, n * n)
    l_value = (x - 1) // n
    mu = ntheory.modinv(l_value, n)
    return PaillierKeypair(
        public=public, private=PaillierPrivateKey(public=public, lam=lam, mu=mu)
    )
