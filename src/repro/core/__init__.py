"""SDB core: the paper's contribution.

* :mod:`repro.core.meta` -- logical value types and per-column metadata.
* :mod:`repro.core.protocols` -- the secure-operator protocol suite and its
  leakage profiles (multiplication, key update, addition, comparison,
  tokens, aggregation).
* :mod:`repro.core.udfs` -- the SP-side UDFs (all operate on shares mod n).
* :mod:`repro.core.keystore` -- the DO-side key store (demo step 1).
* :mod:`repro.core.encryptor` -- the upload pipeline.
* :mod:`repro.core.rewriter` -- SQL rewriting to UDF form (Section 2.2).
* :mod:`repro.core.decryptor` -- result decryption at the proxy.
* :mod:`repro.core.proxy` / :mod:`repro.core.server` /
  :mod:`repro.core.channel` -- the two-party architecture of Figure 2.
* :mod:`repro.core.security` -- DB/CPA/QR attacker simulations (Section 2.3).
"""

from repro.core.meta import ColumnMeta, SensitivityProfile, TableMeta, ValueType
from repro.core.proxy import SDBProxy
from repro.core.server import SDBServer

__all__ = [
    "ValueType",
    "ColumnMeta",
    "TableMeta",
    "SensitivityProfile",
    "SDBProxy",
    "SDBServer",
]
