"""Logical value types and sensitivity metadata.

The DO declares, per uploaded column, a logical type and whether the column
is sensitive (demo step 1: "choose the attributes that need to be
protected").  Sensitive columns are ring-encoded and secret-shared; the
rest are stored plain at the SP.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Optional

from repro.crypto import encoding
from repro.crypto.keys import ColumnKey


@dataclass(frozen=True)
class ValueType:
    """A logical type: int, decimal(scale), date, string(width) or bool."""

    kind: str  # 'int' | 'decimal' | 'date' | 'string' | 'bool'
    scale: int = 0
    width: int = 0

    KINDS = ("int", "decimal", "date", "string", "bool")

    def __post_init__(self):
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown value kind {self.kind!r}")
        if self.kind == "decimal" and self.scale < 0:
            raise ValueError("decimal scale must be non-negative")
        if self.kind == "string" and self.width <= 0:
            raise ValueError("string columns need a positive width")

    # -- constructors ------------------------------------------------------

    @classmethod
    def int_(cls) -> "ValueType":
        return cls("int")

    @classmethod
    def decimal(cls, scale: int = 2) -> "ValueType":
        return cls("decimal", scale=scale)

    @classmethod
    def date(cls) -> "ValueType":
        return cls("date")

    @classmethod
    def string(cls, width: int) -> "ValueType":
        return cls("string", width=width)

    @classmethod
    def bool_(cls) -> "ValueType":
        return cls("bool")

    # -- ring encoding ---------------------------------------------------------

    @property
    def is_numeric(self) -> bool:
        return self.kind in ("int", "decimal")

    @property
    def is_orderable(self) -> bool:
        return self.kind in ("int", "decimal", "date", "string")

    def encode(self, value) -> int:
        """Map an application value to a (signed) ring integer."""
        if self.kind == "int":
            return int(value)
        if self.kind == "decimal":
            return encoding.encode_decimal(value, self.scale)
        if self.kind == "date":
            return encoding.encode_date(value)
        if self.kind == "string":
            return encoding.encode_string(value, self.width)
        if self.kind == "bool":
            return int(bool(value))
        raise AssertionError(self.kind)

    def decode(self, ring_value: int):
        """Inverse of :meth:`encode` (input already sign-decoded)."""
        if self.kind == "int":
            return ring_value
        if self.kind == "decimal":
            return encoding.decode_decimal(ring_value, self.scale)
        if self.kind == "date":
            return encoding.decode_date(ring_value)
        if self.kind == "string":
            return encoding.decode_string(ring_value, self.width)
        if self.kind == "bool":
            return bool(ring_value)
        raise AssertionError(self.kind)


@dataclass(frozen=True)
class ColumnMeta:
    """DO-side metadata for one uploaded column."""

    name: str
    vtype: ValueType
    sensitive: bool = False
    key: Optional[ColumnKey] = None  # set for sensitive columns

    def __post_init__(self):
        if self.sensitive and self.key is None:
            raise ValueError(f"sensitive column {self.name!r} needs a column key")


@dataclass
class TableMeta:
    """DO-side metadata for one uploaded table.

    ``aux_key`` is the column key of the auxiliary ``S`` column (encrypted
    1s) every encrypted table carries; ``sies_nonce_base`` seeds the per-row
    SIES nonces for the encrypted row ids.
    """

    name: str
    columns: dict  # name -> ColumnMeta (insertion-ordered)
    aux_key: Optional[ColumnKey] = None
    num_rows: int = 0

    def column(self, name: str) -> ColumnMeta:
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(f"table {self.name!r} has no column {name!r}") from None

    @property
    def has_sensitive(self) -> bool:
        return any(c.sensitive for c in self.columns.values())

    def sensitive_columns(self) -> list[str]:
        return [c.name for c in self.columns.values() if c.sensitive]


@dataclass(frozen=True)
class SensitivityProfile:
    """Which columns of a schema are sensitive (demo step 1 settings page)."""

    name: str
    sensitive: frozenset

    @classmethod
    def of(cls, name: str, columns) -> "SensitivityProfile":
        return cls(name=name, sensitive=frozenset(columns))

    def is_sensitive(self, table: str, column: str) -> bool:
        return f"{table}.{column}" in self.sensitive or column in self.sensitive
