"""Rewrite products: the rewritten query plus the decryption plan.

The proxy needs two things back from the rewriter: the query to submit to
the SP, and a *decryption plan* describing how each application-visible
output column is recovered from the (partly encrypted) result relation:

* :class:`PlainSlot` -- the SP column is already plaintext (insensitive
  data, counts, comparison outcomes).
* :class:`ShareSlot` -- the SP column holds shares under a derived key;
  decryption may need SIES row ids delivered in hidden columns.
* :class:`PostOp` trees -- proxy-side arithmetic that cannot run in the
  ring (division, AVG): leaves are slots, inner nodes are exact rational
  operators evaluated after decryption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.meta import ValueType
from repro.crypto.keyops import KeyExpr
from repro.sql import ast


@dataclass(frozen=True)
class PlainSlot:
    """Pass-through output: result column ``index`` is plaintext."""

    index: int
    vtype: Optional[ValueType] = None


@dataclass(frozen=True)
class ShareSlot:
    """Encrypted output: result column ``index`` holds shares under ``key``.

    ``rowid_slots`` maps each row-id source in ``key.terms`` to the index
    of the hidden result column carrying that source's SIES ciphertext.
    """

    index: int
    key: KeyExpr
    vtype: ValueType
    rowid_slots: tuple[tuple[str, int], ...] = ()


@dataclass(frozen=True)
class PostOp:
    """Proxy-side arithmetic over decrypted slots (division, AVG, ...)."""

    op: str  # '+', '-', '*', '/', 'neg'
    left: "OutputSpec"
    right: Optional["OutputSpec"] = None


@dataclass(frozen=True)
class Const:
    """A literal folded into a proxy-side post expression."""

    value: object


OutputSpec = Union[PlainSlot, ShareSlot, PostOp, Const]


@dataclass(frozen=True)
class OutputColumn:
    """One application-visible output column."""

    name: str
    spec: OutputSpec


@dataclass
class RewrittenQuery:
    """Everything the proxy needs to run one query end to end."""

    query: ast.Select                     # submitted to the SP
    outputs: tuple[OutputColumn, ...]     # in application order
    leakage: tuple[str, ...] = ()         # per-site leakage events
    notes: tuple[str, ...] = ()           # rewriting decisions worth surfacing

    @property
    def sql(self) -> str:
        return self.query.to_sql()


@dataclass
class RewrittenDML:
    """A rewritten INSERT/UPDATE/DELETE ready for submission to the SP."""

    statement: ast.Statement
    leakage: tuple[str, ...] = ()
    notes: tuple[str, ...] = ()

    @property
    def sql(self) -> str:
        return self.statement.to_sql()
