"""Rewrite products: the rewritten query plus the decryption plan.

The proxy needs two things back from the rewriter: the query to submit to
the SP, and a *decryption plan* describing how each application-visible
output column is recovered from the (partly encrypted) result relation:

* :class:`PlainSlot` -- the SP column is already plaintext (insensitive
  data, counts, comparison outcomes).
* :class:`ShareSlot` -- the SP column holds shares under a derived key;
  decryption may need SIES row ids delivered in hidden columns.
* :class:`PostOp` trees -- proxy-side arithmetic that cannot run in the
  ring (division, AVG): leaves are slots, inner nodes are exact rational
  operators evaluated after decryption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.meta import ValueType
from repro.crypto.keyops import KeyExpr
from repro.sql import ast


@dataclass(frozen=True)
class PlainSlot:
    """Pass-through output: result column ``index`` is plaintext."""

    index: int
    vtype: Optional[ValueType] = None


@dataclass(frozen=True)
class ShareSlot:
    """Encrypted output: result column ``index`` holds shares under ``key``.

    ``rowid_slots`` maps each row-id source in ``key.terms`` to the index
    of the hidden result column carrying that source's SIES ciphertext.
    """

    index: int
    key: KeyExpr
    vtype: ValueType
    rowid_slots: tuple[tuple[str, int], ...] = ()


@dataclass(frozen=True)
class PostOp:
    """Proxy-side arithmetic over decrypted slots (division, AVG, ...)."""

    op: str  # '+', '-', '*', '/', 'neg'
    left: "OutputSpec"
    right: Optional["OutputSpec"] = None


@dataclass(frozen=True)
class Const:
    """A literal folded into a proxy-side post expression."""

    value: object


@dataclass(frozen=True)
class ParamRef:
    """A parameter folded into a proxy-side post expression.

    The parameter never reaches the SP (exactly like :class:`Const` values
    in the same position); the decryptor reads it from the bound parameter
    row at decryption time.
    """

    param: int
    negate: bool = False


OutputSpec = Union[PlainSlot, ShareSlot, PostOp, Const, ParamRef]


@dataclass(frozen=True)
class ParamSlot:
    """How one rewritten-query placeholder derives from a parameter.

    The rewriter folds constants into rewritten queries in masked or
    ring-encoded form; a parameter in the same position defers exactly that
    arithmetic.  At bind time the slot's literal is computed as::

        ring = ring_encode(value, kind, scale, width)   # kind != None
        literal = (-ring if negate else ring)           # factor is None
        literal = factor * ring % n                     # factor set

    ``kind=None`` is a passthrough slot: the raw value goes to the SP (the
    marker sits in a plain position, where the string path would have sent
    the literal in clear anyway).
    """

    param: int                     # index into the application's parameters
    kind: Optional[str] = None     # ring encoding kind; None = passthrough
    scale: int = 0
    width: int = 0
    factor: Optional[int] = None   # token/key inverse folded at rewrite time
    negate: bool = False


@dataclass(frozen=True)
class OutputColumn:
    """One application-visible output column."""

    name: str
    spec: OutputSpec


@dataclass
class RewrittenQuery:
    """Everything the proxy needs to run one query end to end."""

    query: ast.Select                     # submitted to the SP
    outputs: tuple[OutputColumn, ...]     # in application order
    leakage: tuple[str, ...] = ()         # per-site leakage events
    notes: tuple[str, ...] = ()           # rewriting decisions worth surfacing
    param_slots: tuple[ParamSlot, ...] = ()  # placeholder slots, in marker order

    @property
    def sql(self) -> str:
        return self.query.to_sql()

    def bind_slots(self, n: int, values) -> list:
        """Literal values for the query's markers given application ``values``.

        ``n`` is the public modulus.  NULL parameters stay NULL (every SDB
        UDF propagates NULL).
        """
        from repro.crypto.encoding import ring_encode

        literals = []
        for slot in self.param_slots:
            value = values[slot.param]
            if value is None or slot.kind is None:
                literals.append(value)
                continue
            ring = ring_encode(value, slot.kind, slot.scale, slot.width)
            if slot.negate:
                ring = -ring
            literals.append(ring if slot.factor is None else ring * slot.factor % n)
        return literals


@dataclass
class RewrittenDML:
    """A rewritten INSERT/UPDATE/DELETE ready for submission to the SP."""

    statement: ast.Statement
    leakage: tuple[str, ...] = ()
    notes: tuple[str, ...] = ()

    @property
    def sql(self) -> str:
        return self.statement.to_sql()
