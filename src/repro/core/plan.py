"""Rewrite products: the rewritten query plus the decryption plan.

The proxy needs two things back from the rewriter: the query to submit to
the SP, and a *decryption plan* describing how each application-visible
output column is recovered from the (partly encrypted) result relation:

* :class:`PlainSlot` -- the SP column is already plaintext (insensitive
  data, counts, comparison outcomes).
* :class:`ShareSlot` -- the SP column holds shares under a derived key;
  decryption may need SIES row ids delivered in hidden columns.
* :class:`PostOp` trees -- proxy-side arithmetic that cannot run in the
  ring (division, AVG): leaves are slots, inner nodes are exact rational
  operators evaluated after decryption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.meta import ValueType
from repro.crypto.keyops import KeyExpr
from repro.sql import ast


@dataclass(frozen=True)
class PlainSlot:
    """Pass-through output: result column ``index`` is plaintext."""

    index: int
    vtype: Optional[ValueType] = None


@dataclass(frozen=True)
class ShareSlot:
    """Encrypted output: result column ``index`` holds shares under ``key``.

    ``rowid_slots`` maps each row-id source in ``key.terms`` to the index
    of the hidden result column carrying that source's SIES ciphertext.
    """

    index: int
    key: KeyExpr
    vtype: ValueType
    rowid_slots: tuple[tuple[str, int], ...] = ()


@dataclass(frozen=True)
class PostOp:
    """Proxy-side arithmetic over decrypted slots (division, AVG, ...)."""

    op: str  # '+', '-', '*', '/', 'neg'
    left: "OutputSpec"
    right: Optional["OutputSpec"] = None


@dataclass(frozen=True)
class Const:
    """A literal folded into a proxy-side post expression."""

    value: object


@dataclass(frozen=True)
class ParamRef:
    """A parameter folded into a proxy-side post expression.

    The parameter never reaches the SP (exactly like :class:`Const` values
    in the same position); the decryptor reads it from the bound parameter
    row at decryption time.
    """

    param: int
    negate: bool = False


OutputSpec = Union[PlainSlot, ShareSlot, PostOp, Const, ParamRef]


@dataclass(frozen=True)
class ParamSlot:
    """How one rewritten-query placeholder derives from a parameter.

    The rewriter folds constants into rewritten queries in masked or
    ring-encoded form; a parameter in the same position defers exactly that
    arithmetic.  At bind time the slot's literal is computed as::

        ring = ring_encode(value, kind, scale, width)   # kind != None
        literal = (-ring if negate else ring)           # factor is None
        literal = factor * ring % n                     # factor set

    ``kind=None`` is a passthrough slot: the raw value goes to the SP (the
    marker sits in a plain position, where the string path would have sent
    the literal in clear anyway).

    A slot whose ``factor`` came from a rewrite-time random draw (a token
    inverse) additionally names its :class:`MaskSite` via ``mask_site`` /
    ``mask_member``: once the plan's masks are deferred
    (:meth:`RewrittenQuery.defer_masks`), the factor is recomputed from a
    fresh draw on every bind instead of reusing the rewrite-time one.
    ``param == MASK_PARAM`` marks a pure mask slot carrying no application
    value at all -- its literal *is* the recomputed mask material.
    """

    param: int                     # index into the application's parameters
    kind: Optional[str] = None     # ring encoding kind; None = passthrough
    scale: int = 0
    width: int = 0
    factor: Optional[int] = None   # token/key inverse folded at rewrite time
    negate: bool = False
    mask_site: Optional[int] = None   # index into RewrittenQuery.mask_sites
    mask_member: int = 0              # member within that site


#: Sentinel ``ParamSlot.param`` for slots that carry mask material only.
MASK_PARAM = -1


class MaskSite:
    """One rewrite-time random draw and every plan literal derived from it.

    The rewriter draws fresh randomness per site -- a comparison mask
    ``rho`` or an equality-token unit ``m`` -- and folds values derived
    from it (key-update ``p``/``q`` coefficients, token inverses) into the
    rewritten query as literals.  A :class:`MaskSite` records the draw
    procedure and, per emitted literal, a recompute function, so a cached
    plan can re-draw the site's randomness at bind time
    (:meth:`RewrittenQuery.defer_masks` / :meth:`RewrittenQuery.bind_slots`)
    instead of reusing one mask across executions.

    A site whose draw turns out to be *decryption-relevant* -- a token key
    recorded in a :class:`ShareSlot`, or a token share later key-updated by
    a closure that captured it as a fixed source -- is ``pinned`` by the
    rewriter: pinned sites keep their rewrite-time draw and are excluded
    from deferral.
    """

    __slots__ = ("kind", "draw", "members", "index", "pinned")

    def __init__(self, kind: str, draw, index: int = 0):
        self.kind = kind          # 'sign-mask' | 'token'
        self.draw = draw          # rng -> fresh randomness
        self.index = index        # position in RewrittenQuery.mask_sites
        self.pinned = False       # keep the rewrite-time draw forever
        #: ``(literal_node_or_None, fresh -> int)`` pairs.  A ``None`` node
        #: backs a ParamSlot factor override rather than a query literal.
        self.members: list = []

    def add(self, node, compute) -> int:
        """Register one derived value; returns its member index."""
        self.members.append((node, compute))
        return len(self.members) - 1


@dataclass(frozen=True)
class OutputColumn:
    """One application-visible output column."""

    name: str
    spec: OutputSpec


@dataclass
class RewrittenQuery:
    """Everything the proxy needs to run one query end to end."""

    query: ast.Select                     # submitted to the SP
    outputs: tuple[OutputColumn, ...]     # in application order
    leakage: tuple[str, ...] = ()         # per-site leakage events
    notes: tuple[str, ...] = ()           # rewriting decisions worth surfacing
    param_slots: tuple[ParamSlot, ...] = ()  # placeholder slots, in marker order
    mask_sites: tuple = ()                # MaskSite records, re-drawable
    masks_deferred: bool = False          # masks re-drawn per bind_slots call

    @property
    def sql(self) -> str:
        return self.query.to_sql()

    def defer_masks(self) -> "RewrittenQuery":
        """Turn rewrite-time mask literals into per-execution parameters.

        Every literal a :class:`MaskSite` emitted is replaced with a fresh
        parameter marker backed by a mask-only :class:`ParamSlot`;
        :meth:`bind_slots` then re-draws each site's randomness per call.
        The transformed query is wire-identical in shape (same markers for
        application parameters, extra markers for mask material), so
        server-side prepared handles stay valid across executions.
        """
        if self.masks_deferred or not any(
            site.members and not site.pinned for site in self.mask_sites
        ):
            return self
        import dataclasses as _dc

        from repro.sql.params import transform_nodes

        slots = list(self.param_slots)
        replacements: dict[int, ast.Expr] = {}
        for site_index, site in enumerate(self.mask_sites):
            if site.pinned:
                continue
            for member_index, (node, _compute) in enumerate(site.members):
                if node is None:
                    continue  # a ParamSlot factor override, not a literal
                marker = len(slots)
                slots.append(
                    ParamSlot(
                        param=MASK_PARAM,
                        mask_site=site_index,
                        mask_member=member_index,
                    )
                )
                replacements[id(node)] = ast.Placeholder(index=marker)

        def leaf(sub):
            return replacements.get(id(sub))

        return _dc.replace(
            self,
            query=transform_nodes(self.query, leaf),
            param_slots=tuple(slots),
            masks_deferred=True,
        )

    def bind_slots(self, n: int, values, rng=None) -> list:
        """Literal values for the query's markers given application ``values``.

        ``n`` is the public modulus.  NULL parameters stay NULL (every SDB
        UDF propagates NULL).  A plan with deferred masks
        (:meth:`defer_masks`) additionally needs ``rng``: each
        :class:`MaskSite` re-draws its randomness once per call, so two
        binds of the same values produce unlinkable wire literals.
        """
        from repro.crypto.encoding import ring_encode

        draws = None
        if self.masks_deferred:
            if rng is None:
                raise ValueError(
                    "binding a mask-deferred plan needs an rng to re-draw "
                    "its mask sites"
                )
            draws = [
                None if site.pinned else site.draw(rng)
                for site in self.mask_sites
            ]
        literals = []
        for slot in self.param_slots:
            if slot.param == MASK_PARAM:
                compute = self.mask_sites[slot.mask_site].members[
                    slot.mask_member
                ][1]
                literals.append(compute(draws[slot.mask_site]) % n)
                continue
            value = values[slot.param]
            if value is None or slot.kind is None:
                literals.append(value)
                continue
            ring = ring_encode(value, slot.kind, slot.scale, slot.width)
            if slot.negate:
                ring = -ring
            factor = slot.factor
            if (
                draws is not None
                and slot.mask_site is not None
                and draws[slot.mask_site] is not None
            ):
                compute = self.mask_sites[slot.mask_site].members[
                    slot.mask_member
                ][1]
                factor = compute(draws[slot.mask_site])
            literals.append(ring if factor is None else ring * factor % n)
        return literals


@dataclass
class RewrittenDML:
    """A rewritten INSERT/UPDATE/DELETE ready for submission to the SP."""

    statement: ast.Statement
    leakage: tuple[str, ...] = ()
    notes: tuple[str, ...] = ()

    @property
    def sql(self) -> str:
        return self.statement.to_sql()
