"""Result decryption at the proxy (paper Figure 2, steps 4-5).

For every application-visible output column the rewriter produced an
:class:`OutputSpec`; this module executes those specs against the encrypted
result relation:

* plain slots pass through;
* share slots regenerate item keys -- decrypting hidden SIES row-id columns
  when the derived key still has row-id terms -- and apply Equation 4;
* post-op trees evaluate proxy-side arithmetic (division, AVG) on the
  decrypted parts.
"""

from __future__ import annotations

import datetime
from typing import Optional

from repro.analysis.contracts import plaintext_source
from repro.core.keystore import KeyStore
from repro.core.plan import Const, OutputColumn, ParamRef, PlainSlot, PostOp, ShareSlot
from repro.crypto.encoding import decode_signed
from repro.crypto.sies import SIESCipher, SIESCiphertext
from repro.engine.schema import ColumnSpec, DataType, Schema
from repro.engine.table import Table


class DecryptionError(ValueError):
    """Result shape does not match the decryption plan."""


class Decryptor:
    """Decrypts SP result relations using the DO's key store."""

    def __init__(self, store: KeyStore):
        self._store = store
        self._keys = store.keys
        self._sies = SIESCipher(store.sies_key)
        self._params: tuple = ()

    @plaintext_source
    def decrypt(
        self, result: Table, outputs: tuple[OutputColumn, ...], params=()
    ) -> Table:
        """Decode an encrypted result into the application-visible table.

        ``params`` is the bound parameter row for prepared statements whose
        plan contains :class:`ParamRef` leaves (parameters folded into
        proxy-side post arithmetic, e.g. a division by a parameter).
        """
        self._params = tuple(params)
        decoded_columns: list[list] = [[] for _ in outputs]
        for i in range(result.num_rows):
            row = result.row(i)
            rowid_cache: dict[int, int] = {}
            for out_idx, output in enumerate(outputs):
                decoded_columns[out_idx].append(
                    self._value(output.spec, row, rowid_cache)
                )
        specs = tuple(
            _infer_spec(output.name, column)
            for output, column in zip(outputs, decoded_columns)
        )
        return Table(Schema(specs), decoded_columns)

    # -- spec evaluation -----------------------------------------------------

    def _value(self, spec, row, rowid_cache):
        if isinstance(spec, PlainSlot):
            return row[spec.index]
        if isinstance(spec, Const):
            return spec.value
        if isinstance(spec, ParamRef):
            try:
                value = self._params[spec.param]
            except IndexError:
                raise DecryptionError(
                    f"plan references parameter {spec.param} but only "
                    f"{len(self._params)} were bound"
                ) from None
            if value is None:
                return None
            return -value if spec.negate else value
        if isinstance(spec, ShareSlot):
            return self._share_value(spec, row, rowid_cache)
        if isinstance(spec, PostOp):
            return self._post_value(spec, row, rowid_cache)
        raise DecryptionError(f"unknown output spec {type(spec).__name__}")

    def _share_value(self, spec: ShareSlot, row, rowid_cache):
        share = row[spec.index]
        if share is None:
            return None
        row_ids = {}
        for source, slot in spec.rowid_slots:
            cached = rowid_cache.get(slot)
            if cached is None:
                ciphertext = row[slot]
                if not isinstance(ciphertext, SIESCiphertext):
                    raise DecryptionError(
                        f"hidden column {slot} does not hold a SIES row id"
                    )
                cached = self._sies.decrypt(ciphertext)
                rowid_cache[slot] = cached
            row_ids[source] = cached
        vk = spec.key.item_key(self._keys, row_ids)
        ring = decode_signed(share * vk % self._keys.n, self._keys.n)
        return spec.vtype.decode(ring)

    def _post_value(self, spec: PostOp, row, rowid_cache):
        left = self._value(spec.left, row, rowid_cache)
        if spec.op == "neg":
            return None if left is None else -left
        right = self._value(spec.right, row, rowid_cache)
        if left is None or right is None:
            return None
        if spec.op == "+":
            return left + right
        if spec.op == "-":
            return left - right
        if spec.op == "*":
            return left * right
        if spec.op == "/":
            if right == 0:
                return None
            return left / right
        raise DecryptionError(f"unknown post operator {spec.op!r}")


def _infer_spec(name: str, values) -> ColumnSpec:
    for v in values:
        if v is None:
            continue
        if isinstance(v, bool):
            return ColumnSpec(name, DataType.BOOL)
        if isinstance(v, int):
            return ColumnSpec(name, DataType.INT)
        if isinstance(v, float):
            return ColumnSpec(name, DataType.DECIMAL, scale=2)
        if isinstance(v, datetime.date):
            return ColumnSpec(name, DataType.DATE)
        return ColumnSpec(name, DataType.STRING)
    return ColumnSpec(name, DataType.STRING)
