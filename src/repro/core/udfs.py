"""The SDB UDFs installed at the service provider.

Every UDF operates on shares (big integers mod ``n``) plus plain values and
DO-computed scalars; none of them can see a plaintext or a key.  This is
the paper's data-interoperability property in code: all operators read and
write the *same* encrypted representation, so their outputs compose.

The only state a UDF receives beyond its arguments is the public modulus
``n``, passed as a literal argument by the rewritten query -- exactly like
the paper's ``sdb_multiply(Ae, Be, n)`` example in Section 2.2.

All scalar UDFs propagate NULL, matching SQL semantics for rows produced by
outer joins.
"""

from __future__ import annotations

from repro.engine.udf import AggregateUDF, UDFRegistry


def sdb_mul(ae, be, n):
    """EE multiplication: ``ce = ae * be mod n`` (paper Section 2.2)."""
    if ae is None or be is None:
        return None
    return ae * be % n


def sdb_mul_plain(ae, plain, pow10, n):
    """EP multiplication by an insensitive value.

    The plain operand is scaled by ``10**pow10`` (decimal alignment decided
    by the rewriter) and rounded to a ring integer; the share is scaled,
    the column key is unchanged.
    """
    if ae is None or plain is None:
        return None
    factor = round(plain * (10 ** pow10)) if pow10 else int(round(plain))
    return ae * (factor % n) % n


def sdb_add(ae, be, n):
    """EE addition of two *key-aligned* shares."""
    if ae is None or be is None:
        return None
    return (ae + be) % n


def sdb_keyupdate(ae, p, n, *pairs):
    """Key update: ``p * ae * prod_i se_i**q_i mod n``.

    ``pairs`` is a flat sequence ``se_1, q_1, se_2, q_2, ...`` where each
    ``se_i`` is the auxiliary column share of one row-id source and ``q_i``
    the DO-computed exponent.  With no pairs this degenerates to a scalar
    multiplication (used e.g. to re-key aggregated, row-independent shares).
    """
    if ae is None:
        return None
    out = p * ae % n
    for i in range(0, len(pairs), 2):
        se, q = pairs[i], pairs[i + 1]
        if se is None:
            return None
        out = out * pow(se, q, n) % n
    return out


def sdb_enc(value, kind, scale, width, n):
    """Ring-encode an *insensitive* value at the SP.

    Used when an insensitive expression meets a sensitive one (EP addition,
    mixed equality): the plain value must enter the ring with the same
    encoding the DO used at upload time.  Nothing secret is involved --
    the value was public at the SP already.
    """
    if value is None:
        return None
    import datetime

    if kind in ("int", "decimal"):
        return round(value * (10 ** scale)) % n if scale else int(round(value)) % n
    if kind == "date":
        if isinstance(value, datetime.date):
            return (value - datetime.date(1970, 1, 1)).days % n
        return int(value) % n
    if kind == "string":
        raw = str(value).encode("utf-8")
        if len(raw) > width:
            return None  # cannot equal any fixed-width encoded value
        return int.from_bytes(raw.ljust(width, b"\x00"), "big") % n
    if kind == "bool":
        return int(bool(value)) % n
    raise ValueError(f"sdb_enc: unknown kind {kind!r}")


def sdb_sign(masked, n):
    """Sign of a masked difference: -1, 0 or +1.

    ``masked`` is ``d * rho mod n`` with ``|d| * rho < n/2`` guaranteed by
    the mask policy, so residues below ``n/2`` are positive differences and
    residues above are negative ones.
    """
    if masked is None:
        return None
    if masked == 0:
        return 0
    return 1 if masked < n // 2 else -1


def sdb_signed(masked, n):
    """Centered representative of a masked value (order-preserving).

    Used as an ORDER BY key: for a fixed positive mask, ``v * rho`` is
    monotone in ``v`` within the wrap-free window.
    """
    if masked is None:
        return None
    return masked - n if masked > n // 2 else masked


class SdbSum(AggregateUDF):
    """SUM over key-aligned shares: addition mod n; empty input -> NULL."""

    def __init__(self):
        self.initial = None

    def step(self, state, share, n):
        if share is None:
            return state
        if state is None:
            return share % n
        return (state + share) % n

    def fold(self, columns, indices):
        """Whole-group ring sum: one Python-level addition chain, one mod.

        Equivalent to folding :meth:`step` -- ``(a%n + b%n + ...) % n ==
        (a + b + ...) % n`` -- but with a single modulus reduction for the
        group instead of one per row.
        """
        shares, n = columns
        if isinstance(n, list):  # per-row modulus: defer to the step path
            return NotImplemented
        if isinstance(shares, list):
            values = [v for i in indices if (v := shares[i]) is not None]
        else:
            values = [] if shares is None else [shares] * len(indices)
        if not values:
            return None
        return sum(values) % n


class _SdbExtreme(AggregateUDF):
    """MIN/MAX over (order-token, aligned-share) pairs.

    The token is the ``sdb_signed`` masked value (order-preserving); the
    payload share is pre-aligned to a row-independent key so the winner
    decrypts without row ids.
    """

    def __init__(self, want_max: bool):
        self.initial = None
        self._want_max = want_max

    def step(self, state, token, share):
        if token is None:
            return state
        if state is None:
            return (token, share)
        best_token, _ = state
        if (token > best_token) if self._want_max else (token < best_token):
            return (token, share)
        return state

    def finish(self, state):
        return None if state is None else state[1]


class SdbMin(_SdbExtreme):
    def __init__(self):
        super().__init__(want_max=False)


class SdbMax(_SdbExtreme):
    def __init__(self):
        super().__init__(want_max=True)


# -- batch (columnar) forms ---------------------------------------------------
#
# One entry per scalar UDF above, with identical per-row semantics.  A batch
# UDF receives the engine's calling convention fn(num_rows, *args) where
# each argument is a vector (list) or a batch-constant scalar; the modulus
# and the rewriter-chosen literals are always scalars in rewritten queries,
# which is exactly what lets the ring arithmetic run as one comprehension
# with a single hoisted modulus instead of one UDF call per row.


def _vec(arg, num_rows):
    """Broadcast a batch-constant argument to a vector."""
    return arg if isinstance(arg, list) else [arg] * num_rows


def sdb_mul_batch(num_rows, ae, be, n):
    if isinstance(n, list):
        return [sdb_mul(a, b, m) for a, b, m in zip(_vec(ae, num_rows), _vec(be, num_rows), n)]
    return [
        None if a is None or b is None else a * b % n
        for a, b in zip(_vec(ae, num_rows), _vec(be, num_rows))
    ]


def sdb_add_batch(num_rows, ae, be, n):
    if isinstance(n, list):
        return [sdb_add(a, b, m) for a, b, m in zip(_vec(ae, num_rows), _vec(be, num_rows), n)]
    return [
        None if a is None or b is None else (a + b) % n
        for a, b in zip(_vec(ae, num_rows), _vec(be, num_rows))
    ]


def sdb_mul_plain_batch(num_rows, ae, plain, pow10, n):
    if isinstance(pow10, list) or isinstance(n, list):
        return [
            sdb_mul_plain(a, p, e, m)
            for a, p, e, m in zip(
                _vec(ae, num_rows), _vec(plain, num_rows),
                _vec(pow10, num_rows), _vec(n, num_rows),
            )
        ]
    scale = 10 ** pow10 if pow10 else None
    out = []
    for a, p in zip(_vec(ae, num_rows), _vec(plain, num_rows)):
        if a is None or p is None:
            out.append(None)
            continue
        factor = round(p * scale) if scale is not None else int(round(p))
        out.append(a * (factor % n) % n)
    return out


def sdb_keyupdate_batch(num_rows, ae, p, n, *pairs):
    if len(pairs) % 2:
        raise TypeError("sdb_keyupdate expects (se, q) pairs")
    if isinstance(p, list) or isinstance(n, list) or any(
        isinstance(q, list) for q in pairs[1::2]
    ):
        vectors = [_vec(a, num_rows) for a in (ae, p, n, *pairs)]
        return [sdb_keyupdate(*row) for row in zip(*vectors)]
    share_vectors = [_vec(pairs[i], num_rows) for i in range(0, len(pairs), 2)]
    exponents = list(pairs[1::2])
    out = []
    for i, a in enumerate(_vec(ae, num_rows)):
        if a is None:
            out.append(None)
            continue
        acc = p * a % n
        for se_vec, q in zip(share_vectors, exponents):
            se = se_vec[i]
            if se is None:
                acc = None
                break
            acc = acc * pow(se, q, n) % n
        out.append(acc)
    return out


def sdb_enc_batch(num_rows, value, kind, scale, width, n):
    if any(isinstance(a, list) for a in (kind, scale, width, n)):
        vectors = [_vec(a, num_rows) for a in (value, kind, scale, width, n)]
        return [sdb_enc(*row) for row in zip(*vectors)]
    return [sdb_enc(v, kind, scale, width, n) for v in _vec(value, num_rows)]


def sdb_sign_batch(num_rows, masked, n):
    if isinstance(n, list):
        return [sdb_sign(v, m) for v, m in zip(_vec(masked, num_rows), n)]
    half = n // 2
    return [
        None if v is None else (0 if v == 0 else (1 if v < half else -1))
        for v in _vec(masked, num_rows)
    ]


def sdb_signed_batch(num_rows, masked, n):
    if isinstance(n, list):
        return [sdb_signed(v, m) for v, m in zip(_vec(masked, num_rows), n)]
    half = n // 2
    return [
        None if v is None else (v - n if v > half else v)
        for v in _vec(masked, num_rows)
    ]


SCALAR_UDFS = {
    "sdb_mul": sdb_mul,
    "sdb_mul_plain": sdb_mul_plain,
    "sdb_add": sdb_add,
    "sdb_keyupdate": sdb_keyupdate,
    "sdb_enc": sdb_enc,
    "sdb_sign": sdb_sign,
    "sdb_signed": sdb_signed,
}

BATCH_UDFS = {
    "sdb_mul": sdb_mul_batch,
    "sdb_mul_plain": sdb_mul_plain_batch,
    "sdb_add": sdb_add_batch,
    "sdb_keyupdate": sdb_keyupdate_batch,
    "sdb_enc": sdb_enc_batch,
    "sdb_sign": sdb_sign_batch,
    "sdb_signed": sdb_signed_batch,
}

AGGREGATE_UDFS = {
    "sdb_agg_sum": SdbSum,
    "sdb_agg_min": SdbMin,
    "sdb_agg_max": SdbMax,
}


def register_sdb_udfs(registry: UDFRegistry) -> None:
    """Install the SDB UDF set into an engine's registry.

    This is the entire server-side footprint of SDB -- the engine itself is
    unmodified (paper Section 2.2).  Scalar UDFs are registered with their
    vectorized batch forms so the columnar executor evaluates share
    arithmetic one column at a time.
    """
    for name, func in SCALAR_UDFS.items():
        registry.register_scalar(name, func, replace=True)
    for name, func in BATCH_UDFS.items():
        registry.register_batch(name, func, replace=True)
    for name, cls in AGGREGATE_UDFS.items():
        registry.register_aggregate(name, cls(), replace=True)
