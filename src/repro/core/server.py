"""The service-provider side: an unmodified engine plus SDB UDFs.

Matches paper Section 2.2: the SP stores plain values of insensitive data
and the secret shares of sensitive data, processes rewritten queries, and
returns encrypted results.  The server also supports *instrumentation*: a
transcript of everything an SP-resident attacker could observe (stored
relations, submitted queries, UDF inputs/outputs), which powers the demo's
memory-dump step and the security experiments.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.udfs import AGGREGATE_UDFS, SCALAR_UDFS, register_sdb_udfs
from repro.engine import Catalog, Engine, Table
from repro.engine.udf import UDFRegistry, rows_from_args
from repro.sql import ast


@dataclass
class Transcript:
    """What an attacker sitting on the SP can see (QR knowledge)."""

    queries: list = field(default_factory=list)      # rewritten SQL strings
    results: list = field(default_factory=list)      # result tables
    udf_values: list = field(default_factory=list)   # sampled UDF in/outputs

    def clear(self) -> None:
        self.queries.clear()
        self.results.clear()
        self.udf_values.clear()


class _MaterializedResult:
    """An open result backed by a fully computed table (the general case)."""

    def __init__(self, table: Table):
        self.table = table
        self.offset = 0

    def fetch(self, count: Optional[int]) -> Table:
        stop = None if count is None else self.offset + count
        chunk = self.table.slice(self.offset, stop)
        self.offset += chunk.num_rows
        return chunk


class _StreamingResult:
    """An open result backed by a row generator (pipelined execution).

    Rows are produced by the engine only as the client fetches them: a
    ``fetch_rows(id, 10)`` on a million-row scan evaluates exactly the
    rows needed to emit ten outputs.  Chunk schemas are inferred per chunk
    with the same rules the materializing path applies to whole results.
    """

    def __init__(self, names: Sequence[str], rows):
        self._names = list(names)
        self._rows = rows

    def fetch(self, count: Optional[int]) -> Table:
        from repro.engine.columnar import infer_column_spec
        from repro.engine.schema import Schema

        out = []
        if count is None:
            out = list(self._rows)
        elif count > 0:  # count=0 is an empty chunk, like slice(o, o)
            for row in self._rows:
                out.append(row)
                if len(out) >= count:
                    break
        columns = [[row[i] for row in out] for i in range(len(self._names))]
        specs = tuple(
            infer_column_spec(name, column)
            for name, column in zip(self._names, columns)
        )
        return Table(Schema(specs), columns)


class SDBServer:
    """A relational engine with the SDB UDF set installed.

    ``parallel_partitions`` switches the engine to the partition-parallel
    executor (:mod:`repro.engine.parallel`): eligible queries run as
    partial + merge over that many partitions with task retry; everything
    else silently takes the serial path.
    """

    def __init__(
        self,
        instrument: bool = False,
        udf_sample_limit: int = 10000,
        parallel_partitions: int = 0,
        shard_id: Optional[int] = None,
    ):
        #: identity within a sharded cluster (None for standalone servers);
        #: assigned at construction or by the coordinator's first shard_store
        self.shard_id = shard_id
        #: per-table placement metadata recorded by SHARD_STORE ops
        self.shard_placements: dict[str, dict] = {}
        self.catalog = Catalog()
        self.udfs = UDFRegistry()
        register_sdb_udfs(self.udfs)
        # Instrumented servers run the row path: the transcript's
        # per-UDF-call observable is defined by row-at-a-time execution,
        # and a batch attempt that errors and falls back would record its
        # partial UDF traffic on top of the row re-run's.
        batch_enabled = not instrument
        if parallel_partitions:
            from repro.engine.parallel import ParallelEngine

            self.engine = ParallelEngine(
                self.catalog, self.udfs, num_partitions=parallel_partitions,
                batch_enabled=batch_enabled,
            )
        else:
            self.engine = Engine(self.catalog, self.udfs, batch_enabled=batch_enabled)
        self.transcript = Transcript()
        self._instrument = instrument
        self._udf_sample_limit = udf_sample_limit
        # one statement at a time: the networked deployment serves several
        # proxies from threads, and DML mutates tables in place
        self._lock = threading.RLock()
        self._undo: Optional[dict] = None  # table -> column snapshots
        # prepared statements and open (streamable) result sets
        self._prepared: dict[int, ast.Select] = {}
        #: open result sets: materialized tables or pipelined row generators
        self._results: dict[int, object] = {}
        self._handle_ids = itertools.count(1)
        if instrument:
            self._wrap_udfs()

    # -- storage -----------------------------------------------------------

    def store_table(self, name: str, table: Table, replace: bool = False) -> None:
        self.catalog.create(name, table, replace=replace)
        # a plain store is placement-less: re-creating a once-sharded table
        # must not leave stale slice metadata behind (SHARD_STORE re-adds it)
        self.shard_placements.pop(name.lower(), None)

    def drop_table(self, name: str) -> None:
        self.catalog.drop(name)
        self.shard_placements.pop(name.lower(), None)

    # -- shard surface (SHARD_* wire ops; coordinator-facing) ------------------
    #
    # A shard is just an SDBServer that also remembers *why* it holds each
    # relation (its slice index and shard column within a cluster
    # placement -- metadata a reattaching coordinator rebuilds routing
    # from).  The shard never sees the routing PRF key or any shard-key
    # plaintext: the coordinator ships pre-partitioned encrypted slices,
    # so a shard learns which rows landed on it and which column routed
    # them -- exactly the declared PRF-bucket leakage.

    def shard_store(
        self,
        name: str,
        table: Table,
        placement: Optional[dict] = None,
        replace: bool = False,
    ) -> int:
        """Store one placement slice; returns its row count."""
        self.store_table(name, table, replace=replace)
        if placement:
            self.shard_placements[name.lower()] = dict(placement)
            if self.shard_id is None and "index" in placement:
                self.shard_id = int(placement["index"])
        return table.num_rows

    def shard_dump(self, name: str) -> Table:
        """The stored relation, schema-exact (gather for fallback queries)."""
        return self.catalog.get(name)

    def shard_status(self) -> dict:
        """Identity and holdings, as reported over the SHARD_STATUS op."""
        return {
            "shard_id": self.shard_id,
            "tables": {
                name: self.catalog.get(name).num_rows
                for name in self.catalog.names()
            },
            "placements": {
                name: dict(p) for name, p in self.shard_placements.items()
            },
        }

    def execute_partial(self, query) -> Table:
        """Run one scatter partial query (same trust surface as execute)."""
        return self.execute(query)

    # -- query processing --------------------------------------------------------

    def execute(self, query) -> Table:
        """Run a (rewritten) query.  The SP never sees keys or plaintext."""
        with self._lock:
            if self._instrument:
                sql = query if isinstance(query, str) else query.to_sql()
                self.transcript.queries.append(sql)
            result = self.engine.execute(query)
            if self._instrument:
                self.transcript.results.append(result)
            return result

    def execute_dml(self, statement) -> int:
        """Run a (rewritten) INSERT/UPDATE/DELETE; returns affected rows."""
        with self._lock:
            if self._instrument:
                sql = statement if isinstance(statement, str) else statement.to_sql()
                self.transcript.queries.append(sql)
            if isinstance(statement, str):
                from repro.sql.parser import parse_statement

                statement = parse_statement(statement)
            self._remember_for_undo(statement.table)
            return self.engine.execute_dml(statement)

    # -- prepared statements / streaming results ------------------------------
    #
    # The session layer (repro.api) prepares a rewritten query once and
    # executes it many times with bound parameters; results stay at the SP
    # and stream back in fetch-sized chunks so the proxy only decrypts what
    # the application actually reads.  The same four entry points back the
    # networked deployment's PREPARE / EXECUTE_PREPARED / FETCH / CLOSE ops.

    def prepare_query(self, query) -> int:
        """Register a (rewritten) SELECT; returns a statement handle."""
        if isinstance(query, str):
            from repro.sql.parser import parse

            query = parse(query)
        if not isinstance(query, ast.Select):
            raise ValueError("prepare_query expects a SELECT")
        with self._lock:
            stmt_id = next(self._handle_ids)
            self._prepared[stmt_id] = query
            return stmt_id

    def execute_prepared(self, stmt_id: int, params: Sequence = ()) -> tuple[int, int]:
        """Bind ``params`` and run; returns ``(result_id, num_rows)``.

        The result stays server-side until fetched or closed;
        ``fetch_rows`` streams it out in chunks.  Streamable queries
        (single-table scan/filter/project shapes, see
        :meth:`~repro.engine.executor.Engine.execute_iter`) are *pipelined*:
        rows are produced only as they are fetched, so ``num_rows`` comes
        back as ``-1`` (unknown until the scan is drained).  Everything
        else -- and every instrumented server, whose transcript is defined
        over whole results -- materializes as before.
        """
        from repro.sql.params import bind_parameters

        with self._lock:
            try:
                query = self._prepared[stmt_id]
            except KeyError:
                raise KeyError(f"unknown prepared statement {stmt_id}") from None
            bound = bind_parameters(query, params)
            result_id = next(self._handle_ids)
            if not self._instrument:
                execute_iter = getattr(self.engine, "execute_iter", None)
                pipeline = None if execute_iter is None else execute_iter(bound)
                if pipeline is not None:
                    names, rows = pipeline
                    self._results[result_id] = _StreamingResult(names, rows)
                    return result_id, -1
            result = self.execute(bound)
            self._results[result_id] = _MaterializedResult(result)
            return result_id, result.num_rows

    def fetch_rows(self, result_id: int, count: Optional[int] = None) -> Table:
        """Next chunk of an open result (all remaining when ``count`` is None)."""
        with self._lock:
            try:
                entry = self._results[result_id]
            except KeyError:
                raise KeyError(f"unknown result set {result_id}") from None
            return entry.fetch(count)

    def close_result(self, result_id: int) -> None:
        with self._lock:
            self._results.pop(result_id, None)

    def close_prepared(self, stmt_id: int) -> None:
        with self._lock:
            self._prepared.pop(stmt_id, None)

    # -- transactions ---------------------------------------------------------
    #
    # Single-writer transactions with table-granular undo: the first
    # mutation of each table inside a transaction snapshots its columns;
    # ROLLBACK restores the snapshots, COMMIT discards them.  Queries always
    # see the current (uncommitted) state -- the engine is one writer at a
    # time under the server lock, so this is serializable trivially.

    def begin(self) -> None:
        with self._lock:
            if getattr(self, "_undo", None) is not None:
                raise RuntimeError("transaction already in progress")
            self._undo = {}

    def commit(self) -> None:
        with self._lock:
            if getattr(self, "_undo", None) is None:
                raise RuntimeError("no transaction in progress")
            self._undo = None

    def rollback(self) -> None:
        with self._lock:
            undo = getattr(self, "_undo", None)
            if undo is None:
                raise RuntimeError("no transaction in progress")
            for name, columns in undo.items():
                if columns is None:
                    # table did not exist when first touched: drop it
                    if name in self.catalog:
                        self.catalog.drop(name)
                elif name in self.catalog:
                    self.catalog.get(name).columns = columns
            self._undo = None

    @property
    def in_transaction(self) -> bool:
        return getattr(self, "_undo", None) is not None

    def _remember_for_undo(self, table_name: str) -> None:
        undo = getattr(self, "_undo", None)
        if undo is None:
            return
        key = table_name.lower()
        if key in undo:
            return
        if key in self.catalog:
            table = self.catalog.get(key)
            undo[key] = [list(column) for column in table.columns]
        else:
            undo[key] = None

    # -- attacker surface ------------------------------------------------------------

    def memory_dump(self) -> dict:
        """Everything currently observable at the SP.

        ``disk``: stored relations (DB knowledge).  ``memory``: transient
        values observed during computation (QR knowledge) -- queries,
        results and sampled UDF traffic when instrumented.
        """
        return {
            "disk": {
                name: self.catalog.get(name) for name in self.catalog.names()
            },
            "memory": {
                "queries": list(self.transcript.queries),
                "results": list(self.transcript.results),
                "udf_values": list(self.transcript.udf_values),
            },
        }

    def _wrap_udfs(self) -> None:
        for name in list(SCALAR_UDFS):
            original = self.udfs.scalar(name)

            def wrapped(*args, _original=original, _name=name):
                result = _original(*args)
                if len(self.transcript.udf_values) < self._udf_sample_limit:
                    self.transcript.udf_values.append(
                        (_name, args, result)
                    )
                return result

            self.udfs.register_scalar(name, wrapped, replace=True)

            # Instrumented servers disable the batch path above, but the
            # registry is shared -- any engine built on it later must not
            # bypass the wrapper through a batch registration, so route
            # batches through the wrapped scalar row by row.
            if self.udfs.has_batch(name):

                def batch_wrapped(num_rows, *args, _scalar=wrapped):
                    return [
                        _scalar(*row) for row in rows_from_args(num_rows, args)
                    ]

                self.udfs.register_batch(name, batch_wrapped, replace=True)
