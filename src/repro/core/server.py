"""The service-provider side: an unmodified engine plus SDB UDFs.

Matches paper Section 2.2: the SP stores plain values of insensitive data
and the secret shares of sensitive data, processes rewritten queries, and
returns encrypted results.  The server also supports *instrumentation*: a
transcript of everything an SP-resident attacker could observe (stored
relations, submitted queries, UDF inputs/outputs), which powers the demo's
memory-dump step and the security experiments.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.sync import ReadWriteLock
from repro.core.txn import TransactionManager, _row_key
from repro.core.udfs import AGGREGATE_UDFS, SCALAR_UDFS, register_sdb_udfs
from repro.engine import Catalog, Engine, Table
from repro.engine.udf import UDFRegistry, rows_from_args
from repro.sql import ast


#: Shard-side staging relation for an in-flight topology migration: rows
#: re-keyed for the *new* topology accumulate here, invisible to queries,
#: until the rebalance commit record promotes them into the live slice.
MIGRATION_STAGING_PREFIX = "__reshard__"

#: Hidden column storing each row's routing residue on cluster shard
#: slices (written by the coordinator; see ``repro.cluster.router``).
BUCKET_COLUMN = "__bucket"


class ServerBusyError(RuntimeError):
    """Admission control rejected the request: the session pool is full.

    Raised instead of queueing unboundedly when a session already has its
    maximum number of statements in flight (net daemon dispatch queues,
    coordinator scatter admission).  The session layer maps it onto
    ``repro.api.OperationalError`` -- a client sees "server busy" and may
    retry; the server never grows an unbounded thread or queue backlog.
    """


class StaleSnapshotError(RuntimeError):
    """A pipelined result set outlived the snapshot it was opened against.

    Generator-backed (streaming) results snapshot their source columns at
    execute time, so ordinary DML landing between fetches cannot corrupt
    them (pinned by the streaming tests).  What a snapshot *cannot*
    survive is its provenance being rewritten wholesale: a transaction
    rollback restoring the table, or the table being dropped/re-created.
    Fetching from a streaming result after such an invalidation raises
    this error instead of silently serving rows from a state that no
    longer (officially) ever existed.  The session layer maps it onto
    ``repro.api.OperationalError``; materialized results are immune.
    """


@dataclass
class Transcript:
    """What an attacker sitting on the SP can see (QR knowledge)."""

    queries: list = field(default_factory=list)      # rewritten SQL strings
    results: list = field(default_factory=list)      # result tables
    udf_values: list = field(default_factory=list)   # sampled UDF in/outputs

    def clear(self) -> None:
        self.queries.clear()
        self.results.clear()
        self.udf_values.clear()


class _MaterializedResult:
    """An open result backed by a fully computed table (the general case)."""

    def __init__(self, table: Table):
        self.table = table
        self.offset = 0
        # a result normally belongs to one session, but nothing stops two
        # wire requests from fetching the same result id; the old global
        # server lock serialized that, so the per-result lock keeps it safe
        self._fetch_lock = threading.Lock()

    def fetch(self, count: Optional[int]) -> Table:
        with self._fetch_lock:
            stop = None if count is None else self.offset + count
            chunk = self.table.slice(self.offset, stop)
            self.offset += chunk.num_rows
            return chunk


class _StreamingResult:
    """An open result backed by a row generator (pipelined execution).

    Rows are produced by the engine only as the client fetches them: a
    ``fetch_rows(id, 10)`` on a million-row scan evaluates exactly the
    rows needed to emit ten outputs.  Chunk schemas are inferred per chunk
    with the same rules the materializing path applies to whole results.
    """

    def __init__(self, names: Sequence[str], rows, source: str = "", version: int = 0):
        self._names = list(names)
        self._rows = rows
        #: source table and its snapshot version at open (stale-read guard)
        self.source = source
        self.version = version
        # concurrent fetches of one result id must not race the generator
        # ("generator already executing"); the old global lock prevented it
        self._fetch_lock = threading.Lock()

    def fetch(self, count: Optional[int]) -> Table:
        with self._fetch_lock:
            return self._fetch_locked(count)

    def _fetch_locked(self, count: Optional[int]) -> Table:
        from repro.engine.columnar import infer_column_spec
        from repro.engine.schema import Schema

        out = []
        if count is None:
            out = list(self._rows)
        elif count > 0:  # count=0 is an empty chunk, like slice(o, o)
            for row in self._rows:
                out.append(row)
                if len(out) >= count:
                    break
        columns = [[row[i] for row in out] for i in range(len(self._names))]
        specs = tuple(
            infer_column_spec(name, column)
            for name, column in zip(self._names, columns)
        )
        return Table(Schema(specs), columns)


class SDBServer:
    """A relational engine with the SDB UDF set installed.

    ``parallel_partitions`` switches the engine to the partition-parallel
    executor (:mod:`repro.engine.parallel`): eligible queries run as
    partial + merge over that many partitions with task retry; everything
    else silently takes the serial path.
    """

    def __init__(
        self,
        instrument: bool = False,
        udf_sample_limit: int = 10000,
        parallel_partitions: int = 0,
        shard_id: Optional[int] = None,
    ):
        #: identity within a sharded cluster (None for standalone servers);
        #: assigned at construction or by the coordinator's first shard_store
        self.shard_id = shard_id
        #: per-table placement metadata recorded by SHARD_STORE ops
        self.shard_placements: dict[str, dict] = {}
        self.catalog = Catalog()
        self.udfs = UDFRegistry()
        register_sdb_udfs(self.udfs)
        # Instrumented servers run the row path: the transcript's
        # per-UDF-call observable is defined by row-at-a-time execution,
        # and a batch attempt that errors and falls back would record its
        # partial UDF traffic on top of the row re-run's.
        batch_enabled = not instrument
        if parallel_partitions:
            from repro.engine.parallel import ParallelEngine

            self.engine = ParallelEngine(
                self.catalog, self.udfs, num_partitions=parallel_partitions,
                batch_enabled=batch_enabled,
            )
        else:
            self.engine = Engine(self.catalog, self.udfs, batch_enabled=batch_enabled)
        self.transcript = Transcript()
        self._instrument = instrument
        self._udf_sample_limit = udf_sample_limit
        # Readers-writer execution lock: read-only statements against the
        # current snapshot epoch run concurrently; DML/DDL/rollback take
        # the write side exclusively and bump the epoch.  Instrumented
        # servers still serialize everything -- their transcript ordering
        # is part of the observable.
        self._lock = ReadWriteLock()
        #: monotonically increasing data version; bumped by every mutation
        self._epoch = 0
        #: per-table snapshot versions, bumped only when a snapshot taken
        #: earlier can no longer be served honestly (rollback restore,
        #: drop, re-create) -- ordinary DML keeps snapshots valid
        self._table_versions: dict[str, int] = {}
        # fast mutex for handle tables and other micro-state (never held
        # across engine execution)
        self._state_lock = threading.Lock()
        #: per-session MVCC transactions (write sets, conflict validation,
        #: 2PC staging) -- see :mod:`repro.core.txn`
        self.txns = TransactionManager(self)
        # prepared statements and open (streamable) result sets
        self._prepared: dict[int, ast.Select] = {}
        #: open result sets: materialized tables or pipelined row generators
        self._results: dict[int, object] = {}
        self._handle_ids = itertools.count(1)
        #: per-session statement counters, keyed by the ExecutionContext /
        #: wire session id that submitted the work (None: anonymous).
        #: LRU-bounded: a long-lived daemon serving many short-lived
        #: connections must not grow one entry per historical session.
        self.session_stats: "OrderedDict" = OrderedDict()
        self.session_stats_limit = 512
        if instrument:
            self._wrap_udfs()

    # -- snapshot epochs / sessions ---------------------------------------------

    @property
    def epoch(self) -> int:
        """The current snapshot epoch (bumped by every data mutation)."""
        return self._epoch

    def _bump_epoch(self) -> None:
        # only ever called with the write side held
        self._epoch += 1

    def _invalidate_snapshots(self, name: str) -> None:
        """Mark open streaming snapshots of ``name`` as unservable."""
        key = name.lower()
        self._table_versions[key] = self._table_versions.get(key, 0) + 1

    def _table_version(self, name: str) -> int:
        return self._table_versions.get(name.lower(), 0)

    def _note_session(self, session, kind: str) -> None:
        if session is None:
            return
        with self._state_lock:
            stats = self.session_stats.setdefault(
                session, {"reads": 0, "writes": 0}
            )
            stats[kind] += 1
            self.session_stats.move_to_end(session)
            while len(self.session_stats) > self.session_stats_limit:
                self.session_stats.popitem(last=False)

    def session_stats_snapshot(self) -> dict:
        """A consistent copy of the per-session counters (wire-safe)."""
        with self._state_lock:
            return {
                key: dict(stats) for key, stats in self.session_stats.items()
            }

    def _read_side(self):
        """The lock guard for read-only statements.

        Instrumented servers run exclusively even for reads: the
        transcript is an ordered record of what an SP-resident attacker
        observes, and interleaved appends would scramble it.
        """
        if self._instrument:
            return self._lock.write_locked()
        return self._lock.read_locked()

    # -- storage -----------------------------------------------------------

    def store_table(self, name: str, table: Table, replace: bool = False) -> None:
        with self._lock.write_locked():
            self.catalog.create(name, table, replace=replace)
            # a plain store is placement-less: re-creating a once-sharded
            # table must not leave stale slice metadata behind (SHARD_STORE
            # re-adds it)
            self.shard_placements.pop(name.lower(), None)
            self._bump_epoch()
            self._invalidate_snapshots(name)
            self.txns.note_table_replaced(name)

    def drop_table(self, name: str) -> None:
        with self._lock.write_locked():
            self.catalog.drop(name)
            self.shard_placements.pop(name.lower(), None)
            self._bump_epoch()
            self._invalidate_snapshots(name)
            self.txns.note_table_replaced(name)

    # -- shard surface (SHARD_* wire ops; coordinator-facing) ------------------
    #
    # A shard is just an SDBServer that also remembers *why* it holds each
    # relation (its slice index and shard column within a cluster
    # placement -- metadata a reattaching coordinator rebuilds routing
    # from).  The shard never sees the routing PRF key or any shard-key
    # plaintext: the coordinator ships pre-partitioned encrypted slices,
    # so a shard learns which rows landed on it and which column routed
    # them -- exactly the declared PRF-bucket leakage.

    def shard_store(
        self,
        name: str,
        table: Table,
        placement: Optional[dict] = None,
        replace: bool = False,
    ) -> int:
        """Store one placement slice; returns its row count."""
        with self._lock.write_locked():
            self.store_table(name, table, replace=replace)
            if placement:
                self.shard_placements[name.lower()] = dict(placement)
                if self.shard_id is None and "index" in placement:
                    self.shard_id = int(placement["index"])
            return table.num_rows

    def shard_dump(
        self,
        name: str,
        offset: Optional[int] = None,
        count: Optional[int] = None,
    ) -> Table:
        """The stored relation, schema-exact (gather for fallback queries).

        With ``offset``/``count`` this returns one contiguous row window
        ``[offset, offset + count)``, letting the coordinator stream a
        gather in bounded chunks instead of materializing the whole slice
        in one frame.  ``offset=None`` keeps the legacy whole-table form
        (a zero-copy handle when called in-process).
        """
        with self._lock.read_locked():
            table = self.catalog.get(name)
            if offset is None:
                return table
            stop = table.num_rows if count is None else offset + count
            return table.slice(offset, stop)

    def append_table(self, name: str, table: Table) -> int:
        """Append rows to a stored relation, creating it when absent.

        The receive side of a chunked gather: the first chunk arrives via
        ``store_table(replace=True)``, subsequent chunks via this append.
        Placement metadata is left untouched -- appending to a gather
        target never changes why a shard holds the base relation.
        """
        with self._lock.write_locked():
            if name not in self.catalog:
                self.catalog.create(name, table)
                appended = table.num_rows
            else:
                appended = self.catalog.get(name).append_rows(table.rows())
            self._bump_epoch()
            self._invalidate_snapshots(name)
            self.txns.note_table_replaced(name)
            return appended

    def shard_status(self) -> dict:
        """Identity and holdings, as reported over the SHARD_STATUS op."""
        with self._lock.read_locked():
            return {
                "shard_id": self.shard_id,
                "tables": {
                    name: self.catalog.get(name).num_rows
                    for name in self.catalog.names()
                },
                "placements": {
                    name: dict(p) for name, p in self.shard_placements.items()
                },
            }

    def ping(self) -> bool:
        """Liveness probe -- same surface as the remote client's PING op,
        so failure detectors treat in-process and wire backends alike."""
        return True

    def catalog_names(self) -> list:
        """Stored relation names (the CATALOG wire op, in-process)."""
        with self._lock.read_locked():
            return list(self.catalog.names())

    def health(self) -> dict:
        """Cheap liveness + progress summary for replica health checks."""
        with self._lock.read_locked():
            return {
                "shard_id": self.shard_id,
                "epoch": self._epoch,
                "tables": len(self.catalog.names()),
            }

    def execute_partial(self, query, session=None) -> Table:
        """Run one scatter partial query (same trust surface as execute)."""
        return self.execute(query, session=session)

    # -- shard migration (SHARD_MIGRATE_* wire ops; elastic resharding) --------
    #
    # During an elastic rebalance the coordinator streams bucket chunks
    # shard -> shard: the source shard *extracts* movers (selected purely
    # by their stored routing residues -- the shard still never sees the
    # PRF key or any shard-key value), the DO re-keys them in flight, and
    # the destination shard *stages* them in an invisible relation.  The
    # commit record then *promotes* staged rows into the live slice and
    # *purges* movers from the sources.  Promote is idempotent (staged
    # rows carry fresh, unique row-id ciphertexts and are deduplicated
    # against the live slice), and purge is a pure function of stored
    # residues, so a crashed commit can be re-driven safely.

    def _staging_name(self, name: str) -> str:
        return MIGRATION_STAGING_PREFIX + name.lower()

    def _routing_residues(self, name: str, table: Table) -> list:
        if BUCKET_COLUMN not in table.schema.names:
            raise ValueError(
                f"table {name!r} stores no routing residues "
                f"({BUCKET_COLUMN}); it cannot be migrated"
            )
        residues = table.column(BUCKET_COLUMN)
        if any(not isinstance(residue, int) for residue in residues):
            raise ValueError(
                f"table {name!r} has rows without a routing residue"
            )
        return residues

    def shard_migrate_extract(
        self,
        name: str,
        num_chunks: int,
        chunk: int,
        old_modulus: int,
        new_modulus: int,
        old_weights=None,
        new_weights=None,
    ) -> Table:
        """The chunk's movers: rows this slice loses under the new topology.

        Selected entirely from stored residues: ``residue % num_chunks ==
        chunk`` and the old/new shard assignments differ.  Weighted
        topologies ship their small weight tuples instead of full maps --
        both sides rebuild the identical deterministic map from them
        (:func:`repro.cluster.router.shard_map_for`).  Read-only -- the
        rows stay live here until the commit purge.
        """
        from repro.cluster.router import shard_map_for

        old_map = shard_map_for(old_modulus, old_weights)
        new_map = shard_map_for(new_modulus, new_weights)
        with self._lock.read_locked():
            table = self.catalog.get(name)
            residues = self._routing_residues(name, table)
            indices = [
                i
                for i, residue in enumerate(residues)
                if residue % num_chunks == chunk
                and new_map.shard_of(residue) != old_map.shard_of(residue)
            ]
            return table.take(indices)

    def shard_migrate_stage(
        self, name: str, table: Table, placement: Optional[dict] = None
    ) -> int:
        """Append re-keyed mover rows to the staging relation; returns its size."""
        staging = self._staging_name(name)
        with self._lock.write_locked():
            if staging in self.catalog:
                existing = self.catalog.get(staging)
                columns = [
                    list(old) + list(new)
                    for old, new in zip(existing.columns, table.columns)
                ]
                table = Table(existing.schema, columns)
                if placement is None:
                    placement = self.shard_placements.get(staging)
            self.shard_store(
                name=staging, table=table, placement=placement, replace=True
            )
            return table.num_rows

    def shard_migrate_unstage(self, name: str, num_chunks: int, chunk: int) -> int:
        """Drop one chunk's staged rows (the chunk went dirty; it re-copies)."""
        staging = self._staging_name(name)
        with self._lock.write_locked():
            if staging not in self.catalog:
                return 0
            table = self.catalog.get(staging)
            residues = self._routing_residues(staging, table)
            keep = [
                i
                for i, residue in enumerate(residues)
                if residue % num_chunks != chunk
            ]
            removed = table.num_rows - len(keep)
            if removed:
                placement = self.shard_placements.get(staging)
                self.shard_store(
                    staging, table.take(keep), placement=placement, replace=True
                )
            return removed

    def shard_migrate_promote(
        self, name: str, placement: Optional[dict] = None
    ) -> int:
        """Merge staged rows into the live slice (idempotent); returns count.

        Staged rows are deduplicated against the live slice by their
        row-id ciphertexts (fresh and unique per re-keyed row), so a
        commit that crashed between promote and the staging drop can be
        promoted again without duplicating rows.
        """
        from repro.core.encryptor import ROWID_COLUMN

        staging = self._staging_name(name)
        with self._lock.write_locked():
            if staging not in self.catalog:
                if placement and name.lower() in self.catalog:
                    # re-driven commit: staging already promoted; still
                    # refresh the slice's placement for the new topology
                    self.shard_placements[name.lower()] = dict(placement)
                return 0
            staged = self.catalog.get(staging)
            if name.lower() in self.catalog:
                live = self.catalog.get(name)
                seen = {
                    (c.value, c.nonce) for c in live.column(ROWID_COLUMN)
                }
                fresh = [
                    i
                    for i, c in enumerate(staged.column(ROWID_COLUMN))
                    if (c.value, c.nonce) not in seen
                ]
                additions = staged.take(fresh)
                columns = [
                    list(old) + list(new)
                    for old, new in zip(live.columns, additions.columns)
                ]
                merged = Table(live.schema, columns)
                promoted = additions.num_rows
            else:
                merged = staged
                promoted = staged.num_rows
            if placement is None:
                placement = self.shard_placements.get(name.lower())
            self.shard_store(name, merged, placement=placement, replace=True)
            self.drop_table(staging)
            return promoted

    def shard_migrate_purge(
        self,
        name: str,
        modulus: int,
        keep_index: int,
        placement: Optional[dict] = None,
        weights=None,
    ) -> int:
        """Delete rows the new topology places elsewhere; returns the count.

        A pure function of stored residues (idempotent): keep exactly the
        rows the (possibly weighted) new topology assigns to
        ``keep_index``.
        """
        from repro.cluster.router import shard_map_for

        keep_map = shard_map_for(modulus, weights)
        with self._lock.write_locked():
            if name.lower() not in self.catalog:
                return 0
            table = self.catalog.get(name)
            residues = self._routing_residues(name, table)
            keep = [
                i
                for i, residue in enumerate(residues)
                if keep_map.shard_of(residue) == keep_index
            ]
            removed = table.num_rows - len(keep)
            if placement is None:
                placement = self.shard_placements.get(name.lower())
            if removed or placement is not None:
                self.shard_store(
                    name, table.take(keep), placement=placement, replace=True
                )
            return removed

    def shard_migrate_abort(self, name: str) -> bool:
        """Drop the staging relation, if any (rebalance rolled back)."""
        staging = self._staging_name(name)
        with self._lock.write_locked():
            if staging not in self.catalog:
                return False
            self.drop_table(staging)
            return True

    # -- query processing --------------------------------------------------------

    def execute(self, query, session=None) -> Table:
        """Run a (rewritten) query.  The SP never sees keys or plaintext.

        Read-only: takes the shared side of the execution lock, so
        statements from different sessions run concurrently against the
        current snapshot epoch.  A session with an open transaction
        reads through its write-set overlay (read-your-writes); every
        other session sees only committed state.
        """
        self._note_session(session, "reads")
        with self._read_side():
            if self._instrument:
                sql = query if isinstance(query, str) else query.to_sql()
                self.transcript.queries.append(sql)
            txn = self.txns.get(session)
            engine = self.engine if txn is None else txn.engine
            result = engine.execute(query)
            if self._instrument:
                self.transcript.results.append(result)
            return result

    def execute_dml(self, statement, session=None) -> int:
        """Run a (rewritten) INSERT/UPDATE/DELETE; returns affected rows.

        Autocommit statements take the exclusive side of the execution
        lock, apply, and bump the snapshot epoch -- the bump happens
        only after a *successful* apply, so a failing statement leaves
        open pipelined result sets valid.  Inside a transaction the
        statement lands in the session's private write set under the
        *shared* lock side: an in-flight writer never blocks readers
        (or other writers) on other sessions.
        """
        self._note_session(session, "writes")
        sql = None
        if self._instrument:
            sql = statement if isinstance(statement, str) else statement.to_sql()
        if isinstance(statement, str):
            from repro.sql.parser import parse_statement

            statement = parse_statement(statement)
        with self._read_side():
            txn = self.txns.get(session)
            if txn is not None:
                if self._instrument:
                    self.transcript.queries.append(sql)
                return txn.apply(statement)
        with self._lock.write_locked():
            txn = self.txns.get(session)  # re-check: BEGIN may have raced
            if txn is not None:
                if self._instrument:
                    self.transcript.queries.append(sql)
                return txn.apply(statement)
            if self._instrument:
                self.transcript.queries.append(sql)
            self.txns.check_indoubt(statement.table)
            affected = self._autocommit_dml(statement)
            self._bump_epoch()
            return affected

    def _autocommit_dml(self, statement) -> int:
        """Apply one autocommit statement and record its write-log entry.

        The write log is what lets an open transaction detect that a
        plain (non-transactional) writer touched its rows: autocommit
        UPDATE/DELETE log the affected row-id keys, INSERT logs an empty
        entry (fresh rows conflict with nobody), and tables without row
        identity log a wholesale entry that conflicts with everything.
        """
        from repro.core.encryptor import ROWID_COLUMN
        from repro.engine.dml import execute_dml as run_dml

        if not self.txns.any_active:
            # common non-transactional path: nobody is validating, so
            # skip the bookkeeping entirely
            return self.engine.execute_dml(statement)
        name = statement.table.lower()
        table = self.catalog.get(name) if name in self.catalog else None
        keyed = (
            table is not None and ROWID_COLUMN in table.schema.names
        )
        pre_cells = None
        if keyed and not isinstance(statement, ast.Insert):
            pre_cells = list(table.column(ROWID_COLUMN))
        indices: list[int] = []
        affected = run_dml(self.engine, statement, affected_indices=indices)
        keys: Optional[frozenset] = None
        if keyed:
            if isinstance(statement, ast.Insert):
                keys = frozenset()
            else:
                touched = {_row_key(pre_cells[i]) for i in indices}
                keys = None if None in touched else frozenset(touched)
        self.txns.note_autocommit(name, keys)
        return affected

    # -- prepared statements / streaming results ------------------------------
    #
    # The session layer (repro.api) prepares a rewritten query once and
    # executes it many times with bound parameters; results stay at the SP
    # and stream back in fetch-sized chunks so the proxy only decrypts what
    # the application actually reads.  The same four entry points back the
    # networked deployment's PREPARE / EXECUTE_PREPARED / FETCH / CLOSE ops.

    def prepare_query(self, query, session=None) -> int:
        """Register a (rewritten) SELECT; returns a statement handle."""
        if isinstance(query, str):
            from repro.sql.parser import parse

            query = parse(query)
        if not isinstance(query, ast.Select):
            raise ValueError("prepare_query expects a SELECT")
        with self._state_lock:
            stmt_id = next(self._handle_ids)
            self._prepared[stmt_id] = query
            return stmt_id

    def execute_prepared(
        self, stmt_id: int, params: Sequence = (), session=None
    ) -> tuple[int, int]:
        """Bind ``params`` and run; returns ``(result_id, num_rows)``.

        The result stays server-side until fetched or closed;
        ``fetch_rows`` streams it out in chunks.  Streamable queries
        (single-table scan/filter/project shapes, see
        :meth:`~repro.engine.executor.Engine.execute_iter`) are *pipelined*:
        rows are produced only as they are fetched, so ``num_rows`` comes
        back as ``-1`` (unknown until the scan is drained).  Everything
        else -- and every instrumented server, whose transcript is defined
        over whole results -- materializes as before.
        """
        from repro.sql.params import bind_parameters

        with self._state_lock:
            try:
                query = self._prepared[stmt_id]
            except KeyError:
                raise KeyError(f"unknown prepared statement {stmt_id}") from None
        bound = bind_parameters(query, params)
        if not self._instrument:
            txn = self.txns.get(session)
            engine = self.engine if txn is None else txn.engine
            execute_iter = getattr(engine, "execute_iter", None)
            if execute_iter is not None:
                # open the pipeline under the read side: the snapshot of
                # the column lists must not interleave with a writer, and
                # the epoch it is tagged with must match that snapshot
                with self._read_side():
                    pipeline = execute_iter(bound)
                    if pipeline is not None:
                        self._note_session(session, "reads")
                        names, rows = pipeline
                        source = bound.from_clause.name.lower()
                        entry = _StreamingResult(
                            names, rows, source=source,
                            version=self._table_version(source),
                        )
                        with self._state_lock:
                            result_id = next(self._handle_ids)
                            self._results[result_id] = entry
                        return result_id, -1
        # the session must survive to ``execute``: it selects the
        # transaction overlay engine, not just the stats bucket
        result = self.execute(bound, session=session)
        with self._state_lock:
            result_id = next(self._handle_ids)
            self._results[result_id] = _MaterializedResult(result)
        return result_id, result.num_rows

    def fetch_rows(self, result_id: int, count: Optional[int] = None) -> Table:
        """Next chunk of an open result (all remaining when ``count`` is None).

        Pipelined results evaluate rows *here*, under the read side of the
        execution lock, against the snapshot taken at execute time.
        Ordinary DML keeps that snapshot valid (the column lists were
        copied); a rollback restore or a drop/re-create of the source
        table does not, and such a fetch raises
        :class:`StaleSnapshotError` instead of mixing epochs.
        Materialized results were computed atomically and fetch lock-free.
        """
        with self._state_lock:
            try:
                entry = self._results[result_id]
            except KeyError:
                raise KeyError(f"unknown result set {result_id}") from None
        if isinstance(entry, _StreamingResult):
            with self._read_side():
                if entry.version != self._table_version(entry.source):
                    raise StaleSnapshotError(
                        f"pipelined result {result_id} over {entry.source!r} "
                        "was invalidated by a rollback or table re-creation; "
                        "re-execute the statement"
                    )
                return entry.fetch(count)
        return entry.fetch(count)

    def close_result(self, result_id: int) -> None:
        with self._state_lock:
            self._results.pop(result_id, None)

    def close_prepared(self, stmt_id: int) -> None:
        with self._state_lock:
            self._prepared.pop(stmt_id, None)

    # -- transactions ---------------------------------------------------------
    #
    # Per-session MVCC transactions (see repro.core.txn): BEGIN opens a
    # private write set for the session, statements apply to it under the
    # shared lock side, readers on other sessions keep seeing committed
    # state, and COMMIT validates first-updater-wins before folding the
    # delta into the catalog.  ``session=None`` is the legacy anonymous
    # transaction, which still claims the whole server.

    def begin(self, session=None) -> None:
        with self._lock.write_locked():
            self.txns.begin(session)

    def commit(self, session=None) -> None:
        with self._lock.write_locked():
            self.txns.commit(session)

    def rollback(self, session=None) -> None:
        with self._lock.write_locked():
            self.txns.rollback(session)

    @property
    def in_transaction(self) -> bool:
        return self.txns.any_active

    def _log_commit(self, txn) -> None:
        """Durability hook: called with the write lock held, after a
        transaction's delta was folded into the catalog.  The durable
        subclass writes the transaction's redo log to the WAL here."""

    # -- cluster atomic commit (TXN_* wire ops; see repro.cluster.txn) --------
    #
    # Two-phase commit building blocks.  Prepare validates the session's
    # write set and stages its delta in hidden catalog relations under a
    # coordinator-chosen token; finalize applies a staged delta
    # idempotently; discard drops it.  Either side can be re-driven
    # after a crash, which is what makes the coordinator's commit-record
    # recovery (roll forward or discard) safe.

    def txn_prepare(self, token: str, session=None) -> dict:
        with self._lock.write_locked():
            return self.txns.prepare(session, token)

    def txn_finalize(self, token: str) -> int:
        with self._lock.write_locked():
            return self.txns.finalize(token)

    def txn_discard(self, token=None) -> int:
        with self._lock.write_locked():
            return self.txns.discard(token)

    # -- attacker surface ------------------------------------------------------------

    def memory_dump(self) -> dict:
        """Everything currently observable at the SP.

        ``disk``: stored relations (DB knowledge).  ``memory``: transient
        values observed during computation (QR knowledge) -- queries,
        results and sampled UDF traffic when instrumented.
        """
        return {
            "disk": {
                name: self.catalog.get(name) for name in self.catalog.names()
            },
            "memory": {
                "queries": list(self.transcript.queries),
                "results": list(self.transcript.results),
                "udf_values": list(self.transcript.udf_values),
            },
        }

    def _wrap_udfs(self) -> None:
        for name in list(SCALAR_UDFS):
            original = self.udfs.scalar(name)

            def wrapped(*args, _original=original, _name=name):
                result = _original(*args)
                if len(self.transcript.udf_values) < self._udf_sample_limit:
                    self.transcript.udf_values.append(
                        (_name, args, result)
                    )
                return result

            self.udfs.register_scalar(name, wrapped, replace=True)

            # Instrumented servers disable the batch path above, but the
            # registry is shared -- any engine built on it later must not
            # bypass the wrapper through a batch registration, so route
            # batches through the wrapped scalar row by row.
            if self.udfs.has_batch(name):

                def batch_wrapped(num_rows, *args, _scalar=wrapped):
                    return [
                        _scalar(*row) for row in rows_from_args(num_rows, args)
                    ]

                self.udfs.register_batch(name, batch_wrapped, replace=True)
