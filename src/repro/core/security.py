"""Threat-model harness (paper Section 2.3 and demo step 3).

Simulates the three attacker knowledge levels the paper defines and checks
SDB's claims against them:

* **DB knowledge** -- the attacker reads the SP's disk: every stored share.
  :func:`scan_for_plaintext` confirms sensitive plaintexts never appear;
  :func:`share_uniformity` quantifies that shares look like uniform ring
  elements.
* **CPA knowledge** -- the attacker inserts chosen plaintexts and watches
  the new ciphertexts.  :class:`CPAAttacker` mounts the matching attack the
  scheme must (and does) resist: because every row gets a fresh random row
  id, equal plaintexts do not produce matching shares.
* **QR knowledge** -- the attacker observes rewritten queries, UDF traffic
  and intermediate results.  :class:`QRAttacker` extracts exactly the
  *declared* leakage (comparison signs, token equality patterns) and
  verifies the underlying values remain hidden.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.server import SDBServer
from repro.crypto.sies import SIESCiphertext
from repro.engine.schema import DataType
from repro.engine.table import Table


#: The scheme's *declared* leakage surface, in one auditable place.  Every
#: entry is inherent to the design (and therefore reported to the data
#: owner), not an implementation defect; the audit functions below quantify
#: each of them against a live deployment.
DECLARED_LEAKAGE = (
    "zero-values: the encryption of 0 is 0 under every item key, so an SP "
    "observer learns which sensitive cells are exactly zero "
    "(see zero_value_cells)",
    "comparison-signs: masked comparison UDFs reveal the sign bit of each "
    "comparison, by construction (see QRAttacker.DECLARED_LEAKAGE_UDFS)",
    "shard-routing: in a cluster deployment, the PRF bucket of each row's "
    "shard-key value is visible as its shard assignment -- the SPs learn "
    "the shard-key column name, co-residency of equal shard keys and "
    "per-shard cardinalities, never the key values or the routing PRF key "
    "(see shard_routing_leakage)",
    "routing-residues: shard slices store each row's routing residue "
    "(bucket mod 27720, the hidden __bucket column) so elastic resharding "
    "can select movers shard-side -- this refines per-shard co-residency "
    "into residue-class co-residency, still never the shard-key values or "
    "the PRF key (see repro.cluster.router.ROUTING_SPACE)",
    "rebalance: an online topology change reveals the shard-count change "
    "and the bucket->shard reassignment cardinalities (how many rows each "
    "shard handed each other shard, per table); migrated rows are re-keyed "
    "in flight, so the SPs cannot link a moved ciphertext to its source "
    "(see rebalance_leakage and RebalanceReport.leakage)",
    "prepared-statements: cached rewrite plans reuse their rewrite-time "
    "masks/tokens across executions (declared per-plan as 'prepared:')",
    "replica-placement: with replicas=N every member of a shard's replica "
    "group stores the identical encrypted slice, so each replica SP "
    "observes everything its primary observes (placement, cardinalities, "
    "residue co-residency) -- replication multiplies observers, not "
    "leakage classes; per-shard weights skew cardinalities visibly "
    "(see replication_leakage)",
    "replica-health: failure detection pings and health probes reveal "
    "liveness and probe timing of every member to the coordinator's "
    "network path; a promotion reveals which member died and which "
    "replica took over, and is persisted in the __cluster_replicas__ "
    "record on the primary shard (see FailoverManager.events and the "
    "'cluster: failover:' entries on QueryReport.leakage)",
    "replica-sync: a joining replica's catch-up streams every table's "
    "slice through the coordinator (windowed shard dumps), revealing to "
    "the new SP the same slice contents plus the copy-pass timing/row "
    "counts; throttled passes additionally reveal the configured rate cap "
    "(see ShardGroup.add_replica)",
    "transactions: a cluster COMMIT stages each shard's write set as "
    "hidden __txnstage__ tables before the commit record lands, so every "
    "shard SP learns which of its tables the transaction wrote and the "
    "per-table write-set cardinalities (inserted/updated/deleted row "
    "counts), plus commit timing relative to other sessions; staged rows "
    "are ordinary encrypted rows, so values stay hidden (see "
    "Coordinator.last_txn_commit['cardinalities'])",
)


@dataclass(frozen=True)
class PlaintextHit:
    table: str
    column: str
    row: int
    value: object


def iter_stored_shares(server):
    """Yield (table, column, row, share) for every SHARE-typed cell.

    ``server`` is a single :class:`SDBServer` or a cluster coordinator
    (anything with a ``shards`` list of servers).  In the cluster case the
    scan covers every shard's full catalog -- including hidden relations
    such as in-flight ``__txnstage__*`` staging tables -- and table names
    are prefixed ``shard<i>:`` so a hit names the observing SP.
    """
    shards = getattr(server, "shards", None)
    if shards is not None:
        for index, shard in enumerate(shards):
            for name, column, row, value in iter_stored_shares(shard):
                yield f"shard{index}:{name}", column, row, value
        return
    for name in server.catalog.names():
        table = server.catalog.get(name)
        for spec in table.schema.columns:
            if spec.dtype is not DataType.SHARE:
                continue
            for i, value in enumerate(table.column(spec.name)):
                yield name, spec.name, i, value


def scan_for_plaintext(
    server, plaintexts: Iterable, include_zero: bool = False
) -> list[PlaintextHit]:
    """DB-knowledge check: do any sensitive plaintexts appear on disk?

    ``plaintexts`` are the ring-encoded sensitive values the DO uploaded.
    A correct deployment returns an empty list (up to the negligible chance
    of a share colliding with a value).  Accepts a single server or a
    cluster coordinator (see :func:`iter_stored_shares`).

    **Zero is excluded by default**: multiplicative secret sharing maps 0
    to 0 (``ve = 0 * vk^-1 = 0``, Definition 2), so zero-ness of a cell is
    visible at the SP by construction.  This is an inherent, *declared*
    property of the paper's scheme, not an implementation defect; see
    :func:`zero_value_cells` for quantifying it.  Pass ``include_zero=True``
    to surface those cells as hits anyway.
    """
    needles = set(plaintexts)
    if not include_zero:
        needles.discard(0)
    hits = []
    for table, column, row, share in iter_stored_shares(server):
        if share in needles and isinstance(share, int):
            hits.append(PlaintextHit(table=table, column=column, row=row, value=share))
    return hits


def zero_value_cells(server) -> list[PlaintextHit]:
    """Stored shares equal to zero: the scheme's declared zero-leakage.

    An SP observer learns *which sensitive cells are exactly zero* (and
    nothing about any non-zero magnitude), because the encryption of 0 is 0
    under every item key.  Accepts a single server or a cluster coordinator
    (see :func:`iter_stored_shares`).
    """
    return [
        PlaintextHit(table=table, column=column, row=row, value=0)
        for table, column, row, share in iter_stored_shares(server)
        if share == 0 and column != "__rowid"
    ]


@dataclass(frozen=True)
class UniformityReport:
    """First-order uniformity statistics of stored shares over Z_n."""

    count: int
    mean_fraction: float      # mean(share / n); uniform -> 0.5
    top_bit_fraction: float   # fraction with top bit set; uniform -> ~0.5
    distinct_fraction: float  # distinct / count; uniform -> ~1.0

    def looks_uniform(self, tolerance: float = 0.05) -> bool:
        return (
            abs(self.mean_fraction - 0.5) < tolerance
            and abs(self.top_bit_fraction - 0.5) < tolerance * 2
            and self.distinct_fraction > 0.9
        )


def share_uniformity(server: SDBServer, n: int) -> UniformityReport:
    shares = [
        share
        for _, column, _, share in iter_stored_shares(server)
        if isinstance(share, int) and column != "__rowid"
    ]
    if not shares:
        return UniformityReport(0, 0.5, 0.5, 1.0)
    mean_fraction = sum(s / n for s in shares) / len(shares)
    top = sum(1 for s in shares if s >= n // 2) / len(shares)
    distinct = len(set(shares)) / len(shares)
    return UniformityReport(
        count=len(shares),
        mean_fraction=mean_fraction,
        top_bit_fraction=top,
        distinct_fraction=distinct,
    )


def shard_routing_leakage(coordinator) -> list[str]:
    """Quantify the declared shard-routing leakage of a cluster.

    For every sharded table, report exactly what the shard SPs jointly
    observe from placement: the shard-key *column name* (shipped in the
    SHARD_STORE placement metadata so a restarted/reattached coordinator
    can rebuild routing -- and visible in the stored schema anyway, like
    every column name), per-shard cardinalities, and the co-residency of
    rows with equal shard-key values.  What the SPs never see: the PRF
    routing key and the shard-key *values* behind the buckets.  The
    returned entries mirror the style of per-query leakage declarations.
    """
    entries = []
    statuses = coordinator.shard_status()
    topology = getattr(coordinator, "topology", None)
    for name, placement in sorted(coordinator.placements().items()):
        if not placement.sharded:
            continue
        counts = [status["tables"].get(name, 0) for status in statuses]
        suffix = ""
        if topology is not None:
            suffix = (
                f"; topology epoch {topology.epoch} "
                f"({topology.shard_count} shard(s)"
                + (
                    " -- every epoch bump revealed a bucket->shard "
                    "reassignment)"
                    if topology.epoch
                    else ")"
                )
            )
        entries.append(
            f"shard-routing: {name!r} placed by PRF bucket of "
            f"{placement.shard_column!r} (column name visible to the SPs); "
            f"per-shard cardinalities visible to the SPs: {counts}{suffix}"
        )
    return entries


def replication_leakage(coordinator) -> list[str]:
    """Quantify the declared replication leakage of a cluster.

    For every replica group, report what replication itself discloses:
    how many SPs hold each shard's slice (each replica sees exactly what
    its primary sees -- more observers, same leakage classes), the
    current member health states, and every recorded failover event
    (which member died, who was promoted, under which generation).  The
    entries mirror the style of per-query leakage declarations.
    """
    entries = []
    status_fn = getattr(coordinator, "replica_status", None)
    if not callable(status_fn):
        return entries
    for status in status_fn():
        members = status.get("members", ())
        if len(members) <= 1:
            continue
        states = ", ".join(
            f"replica{m['ordinal']}={m['state']}" for m in members
        )
        entries.append(
            f"replica-placement: shard {status['group']} slice held by "
            f"{len(members)} SP(s) (primary ordinal "
            f"{status['primary_ordinal']}); health visible to the "
            f"coordinator: {states}"
        )
    failover = getattr(coordinator, "failover", None)
    for event in getattr(failover, "events", ()) or ():
        entries.append(f"replica-health: failover event observed: {event}")
    weights = tuple(getattr(getattr(coordinator, "topology", None), "weights", ()) or ())
    if weights:
        entries.append(
            f"replica-placement: per-shard capacity weights {weights} "
            "visible as skewed per-shard cardinalities"
        )
    return entries


def rebalance_leakage(plan, moves: dict) -> list:
    """Quantify the declared leakage of one elastic rebalance.

    Thin re-export of :func:`repro.cluster.rebalance.rebalance_leakage`
    so the security audit surface stays in one module: the SPs jointly
    learn the shard-count change and per-table reassignment cardinalities
    -- never which shard-key values sat behind the moved buckets, and
    (because movers are re-keyed in flight) not even which destination
    ciphertext corresponds to which source ciphertext.
    """
    from repro.cluster.rebalance import rebalance_leakage as _impl

    return list(_impl(plan, moves))


class CPAAttacker:
    """Chosen-plaintext attack: insert known values, try to match rows.

    The attacker controls plaintexts inserted through the DO (e.g. opening
    bank accounts with chosen balances, Section 2.3) and then reads the SP
    disk.  The attack: for each chosen plaintext, find stored shares equal
    to the share its insertion produced, hoping to identify other rows with
    the same value.  Fresh random row ids make item keys row-unique, so
    matches never exceed the attacker's own rows.
    """

    def __init__(self, server: SDBServer):
        self._server = server
        self._before: dict = {}

    def snapshot(self) -> None:
        self._before = {
            name: self._server.catalog.get(name).num_rows
            for name in self._server.catalog.names()
        }

    def observe_new_shares(self, table: str, column: str) -> list:
        """Shares of rows inserted after :meth:`snapshot` (CPA knowledge)."""
        stored = self._server.catalog.get(table)
        start = self._before.get(table, 0)
        return stored.column(column)[start:]

    def match_rows(self, table: str, column: str, chosen_shares: Iterable) -> int:
        """Count *pre-existing* rows whose share equals a chosen one."""
        stored = self._server.catalog.get(table)
        start = self._before.get(table, 0)
        old = stored.column(column)[:start]
        chosen = set(chosen_shares)
        return sum(1 for share in old if share in chosen)


@dataclass
class QRObservation:
    """What a wire/memory tap learns from one query execution."""

    rewritten_sql: str
    comparison_signs: list = field(default_factory=list)
    token_matches: int = 0
    token_values_seen: int = 0


class QRAttacker:
    """Query-result knowledge: harvest what the transcript actually leaks."""

    def __init__(self, server: SDBServer):
        if not server.transcript.queries and not server._instrument:
            raise ValueError("server must be instrumented for QR analysis")
        self._server = server

    def observations(self) -> list[QRObservation]:
        out = []
        transcript = self._server.transcript
        signs_by_query: list = []
        for sql in transcript.queries:
            out.append(QRObservation(rewritten_sql=sql))
        signs = [
            result
            for name, _, result in transcript.udf_values
            if name == "sdb_sign"
        ]
        if out:
            out[-1].comparison_signs = signs
        return out

    #: UDFs whose *outputs* are declared leakage (masked comparison signs);
    #: their results carrying small integers is by design, not recovery.
    DECLARED_LEAKAGE_UDFS = frozenset({"sdb_sign"})

    def recovered_plaintexts(self, known_ring_values: Iterable) -> int:
        """How many sensitive ring values appear in UDF traffic *beyond
        what the attacker already knows*.

        For a sound deployment this is 0: every UDF input/output is either
        a share, a masked value, or public material.  Three exclusions keep
        the check honest rather than coincidence-driven:

        * ring value 0 (shares of 0 *are* 0 under multiplicative sharing,
          same as :func:`scan_for_plaintext`);
        * integers that appear verbatim in the rewritten queries -- a QR
          attacker reads the query text, so re-seeing a query constant in a
          UDF argument reveals nothing new (e.g. rescale factors like 100
          colliding with a small sensitive domain);
        * results of declared-leakage UDFs (comparison signs in {-1,0,1}).
        """
        known = set(known_ring_values)
        known.discard(0)
        known -= self._public_query_constants()
        seen = 0
        for name, args, result in self._server.transcript.udf_values:
            candidates = list(args)
            if name not in self.DECLARED_LEAKAGE_UDFS:
                candidates.append(result)
            for value in candidates:
                if isinstance(value, int) and value in known:
                    seen += 1
        return seen

    def _public_query_constants(self) -> set:
        """Every integer literal visible in the submitted query texts."""
        import re

        public: set = set()
        for sql in self._server.transcript.queries:
            public.update(int(m) for m in re.findall(r"\d+", sql))
        return public
