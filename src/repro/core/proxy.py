"""The SDB proxy at the data owner (paper Figure 2).

Responsibilities, verbatim from Section 2.2:

* storing column keys for sensitive data in its key store;
* accepting SQL queries from the application;
* rewriting operators on sensitive columns to UDFs and submitting the
  rewritten queries to the SP;
* receiving encrypted results and decrypting them with the column keys;
* sending decrypted results back to the application.

The proxy also measures the client/server cost breakdown the demo shows in
step 2 (parse + rewrite + decrypt vs. server execution).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from repro.core.channel import Channel
from repro.core.decryptor import Decryptor
from repro.core.encryptor import AUX_COLUMN, ROWID_COLUMN, encrypt_rows, encrypt_table
from repro.core.keystore import KeyStore
from repro.core.meta import ValueType
from repro.core.protocols import ProtocolPolicy
from repro.core.rewriter import RewriteError, Rewriter
from repro.core.server import SDBServer
from repro.crypto.keys import generate_system_keys
from repro.crypto.sies import SIESKey
from repro.engine.expressions import Evaluator, RowScope
from repro.engine.table import Table
from repro.sql import ast
from repro.sql.parser import parse


@dataclass(frozen=True)
class CostBreakdown:
    """Per-query wall-clock split (demo step 2)."""

    parse_s: float
    rewrite_s: float
    server_s: float
    decrypt_s: float

    @property
    def client_s(self) -> float:
        return self.parse_s + self.rewrite_s + self.decrypt_s

    @property
    def total_s(self) -> float:
        return self.client_s + self.server_s

    @property
    def client_fraction(self) -> float:
        total = self.total_s
        return self.client_s / total if total else 0.0


@dataclass(frozen=True)
class QueryResult:
    """A decrypted result plus everything the demo UI displays."""

    table: Table
    rewritten_sql: str
    cost: CostBreakdown
    leakage: tuple[str, ...]
    notes: tuple[str, ...]


@dataclass(frozen=True)
class DMLResult:
    """Outcome of an INSERT/UPDATE/DELETE issued through the proxy."""

    affected: int
    rewritten_sql: str
    cost: CostBreakdown
    leakage: tuple[str, ...]
    notes: tuple[str, ...]


class SDBProxy:
    """The data owner's gateway to the (untrusted) service provider."""

    def __init__(
        self,
        server: SDBServer,
        modulus_bits: int = 256,
        value_bits: int = 64,
        policy: Optional[ProtocolPolicy] = None,
        rng=None,
    ):
        keys = generate_system_keys(
            modulus_bits=modulus_bits, value_bits=value_bits, rng=rng
        )
        sies_key = SIESKey.generate(keys.n, rng=rng)
        self.store = KeyStore(
            keys,
            sies_key,
            routing_key=rng.randbytes(32) if rng is not None else None,
        )
        self.policy = policy or ProtocolPolicy()
        self.rewriter = Rewriter(self.store, policy=self.policy, rng=rng)
        self.server = server
        self.channel = Channel()
        self._decryptor = Decryptor(self.store)
        self._rng = rng
        self._session = None  # lazily-created default repro.api Connection
        # concurrent sessions share this proxy: serialize the mutable
        # bookkeeping (key-store row counts, transaction deltas) that
        # DML statements update outside the server's own locking
        self._meta_lock = threading.RLock()
        #: per-session num_rows deltas of open transactions: session key ->
        #: {table: net inserted-minus-deleted rows}; reverted on rollback
        #: or commit conflict, dropped on commit
        self._txn_deltas: dict = {}
        # key-epoch lock: a SELECT's cached plan embeds the column keys it
        # was rewritten under, so plan validation + server execution must
        # not interleave with a key rotation re-keying the stored shares.
        # Readers-writer keeps PR 4's read concurrency: SELECT executions
        # share, rotations (rare, administrative or rebalance-driven) are
        # exclusive.  Lock order where both are held: _key_lock, then
        # _meta_lock.
        from repro.core.sync import ReadWriteLock

        self._key_lock = ReadWriteLock()

    def reseed(self, rng) -> None:
        """Swap the randomness used for *future* encryptions.

        Reattaching clients derive identical keys from identical seeds,
        which also leaves their encryption streams in lock-step: two such
        clients would mint the same hidden ``__rowid`` for their i-th
        inserted rows, and row identity must be unique cluster-wide
        (colliding ids make a commit upsert overwrite a foreign row).
        After attaching, every client that intends to *write* must
        diverge its stream with a client-unique rng.  Keys are untouched:
        everything already uploaded still decrypts.
        """
        self._rng = rng
        self.rewriter.rng = rng

    # -- uploads (demo step 1) ----------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[tuple[str, ValueType]],
        rows: Iterable[Sequence],
        sensitive: Iterable[str] = (),
        rng=None,
        replace: bool = False,
        shard_by: Optional[str] = None,
        colocate: Optional[str] = None,
    ) -> None:
        """Encrypt and upload a table.

        ``shard_by`` hash-partitions the table across a cluster
        (:class:`~repro.cluster.Coordinator` server): each row's shard is
        a keyed PRF of its ``shard_by`` plaintext, computed *here* with
        the key store's routing key, so no service provider ever sees the
        key value -- only which bucket the row landed in.

        ``colocate`` names a colocation group: tables sharded into the
        same group route equal shard-key values to the same shard, which
        lets a join on those keys run entirely shard-local (declared
        leakage: cross-table co-residency within the group).
        """
        if colocate is not None and shard_by is None:
            raise RewriteError("colocate requires shard_by")
        if shard_by is not None:
            # function-local: core must stay importable without the
            # cluster package (which itself builds on repro.core.server)
            from repro.cluster.router import shard_bucket

            if not hasattr(self.server, "store_sharded"):
                raise RewriteError(
                    "shard_by requires a cluster coordinator server "
                    "(see repro.cluster)"
                )
            names = [c for c, _ in columns]
            if shard_by not in names:
                raise RewriteError(
                    f"shard column {shard_by!r} is not in the schema"
                )
            rows = [tuple(row) for row in rows]
            shard_index = names.index(shard_by)
            buckets = [
                shard_bucket(self.store.routing_key, name, shard_by,
                             row[shard_index], group=colocate)
                for row in rows
            ]
        meta, encrypted = encrypt_table(
            self.store.keys,
            self.store.sies_key,
            name,
            columns,
            rows,
            sensitive,
            rng=rng,
        )
        self.store.register_table(meta, replace=replace)
        self.channel.record_upload(name, encrypted)
        if shard_by is not None:
            self.server.store_sharded(
                name, encrypted, shard_column=shard_by, buckets=buckets,
                replace=replace, colocate=colocate,
            )
        else:
            self.server.store_table(name, encrypted, replace=replace)

    def drop_table(self, name: str) -> None:
        self.store.drop_table(name)
        self.server.drop_table(name)

    # -- views (proxy-side; the SP only ever sees expanded SQL) --------------

    def create_view(self, name: str, sql: str, replace: bool = False) -> None:
        """Register a named SELECT; queries may use it like a table.

        The definition is validated by rewriting it once (errors surface
        at creation, not first use) and stored in the key store -- the SP
        never learns the view exists.
        """
        from repro.core.rewriter import _reject_unbound_parameters

        parsed = parse(sql)
        # a view definition with ? markers would capture whatever parameters
        # the *outer* query binds -- reject at creation, like any other
        # definition error
        _reject_unbound_parameters(parsed)
        self.store.register_view(name, sql, replace=replace)
        try:
            self.rewriter.rewrite(parsed)
        except Exception:
            self.store.drop_view(name)
            raise

    def drop_view(self, name: str) -> None:
        self.store.drop_view(name)

    # -- queries (demo step 2) ------------------------------------------------

    @property
    def session(self):
        """The proxy's default :class:`repro.api.Connection`.

        ``query``/``execute`` route through it, so even string re-execution
        benefits from the session layer's LRU statement cache; applications
        wanting cursors, prepared statements or streaming fetch should open
        their own connection with :func:`repro.api.connect`.
        """
        if self._session is None:
            from repro.api.connection import Connection

            self._session = Connection(self)
        return self._session

    def query(self, sql: str) -> QueryResult:
        """Parse, rewrite, submit, decrypt -- with a cost breakdown.

        Thin shim over the session layer: the statement cache makes
        repeated strings skip parse + rewrite, and the cost breakdown
        reports only the work this call actually performed.
        """
        return self.session.query(sql)

    # -- DML -----------------------------------------------------------------

    def execute(self, sql: str) -> Union[QueryResult, DMLResult]:
        """Run any supported statement (SELECT, DML, BEGIN/COMMIT/ROLLBACK)."""
        statement = self.session.statement(sql)  # parse once, LRU-cached
        if statement.kind == "select":
            return self.query(sql)
        return self.execute_statement(statement.parsed)

    def execute_statement(
        self, statement: ast.Statement, context=None
    ) -> DMLResult:
        """Run an already-parsed DML or transaction-control statement.

        The session layer's prepared statements bind parameters into their
        parsed AST and enter the pipeline here, skipping re-parse.
        ``context`` is the calling session's
        :class:`~repro.api.backend.ExecutionContext`; its session id tags
        the server submission so a concurrent backend attributes the work
        (and its per-session statistics) correctly.
        """
        session = context.session_id if context is not None else None
        if isinstance(statement, ast.TxnControl):
            return self._execute_txn(statement, session=session)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create(statement)
        if isinstance(statement, ast.AlterCluster):
            return self._execute_alter(statement)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement, session=session)
        if isinstance(statement, ast.Update):
            return self._execute_dml(
                statement, self.rewriter.rewrite_update, session=session
            )
        if isinstance(statement, ast.Delete):
            return self._execute_dml(
                statement, self.rewriter.rewrite_delete, session=session
            )
        raise TypeError(
            f"execute_statement cannot run {type(statement).__name__}; "
            "SELECTs go through query() or a session cursor"
        )

    def _execute_txn(
        self, statement: ast.TxnControl, session=None
    ) -> DMLResult:
        """Transaction control, mirrored in the key store's row counts.

        The SP owns the data-side write sets (per session -- see
        :mod:`repro.core.txn`); the proxy only has to keep its
        ``num_rows`` bookkeeping consistent when a transaction's inserts
        and deletes are rolled back or discarded by a commit conflict.
        """
        from repro.core.txn import TransactionError

        t0 = time.perf_counter()
        with self._meta_lock:
            if statement.kind == "begin":
                self.server.begin(session=session)
                self._txn_deltas[session] = {}
            elif statement.kind == "commit":
                try:
                    self.server.commit(session=session)
                except TransactionError:
                    # conflict (or no transaction): the write set is gone
                    # either way -- undo this session's row-count deltas
                    self._revert_txn_deltas(session)
                    raise
                self._txn_deltas.pop(session, None)
            else:
                self.server.rollback(session=session)
                self._revert_txn_deltas(session)
        t1 = time.perf_counter()
        self.channel.record_query(statement.to_sql())
        return DMLResult(
            affected=0,
            rewritten_sql=statement.to_sql(),
            cost=CostBreakdown(
                parse_s=0.0, rewrite_s=0.0, server_s=t1 - t0, decrypt_s=0.0
            ),
            leakage=(),
            notes=(f"transaction {statement.kind}",),
        )

    def _note_txn_delta(self, session, table: str, delta: int) -> None:
        # caller holds _meta_lock
        entry = self._txn_deltas.get(session)
        if entry is not None and delta:
            key = table.lower()
            entry[key] = entry.get(key, 0) + delta

    def _revert_txn_deltas(self, session) -> None:
        # caller holds _meta_lock
        deltas = self._txn_deltas.pop(session, None)
        if not deltas:
            return
        for name, delta in deltas.items():
            if name in self.store:
                self.store.table(name).num_rows -= delta

    def _execute_create(self, statement: ast.CreateTable) -> DMLResult:
        """DDL: ``CREATE TABLE ... [SHARD BY (col)]`` as an empty upload.

        The statement never reaches the SP as text; the proxy registers
        the schema, draws column keys for ENCRYPTED columns, and uploads
        an empty (sharded, if asked) relation.  INSERTs then encrypt --
        and, for sharded tables, PRF-route -- through the usual pipeline.
        """
        t0 = time.perf_counter()
        builders = {
            "int": lambda arg: ValueType.int_(),
            "decimal": lambda arg: ValueType.decimal(2 if arg is None else arg),
            "date": lambda arg: ValueType.date(),
            "string": lambda arg: ValueType.string(32 if arg is None else arg),
            "bool": lambda arg: ValueType.bool_(),
        }
        columns = [
            (col.name, builders[col.type_name](col.arg))
            for col in statement.columns
        ]
        sensitive = [col.name for col in statement.columns if col.encrypted]
        t1 = time.perf_counter()
        self.create_table(
            statement.table,
            columns,
            rows=[],
            sensitive=sensitive,
            rng=self._rng,
            shard_by=statement.shard_by,
        )
        t2 = time.perf_counter()
        leakage = tuple(
            f"create: schema of insensitive column {col.name!r}"
            for col in statement.columns
            if not col.encrypted
        )
        notes = [
            f"created table {statement.table} "
            f"({len(sensitive)} encrypted column(s))"
        ]
        if statement.shard_by:
            notes.append(
                f"sharded by PRF({statement.shard_by}) across "
                f"{getattr(self.server, 'num_shards', 1)} shard(s)"
            )
        return DMLResult(
            affected=0,
            rewritten_sql="-- CREATE TABLE runs at the proxy (encrypted upload)",
            cost=CostBreakdown(
                parse_s=t1 - t0, rewrite_s=0.0, server_s=t2 - t1, decrypt_s=0.0
            ),
            leakage=leakage,
            notes=tuple(notes),
        )

    # -- elastic resharding ----------------------------------------------------

    def rebalance(self, target_count: int, *, endpoints=None, **options):
        """Grow or shrink the cluster to ``target_count`` shards, online.

        Drives :func:`repro.cluster.rebalance.rebalance_cluster`: migrated
        rows are re-keyed in flight (fresh row ids via the key-update
        protocol), the commit record makes the change crash-safe, and by
        default every sensitive column of each migrated table is rotated
        to fresh keys afterwards so old-topology ciphertexts are rejected.
        Returns the :class:`~repro.cluster.rebalance.RebalanceReport`.
        """
        # function-local: core must stay importable without the cluster
        # package (which itself builds on repro.core.server)
        from repro.cluster.rebalance import rebalance_cluster

        return rebalance_cluster(
            self, target_count, endpoints=endpoints, **options
        )

    def _execute_alter(self, statement: ast.AlterCluster) -> DMLResult:
        """``ALTER CLUSTER ADD SHARD ['host:port']`` / ``REMOVE SHARD``.

        Like CREATE TABLE, cluster DDL never reaches a service provider as
        text: the proxy resolves it into a topology change one shard up or
        down and drives the online migration.
        """
        current = getattr(self.server, "num_shards", None)
        if current is None:
            raise RewriteError(
                "ALTER CLUSTER requires a cluster coordinator server "
                "(see repro.cluster)"
            )
        if statement.action == "add":
            target = current + 1
            endpoints = [statement.endpoint] if statement.endpoint else None
        else:
            if current <= 1:
                raise RewriteError(
                    "cannot remove the last shard (it is the primary)"
                )
            target = current - 1
            endpoints = None
        t0 = time.perf_counter()
        report = self.rebalance(target, endpoints=endpoints)
        t1 = time.perf_counter()
        self.channel.record_query(statement.to_sql())
        return DMLResult(
            affected=report.rows_moved,
            rewritten_sql=(
                "-- ALTER CLUSTER runs at the proxy "
                "(online re-keyed bucket migration)"
            ),
            cost=CostBreakdown(
                parse_s=0.0, rewrite_s=0.0, server_s=t1 - t0, decrypt_s=0.0
            ),
            leakage=report.leakage,
            notes=report.notes,
        )

    def _execute_insert(self, statement: ast.Insert, session=None) -> DMLResult:
        """Encrypt the VALUES rows locally and submit an encrypted INSERT.

        Each inserted row gets a fresh random row id, so two inserts of the
        same plaintext produce unrelated shares -- the property that defeats
        the paper's chosen-plaintext (bank-account) attacker.
        """
        t0 = time.perf_counter()
        from repro.core.rewriter import _reject_unbound_parameters

        _reject_unbound_parameters(statement)
        if statement.table not in self.store:
            raise RewriteError(f"table {statement.table!r} is not uploaded")
        meta = self.store.table(statement.table)
        names = list(meta.columns)
        if statement.columns is not None:
            unknown = [c for c in statement.columns if c not in meta.columns]
            if unknown:
                raise RewriteError(
                    f"table {statement.table!r} has no columns {unknown}"
                )
            positions = {c: i for i, c in enumerate(statement.columns)}
        else:
            positions = {c: i for i, c in enumerate(names)}

        evaluator = Evaluator(None, RowScope({}))
        plain_rows = []
        for value_row in statement.rows:
            if len(value_row) != len(positions):
                raise RewriteError("INSERT row width mismatch")
            try:
                values = [evaluator.evaluate(v) for v in value_row]
            except Exception as exc:
                raise RewriteError(
                    f"INSERT values must be constant expressions: {exc}"
                ) from exc
            plain_rows.append(
                tuple(
                    values[positions[name]] if name in positions else None
                    for name in names
                )
            )
        t1 = time.perf_counter()
        # encryption through submission holds the proxy meta lock: a
        # concurrent key rotation (administrative or rebalance-driven)
        # must never land between drawing shares under the current column
        # keys and the server applying them -- rows encrypted under a key
        # that was already rotated away would be undecryptable
        with self._meta_lock:
            encrypted = encrypt_rows(
                self.store.keys, self.store.sies_key, meta, plain_rows,
                rng=self._rng,
            )
            rewritten = ast.Insert(
                table=statement.table,
                columns=tuple(names) + (ROWID_COLUMN, AUX_COLUMN),
                rows=tuple(
                    tuple(ast.Literal(cell) for cell in row) for row in encrypted
                ),
            )
            t2 = time.perf_counter()
            self.channel.record_query(rewritten.to_sql())
            shard_leakage = ()
            shard_column = getattr(self.server, "shard_column", None)
            shard_col = (
                shard_column(statement.table) if callable(shard_column) else None
            )
            if shard_col is not None:
                # cluster deployment, sharded table: route each encrypted
                # row by the PRF bucket of its (plaintext) shard-key value
                from repro.cluster.router import shard_bucket

                colocation = getattr(self.server, "shard_colocation", None)
                group = (
                    colocation(statement.table) if callable(colocation)
                    else None
                )
                shard_index = names.index(shard_col)
                buckets = [
                    shard_bucket(self.store.routing_key, statement.table,
                                 shard_col, row[shard_index], group=group)
                    for row in plain_rows
                ]
                affected = self.server.insert_routed(
                    rewritten, buckets, session=session
                )
                shard_leakage = (
                    f"shard: PRF bucket of {shard_col!r} routes each row "
                    "(SP learns the shard, not the value)",
                )
            else:
                affected = self.server.execute_dml(rewritten, session=session)
            t3 = time.perf_counter()
            meta.num_rows += affected
            self._note_txn_delta(session, statement.table, affected)
        insensitive = [
            c.name for c in meta.columns.values() if not c.sensitive
        ]
        leakage = tuple(
            f"insert: plaintext of insensitive column {name!r}"
            for name in insensitive
        ) + (f"insert: row count {affected}",) + shard_leakage
        return DMLResult(
            affected=affected,
            rewritten_sql=rewritten.to_sql(),
            cost=CostBreakdown(
                parse_s=t1 - t0, rewrite_s=t2 - t1, server_s=t3 - t2, decrypt_s=0.0
            ),
            leakage=leakage,
            notes=("values encrypted at the proxy with fresh row ids",),
        )

    def _execute_dml(self, statement, rewrite, session=None) -> DMLResult:
        t0 = time.perf_counter()
        # rewrite + submit under the meta lock: the rewritten statement
        # embeds masks and key-update parameters derived from the current
        # column keys, so a concurrent rotation must not land in between
        with self._meta_lock:
            plan = rewrite(statement)
            t1 = time.perf_counter()
            self.channel.record_query(plan.sql)
            affected = self.server.execute_dml(plan.statement, session=session)
        t2 = time.perf_counter()
        meta = self.store.table(statement.table)
        if isinstance(statement, ast.Delete):
            with self._meta_lock:
                meta.num_rows -= affected
                self._note_txn_delta(session, statement.table, -affected)
        return DMLResult(
            affected=affected,
            rewritten_sql=plan.sql,
            cost=CostBreakdown(
                parse_s=0.0, rewrite_s=t1 - t0, server_s=t2 - t1, decrypt_s=0.0
            ),
            leakage=plan.leakage,
            notes=plan.notes,
        )

    # -- key management -----------------------------------------------------------

    def rotate_column_key(self, table: str, column: str) -> DMLResult:
        """Re-encrypt one sensitive column under a fresh key, SP-side only.

        This is the key-update protocol used as an administrative
        operation: the proxy draws a fresh column key, derives the public
        parameters ``(p, q)`` and submits one UPDATE whose assignment is a
        single ``sdb_keyupdate`` call over the column and its auxiliary
        ``S`` column.  The ciphertexts never leave the SP, no plaintext is
        touched, and a copy of the *old* key (say, from a compromised
        backup of the key store) can no longer decrypt the column.
        """
        from repro.crypto import keyops
        from repro.crypto.keyops import KeyExpr

        meta = self.store.table(table)
        column_meta = meta.column(column)
        if not column_meta.sensitive:
            raise RewriteError(f"column {column!r} is not sensitive")
        new_key = self.store.keys.random_column_key(self._rng)
        params = keyops.key_update_params(
            self.store.keys,
            KeyExpr.from_column_key(column_meta.key, table),
            KeyExpr.from_column_key(new_key, table),
            {table: meta.aux_key},
        )
        return self._apply_rotation(meta, column, column_meta, new_key, params)

    def rotate_aux_key(self, table: str) -> DMLResult:
        """Re-key the auxiliary ``S`` column itself.

        ``S`` (an encryption of 1) is its own key-update helper: the update
        expression references the pre-rotation ``__s`` cells, and SQL UPDATE
        semantics evaluate assignments against the original row.
        """
        from repro.crypto import keyops
        from repro.crypto.keyops import KeyExpr

        meta = self.store.table(table)
        new_key = keyops.aux_column_key(self.store.keys, self._rng)
        params = keyops.key_update_params(
            self.store.keys,
            KeyExpr.from_column_key(meta.aux_key, table),
            KeyExpr.from_column_key(new_key, table),
            {table: meta.aux_key},
        )
        # lock order: key-epoch write, then meta (both re-entrant) -- the
        # SP update and both key swaps form one atomic step
        with self._key_lock.write_locked(), self._meta_lock:
            result = self._apply_rotation(meta, "__s", None, new_key, params)
            meta.aux_key = new_key
        return result

    def _apply_rotation(self, meta, column, column_meta, new_key, params) -> DMLResult:
        import dataclasses

        n = self.store.keys.n
        args = [ast.Column(column), ast.Literal(params.p), ast.Literal(n)]
        for _, q in params.q_by_source:
            args.append(ast.Column("__s"))
            args.append(ast.Literal(q))
        statement = ast.Update(
            table=meta.name,
            assignments=(
                ast.Assignment(
                    column=column,
                    value=ast.FuncCall("sdb_keyupdate", tuple(args)),
                ),
            ),
            where=None,
        )
        t0 = time.perf_counter()
        self.channel.record_query(statement.to_sql())
        # the SP-side update and the key-store swap are one atomic step
        # w.r.t. any statement that uses the current keys: the exclusive
        # key-epoch side fences off in-flight SELECT executions (whose
        # plans embed the retiring keys), the meta lock fences DML
        # encryption/rewriting -- without this, a concurrent INSERT could
        # ship shares drawn under the key being retired, and a concurrent
        # SELECT could decrypt re-keyed shares with its stale plan
        with self._key_lock.write_locked(), self._meta_lock:
            affected = self.server.execute_dml(statement)
            if column_meta is not None:
                meta.columns[column] = dataclasses.replace(
                    column_meta, key=new_key
                )
            # cached rewrite plans embed key-update parameters derived
            # from the old key; force prepared statements to re-rewrite
            self.store.bump_version()
        t1 = time.perf_counter()
        return DMLResult(
            affected=affected,
            rewritten_sql=statement.to_sql(),
            cost=CostBreakdown(
                parse_s=0.0, rewrite_s=0.0, server_s=t1 - t0, decrypt_s=0.0
            ),
            leakage=(),
            notes=(
                f"column {meta.name}.{column} re-keyed at the SP; "
                "old key can no longer decrypt",
            ),
        )

    # -- inspection ---------------------------------------------------------------

    def explain(self, sql: str):
        """Dry-run: the rewritten statement and decryption plan for ``sql``."""
        from repro.core.explain import explain

        return explain(self, sql)

    def plan(self, sql: str):
        """The structured plan tree for ``sql`` (rewrite + routing), unexecuted."""
        from repro.core.explain import plan

        return plan(self, sql)

    # -- key store inspection (demo step 1) --------------------------------------

    def key_store_bytes(self) -> int:
        return self.store.size_bytes()
