"""Per-session MVCC transactions over the snapshot-epoch scheme.

Replaces the server-global single-writer undo slot: every session can
hold its own uncommitted write set at the same time.  The design is
multi-version in the simplest shape that fits the existing engine:

* The committed catalog *is* the only committed version; readers take
  the shared side of the server lock and never block on an open
  transaction (uncommitted work lives entirely outside the catalog).
* A session's transaction keeps a **write set**: a private overlay copy
  of every table it has mutated (copy-on-first-touch), plus the row-id
  key sets the statements touched.  In-transaction statements execute
  against an overlay catalog that shadows the committed one, so a
  session reads its own writes while everyone else reads committed
  state.  Applying a statement only needs the *shared* lock side --
  writers do not block readers either.
* COMMIT validates **first-updater-wins** at row granularity: every
  committed mutation appends a ``(version, touched row keys)`` entry to
  a bounded per-table write log; a committing transaction whose base
  version is stale intersects its updated/deleted keys with everything
  committed since.  A non-empty intersection (or an unkeyable /
  wholesale-replaced table, or a truncated log) raises
  :class:`TransactionConflictError` and discards the transaction.
  Surviving write sets are applied as a *delta* -- overwrite by row-id,
  delete by row-id, append the inserts -- so concurrent inserts into
  the same table all survive.

Row identity is the row-id ciphertext ``(value, nonce)`` pair written by
the encryptor (fresh and unique per inserted row -- the same identity
``shard_migrate_promote`` dedups by).  Tables without a row-id column
fall back to *coarse* conflict detection: any concurrent commit to the
same table conflicts.

Isolation level: **snapshot isolation** (readers see the last committed
state; first-updater-wins write conflicts).  Write-skew anomalies are
possible, as in any SI system; statements inside a transaction evaluate
predicates against the transaction's snapshot plus its own writes.

The cluster tier (``repro.cluster.txn``) builds two-phase commit on the
``txn_prepare`` / ``txn_finalize`` / ``txn_discard`` surface below:
*prepare* validates and stages the delta in hidden catalog relations,
*finalize* applies it idempotently, *discard* drops it -- so a commit
record can re-drive either side after a crash.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional

from repro.engine import Engine, Table
from repro.engine.schema import Schema
from repro.obs.metrics import global_metrics
from repro.sql import ast

#: First-updater-wins validation failures, by conflict kind (the
#: retry-pressure signal the TPC-C style workload watches).
_TXN_CONFLICTS = global_metrics().counter(
    "sdb_txn_conflicts_total",
    "transaction validation conflicts, by kind",
)

#: Hidden catalog prefix for a prepared (staged) cluster transaction:
#: ``__txnstage__<token>__<kind>__<table>`` where ``kind`` is ``u``
#: (upsert rows), ``d`` (deleted row-id cells) or ``f`` (full replace).
TXN_STAGING_PREFIX = "__txnstage__"

#: Committed write-log entries retained per table.  A transaction whose
#: base version fell off the log conservatively conflicts.
WRITE_LOG_LIMIT = 256


class TransactionError(RuntimeError):
    """Base class for transaction failures (a RuntimeError for compat)."""


class TransactionStateError(TransactionError):
    """BEGIN inside a transaction, or COMMIT/ROLLBACK outside one."""


class TransactionConflictError(TransactionError):
    """First-updater-wins validation failed; the transaction was discarded.

    The losing session's write set is dropped entirely -- re-issue the
    transaction to retry.  The session layer maps this onto
    ``repro.api.TransactionConflict`` so clients can catch-and-retry.
    """


def _row_key(cell) -> Optional[tuple]:
    """Row identity of a row-id ciphertext; None when unkeyable."""
    try:
        return (cell.value, cell.nonce)
    except AttributeError:
        return None


class OverlayCatalog:
    """A read view where a transaction's write set shadows committed state."""

    def __init__(self, txn: "SessionTransaction", base):
        self._txn = txn
        self._base = base

    def get(self, name: str) -> Table:
        key = name.lower()
        write = self._txn.writes.get(key)
        if write is not None:
            return write.table
        return self._base.get(key)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._txn.writes or name in self._base

    def names(self):
        seen = list(self._base.names())
        for key in self._txn.writes:
            if key not in seen:
                seen.append(key)
        return seen

    def create(self, *args, **kwargs):
        raise TransactionError("DDL inside a transaction is not supported")

    drop = create


class TableWrite:
    """One table's uncommitted state inside a session transaction."""

    __slots__ = ("name", "base_version", "table", "coarse",
                 "inserted", "updated", "deleted")

    def __init__(self, name: str, base_version: int, table: Table,
                 coarse: bool):
        self.name = name
        self.base_version = base_version
        self.table = table
        #: no usable row identity: conflict at table granularity and
        #: commit by wholesale replace instead of a row delta
        self.coarse = coarse
        self.inserted: set = set()
        self.updated: set = set()
        #: key -> row-id cell (the cell is needed to stage deletions)
        self.deleted: dict = {}

    def escalate(self) -> None:
        self.coarse = True
        self.inserted.clear()
        self.updated.clear()
        self.deleted.clear()


class SessionTransaction:
    """A session's open transaction: overlay engine + write set + redo log."""

    def __init__(self, key, server):
        #: the session id this transaction belongs to (None = anonymous)
        self.key = key
        self._server = server
        self.writes: dict[str, TableWrite] = {}
        #: rewritten DML statements in execution order (WAL commit logging)
        self.redo: list = []
        self.catalog = OverlayCatalog(self, server.catalog)
        self.engine = Engine(
            self.catalog, server.udfs,
            batch_enabled=getattr(server.engine, "batch_enabled", True),
        )

    def apply(self, statement) -> int:
        """Execute one DML statement against the write set (shared lock)."""
        from repro.core.encryptor import ROWID_COLUMN
        from repro.engine import dml as dml_mod

        name = statement.table.lower()
        write = self.writes.get(name)
        if write is None:
            if name not in self._server.catalog:
                # unknown table: let the engine raise its usual DMLError
                return dml_mod.execute_dml(self.engine, statement)
            committed = self._server.catalog.get(name)
            copy = Table(
                committed.schema,
                [list(column) for column in committed.columns],
            )
            coarse = ROWID_COLUMN not in committed.schema.names
            write = TableWrite(
                name,
                base_version=self._server.txns.table_commit_version(name),
                table=copy,
                coarse=coarse,
            )
            self.writes[name] = write

        indices: list[int] = []
        if isinstance(statement, ast.Insert):
            pre_cells = None
        elif write.coarse:
            pre_cells = None
        else:
            pre_cells = list(write.table.column(ROWID_COLUMN))
        affected = dml_mod.execute_dml(
            self.engine, statement, affected_indices=indices
        )
        self.redo.append(statement)
        if write.coarse:
            return affected

        if isinstance(statement, ast.Insert):
            cells = write.table.column(ROWID_COLUMN)
            keys = {_row_key(cells[i]) for i in indices}
            if None in keys:
                write.escalate()
            else:
                write.inserted |= keys
        elif isinstance(statement, ast.Update):
            keys = {_row_key(pre_cells[i]) for i in indices}
            if None in keys:
                write.escalate()
            else:
                write.updated |= keys - write.inserted
        else:  # Delete
            dead = {}
            bad = False
            for i in indices:
                key = _row_key(pre_cells[i])
                if key is None:
                    bad = True
                    break
                dead[key] = pre_cells[i]
            if bad:
                write.escalate()
            else:
                for key, cell in dead.items():
                    if key in write.inserted:
                        write.inserted.discard(key)
                        continue
                    write.updated.discard(key)
                    write.deleted[key] = cell
        return affected


class _Delta:
    """A validated write set reduced to its committed effect."""

    __slots__ = ("write", "upserts", "deleted")

    def __init__(self, write: TableWrite, upserts: Optional[Table],
                 deleted: dict):
        self.write = write
        self.upserts = upserts      # None for coarse (wholesale replace)
        self.deleted = deleted      # key -> row-id cell


def apply_delta(live: Table, upserts: Table, deleted_keys: set) -> None:
    """Apply an upsert/delete delta to a live table, idempotently.

    Rows whose row-id already exists are overwritten in place, missing
    row-ids are appended, deleted keys are dropped.  Re-applying the
    same delta is a no-op, which is what lets a crashed cluster commit
    be re-driven (:mod:`repro.cluster.txn`).
    """
    from repro.core.encryptor import ROWID_COLUMN

    index = {
        _row_key(cell): i
        for i, cell in enumerate(live.column(ROWID_COLUMN))
    }
    names = live.schema.names
    appends = []
    for j, cell in enumerate(upserts.column(ROWID_COLUMN)):
        key = _row_key(cell)
        i = index.get(key)
        row = upserts.row(j)
        if i is None:
            appends.append(row)
        else:
            for column, value in zip(names, row):
                live.set_cell(column, i, value)
    if deleted_keys:
        dead = {index[key] for key in deleted_keys if key in index}
        if dead:
            live.keep_rows(
                [i not in dead for i in range(live.num_rows)]
            )
    if appends:
        live.append_rows(appends)


class TransactionManager:
    """Per-session transactions, commit validation, and 2PC staging.

    All mutating entry points (begin / commit / rollback / prepare /
    finalize / discard, and the autocommit notes) run with the server's
    execution lock held on the *write* side; ``get`` and statement
    application run under either side.  The begin/commit/rollback
    exclusivity is what makes the bookkeeping dicts safe to read from
    concurrent reader threads.
    """

    def __init__(self, server):
        self._server = server
        self._active: dict = {}                 # session key -> txn
        self._versions: dict[str, int] = {}     # table -> commit version
        self._log: dict[str, deque] = {}        # table -> (version, keys)
        self._staged: dict[str, set] = {}       # token -> staged table names
        self._indoubt: dict[str, str] = {}      # table -> preparing token
        # guards session_stats-style micro-state reads from monitoring
        # threads that hold no execution lock (active_sessions below)
        self._mutex = threading.Lock()

    # -- introspection -----------------------------------------------------

    def get(self, session) -> Optional[SessionTransaction]:
        txn = self._active.get(session)
        if txn is None and session is not None:
            # an anonymous (legacy, server-global) transaction claims the
            # whole server: every session reads and writes through it --
            # exactly the pre-session semantics, where BEGIN from the
            # plain proxy surface governed all subsequent statements
            txn = self._active.get(None)
        return txn

    @property
    def any_active(self) -> bool:
        return bool(self._active)

    def active_sessions(self) -> list:
        with self._mutex:
            return list(self._active)

    def table_commit_version(self, name: str) -> int:
        return self._versions.get(name.lower(), 0)

    # -- lifecycle ---------------------------------------------------------

    def begin(self, session) -> SessionTransaction:
        if session is None and self._active:
            # anonymous (legacy, server-global) transactions still claim
            # the whole server: they have no session to scope a write set
            raise TransactionStateError("transaction already in progress")
        if None in self._active:
            # ... and while one is open, no session may start another
            raise TransactionStateError("transaction already in progress")
        if session in self._active:
            raise TransactionStateError("transaction already in progress")
        txn = SessionTransaction(session, self._server)
        with self._mutex:
            self._active[session] = txn
        return txn

    def rollback(self, session) -> SessionTransaction:
        txn = self._require(session)
        self._discard_txn(txn)
        return txn

    def commit(self, session) -> list:
        """Validate and apply; returns the committed table names."""
        txn = self._require(session)
        deltas = self._validate_all(txn)
        for delta in deltas:
            self._apply_committed(delta)
        with self._mutex:
            self._active.pop(txn.key, None)
        if deltas:
            self._server._bump_epoch()
        self._server._log_commit(txn)
        return [delta.write.name for delta in deltas]

    # -- two-phase commit surface (cluster tier) ---------------------------

    def prepare(self, session, token: str) -> dict:
        """Validate and stage this server's delta under ``token``.

        The write set moves from the session into hidden staging
        relations; ``finalize`` (idempotent) applies it, ``discard``
        drops it.  Returns the staged table names and their write-set
        cardinalities (declared transaction-metadata leakage).
        """
        txn = self._require(session)
        deltas = self._validate_all(txn)
        staged: set = set()
        cardinalities: dict[str, int] = {}
        for delta in deltas:
            write = delta.write
            if write.coarse:
                self._server.store_table(
                    _staging_name(token, "f", write.name),
                    write.table, replace=True,
                )
                cardinalities[write.name] = write.table.num_rows
            else:
                rows = 0
                if delta.upserts is not None and delta.upserts.num_rows:
                    self._server.store_table(
                        _staging_name(token, "u", write.name),
                        delta.upserts, replace=True,
                    )
                    rows += delta.upserts.num_rows
                if delta.deleted:
                    self._server.store_table(
                        _staging_name(token, "d", write.name),
                        _deleted_table(write.table, delta.deleted),
                        replace=True,
                    )
                    rows += len(delta.deleted)
                cardinalities[write.name] = rows
            staged.add(write.name)
            self._indoubt[write.name] = token
        with self._mutex:
            self._active.pop(txn.key, None)
        self._staged[token] = staged
        return {"tables": sorted(staged), "cardinalities": cardinalities}

    def finalize(self, token: str) -> int:
        """Apply a staged transaction (idempotent); returns tables applied."""
        from repro.core.encryptor import ROWID_COLUMN

        staged = self._collect_staging(token)
        applied = 0
        for name, parts in sorted(staged.items()):
            if "f" in parts:
                table = self._server.catalog.get(parts["f"])
                self._server.catalog.create(name, table, replace=True)
                self._server._invalidate_snapshots(name)
                self._note_commit(name, None)
            else:
                live = self._server.catalog.get(name)
                upserts = (
                    self._server.catalog.get(parts["u"])
                    if "u" in parts else Table.empty(live.schema)
                )
                deleted_cells = (
                    self._server.catalog.get(parts["d"]).column(ROWID_COLUMN)
                    if "d" in parts else []
                )
                deleted_keys = {_row_key(cell) for cell in deleted_cells}
                touched = {
                    _row_key(cell)
                    for cell in upserts.column(ROWID_COLUMN)
                } | deleted_keys
                apply_delta(live, upserts, deleted_keys)
                self._note_commit(name, frozenset(touched))
            applied += 1
            for staging in parts.values():
                self._server.drop_table(staging)
        self._clear_token(token)
        if applied:
            self._server._bump_epoch()
        return applied

    def discard(self, token: Optional[str] = None) -> int:
        """Drop staged transaction state (idempotent).

        With a token, that transaction's staging; with None, *all* txn
        staging on this server (recovery sweep: anything still staged
        has no commit record, so nobody committed it).
        """
        dropped = 0
        tokens = (
            [token] if token is not None else sorted(self._staging_tokens())
        )
        for tok in tokens:
            staged = self._collect_staging(tok)
            for parts in staged.values():
                for staging in parts.values():
                    self._server.drop_table(staging)
                    dropped += 1
            self._clear_token(tok)
        return dropped

    # -- autocommit bookkeeping --------------------------------------------

    def check_indoubt(self, name: str) -> None:
        """Refuse mutations of a table with a prepared txn staged on it."""
        token = self._indoubt.get(name.lower())
        if token is not None:
            _TXN_CONFLICTS.labels(kind="indoubt").inc()
            raise TransactionConflictError(
                f"table {name!r} has an in-doubt prepared transaction "
                f"({token}); retry after it finalizes or is discarded"
            )

    def note_autocommit(self, name: str, keys: Optional[frozenset]) -> None:
        """Record an autocommit mutation in the table's write log."""
        self._note_commit(name, keys)

    def note_table_replaced(self, name: str) -> None:
        """A wholesale replace (store/drop/append): conflict everything."""
        key = name.lower()
        if key.startswith(TXN_STAGING_PREFIX):
            return
        # only track tables some transaction could be validating against;
        # an unconditional note would grow state for every temp relation
        if key not in self._versions and not self._active:
            return
        self._note_commit(key, None)

    # -- internals ---------------------------------------------------------

    def _require(self, session) -> SessionTransaction:
        txn = self.get(session)  # falls back to an anonymous global txn
        if txn is None:
            raise TransactionStateError("no transaction in progress")
        return txn

    def _discard_txn(self, txn: SessionTransaction) -> None:
        with self._mutex:
            self._active.pop(txn.key, None)
        for name in txn.writes:
            # a pipelined result opened mid-transaction would otherwise
            # serve rows from the discarded write set
            self._server._invalidate_snapshots(name)
        self._server._bump_epoch()

    def _validate_all(self, txn: SessionTransaction) -> list:
        try:
            return [
                self._validate(txn.writes[name])
                for name in sorted(txn.writes)
            ]
        except TransactionError:
            self._discard_txn(txn)
            raise

    def _validate(self, write: TableWrite) -> _Delta:
        from repro.core.encryptor import ROWID_COLUMN

        name = write.name
        self.check_indoubt(name)
        if name not in self._server.catalog:
            _TXN_CONFLICTS.labels(kind="dropped").inc()
            raise TransactionConflictError(
                f"table {name!r} was dropped by a concurrent session"
            )
        current = self._versions.get(name, 0)
        if write.coarse:
            if current != write.base_version:
                _TXN_CONFLICTS.labels(kind="coarse").inc()
                raise TransactionConflictError(
                    f"concurrent commit to {name!r} (no row identity; "
                    "table-granular conflict)"
                )
            return _Delta(write, None, {})
        if current != write.base_version:
            committed = self._committed_keys(
                name, write.base_version, current
            )
            touched = write.updated | set(write.deleted)
            if committed is None or (touched & committed):
                _TXN_CONFLICTS.labels(kind="row").inc()
                raise TransactionConflictError(
                    f"concurrent update to {name!r}: first updater wins; "
                    "re-issue the transaction"
                )
        upsert_keys = write.inserted | write.updated
        if upsert_keys:
            cells = write.table.column(ROWID_COLUMN)
            indices = [
                j for j, cell in enumerate(cells)
                if _row_key(cell) in upsert_keys
            ]
            upserts = write.table.take(indices)
        else:
            upserts = Table.empty(write.table.schema)
        return _Delta(write, upserts, dict(write.deleted))

    def _committed_keys(self, name, base, current) -> Optional[set]:
        entries = self._log.get(name)
        if entries is None:
            return None
        seen: set = set()
        versions = []
        for version, keys in entries:
            if base < version <= current:
                if keys is None:
                    return None  # wholesale replace: unknown touched set
                versions.append(version)
                seen |= keys
        # every commit logs exactly one entry, so coverage of (base,
        # current] must be contiguous; anything missing fell off the
        # bounded log -> conservative conflict
        if len(versions) != current - base:
            return None
        return seen

    def _apply_committed(self, delta: _Delta) -> None:
        write = delta.write
        if write.coarse:
            self._server.catalog.create(
                write.name, write.table, replace=True
            )
            self._server._invalidate_snapshots(write.name)
            self._note_commit(write.name, None)
            return
        live = self._server.catalog.get(write.name)
        apply_delta(live, delta.upserts, set(delta.deleted))
        self._note_commit(
            write.name, frozenset(write.updated | set(delta.deleted))
        )

    def _note_commit(self, name: str, keys: Optional[frozenset]) -> None:
        key = name.lower()
        version = self._versions.get(key, 0) + 1
        self._versions[key] = version
        log = self._log.setdefault(key, deque(maxlen=WRITE_LOG_LIMIT))
        log.append((version, keys))

    def _staging_tokens(self) -> set:
        tokens = set(self._staged)
        for name in self._server.catalog.names():
            if name.startswith(TXN_STAGING_PREFIX):
                rest = name[len(TXN_STAGING_PREFIX):]
                token = rest.split("__", 1)[0]
                tokens.add(token)
        return tokens

    def _collect_staging(self, token: str) -> dict:
        """``{table: {kind: staging_name}}`` for one token, from the catalog.

        Read from the catalog (not in-memory bookkeeping) so a freshly
        restarted server can still finalize or discard what a previous
        incarnation staged.
        """
        prefix = f"{TXN_STAGING_PREFIX}{token}__"
        staged: dict[str, dict] = {}
        for name in list(self._server.catalog.names()):
            if not name.startswith(prefix):
                continue
            kind, base = name[len(prefix):].split("__", 1)
            staged.setdefault(base, {})[kind] = name
        return staged

    def _clear_token(self, token: str) -> None:
        self._staged.pop(token, None)
        for name in [
            n for n, t in self._indoubt.items() if t == token
        ]:
            self._indoubt.pop(name, None)


def _staging_name(token: str, kind: str, table: str) -> str:
    return f"{TXN_STAGING_PREFIX}{token}__{kind}__{table.lower()}"


def _deleted_table(source: Table, deleted: dict) -> Table:
    """A one-column table holding the deleted rows' row-id cells."""
    from repro.core.encryptor import ROWID_COLUMN

    spec = source.schema[ROWID_COLUMN]
    return Table(Schema((spec,)), [list(deleted.values())])
