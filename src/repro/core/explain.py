"""EXPLAIN: what the proxy is about to do, without doing it.

The demo UI (Figure 3) shows the attendee the rewritten query next to the
original.  :func:`explain` packages that view -- rewritten SQL, how each
output column decrypts, declared leakage, rewriting notes -- for the
shell, tests and documentation, with no server round trip.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import Const, PlainSlot, PostOp, ShareSlot
from repro.engine.planner import PlanNode
from repro.sql import ast
from repro.sql.params import num_parameters
from repro.sql.parser import parse_statement


@dataclass(frozen=True)
class ExplainReport:
    """A dry-run description of one statement."""

    kind: str                       # 'select' | 'insert' | 'update' | 'delete'
    original_sql: str
    rewritten_sql: str
    outputs: tuple[str, ...]        # one human-readable line per output
    leakage: tuple[str, ...]
    notes: tuple[str, ...]

    def pretty(self) -> str:
        lines = [f"-- {self.kind.upper()} --"]
        lines.append("rewritten:")
        lines.append(f"  {self.rewritten_sql}")
        if self.outputs:
            lines.append("outputs:")
            lines.extend(f"  {line}" for line in self.outputs)
        lines.append("declared leakage:")
        if self.leakage:
            lines.extend(f"  - {item}" for item in self.leakage)
        else:
            lines.append("  (none)")
        if self.notes:
            lines.append("notes:")
            lines.extend(f"  - {note}" for note in self.notes)
        return "\n".join(lines)


def explain(proxy, sql: str) -> ExplainReport:
    """Rewrite ``sql`` against the proxy's key store; never contacts the SP.

    INSERTs are described rather than rewritten: rewriting one would burn
    fresh row ids for rows that are never stored.
    """
    statement = parse_statement(sql)
    if isinstance(statement, ast.Select):
        plan = proxy.rewriter.rewrite(statement)
        outputs = tuple(
            f"{column.name}: {describe_spec(column.spec)}"
            for column in plan.outputs
        )
        return ExplainReport(
            kind="select",
            original_sql=sql,
            rewritten_sql=plan.sql,
            outputs=outputs,
            leakage=plan.leakage,
            notes=plan.notes,
        )
    if isinstance(statement, ast.Insert):
        meta = proxy.store.table(statement.table)
        sensitive = [c.name for c in meta.columns.values() if c.sensitive]
        return ExplainReport(
            kind="insert",
            original_sql=sql,
            rewritten_sql=(
                f"INSERT INTO {statement.table} (...{len(meta.columns)} columns"
                f" + __rowid + __s) VALUES (<shares>)"
            ),
            outputs=(),
            leakage=tuple(
                f"insert: plaintext of insensitive column {c.name!r}"
                for c in meta.columns.values()
                if not c.sensitive
            ),
            notes=(
                f"sensitive columns encrypted at the proxy: {sensitive}",
                "each row gets a fresh random row id (CPA resistance)",
            ),
        )
    if isinstance(statement, ast.Update):
        plan = proxy.rewriter.rewrite_update(statement)
    else:
        plan = proxy.rewriter.rewrite_delete(statement)
    return ExplainReport(
        kind=type(statement).__name__.lower(),
        original_sql=sql,
        rewritten_sql=plan.sql,
        outputs=(),
        leakage=plan.leakage,
        notes=plan.notes,
    )


def plan(proxy, statement) -> PlanNode:
    """The structured plan tree for a statement, without executing it.

    ``statement`` is SQL text or a parsed AST; an ``EXPLAIN`` wrapper is
    unwrapped.  The tree combines the proxy's rewrite (with its declared
    leakage and notes) and the backend's routing decision -- a cluster
    coordinator contributes its scatter/coshard/gather subtree through
    ``explain_route``; single-SP backends report one execute node.  Plans
    describe operator shapes only: the single place data-derived content
    may appear is an explicitly declared leakage line.
    """
    if isinstance(statement, str):
        statement = parse_statement(statement)
    if isinstance(statement, ast.Explain):
        statement = statement.statement

    if isinstance(statement, ast.Select):
        markers = num_parameters(statement)
        rewritten = proxy.rewriter.rewrite(
            statement, param_types=(None,) * markers
        )
        props = {"outputs": len(rewritten.outputs)}
        if markers:
            props["params"] = markers
        rewrite_node = PlanNode(
            op="rewrite",
            detail="sensitive operations become SDB UDF calls over shares",
            props=props,
            leakage=rewritten.leakage,
            notes=rewritten.notes,
        )
        return PlanNode(
            op="select",
            detail="proxy rewrite, then routed execution",
            children=(rewrite_node, _route_node(proxy, rewritten.query)),
        )

    if isinstance(statement, ast.Insert):
        meta = proxy.store.table(statement.table)
        sensitive = [c.name for c in meta.columns.values() if c.sensitive]
        return PlanNode(
            op="insert",
            detail=f"encrypt at the proxy, route rows into {statement.table}",
            props={"rows": len(statement.rows)},
            leakage=tuple(
                f"insert: plaintext of insensitive column {c.name!r}"
                for c in meta.columns.values()
                if not c.sensitive
            ),
            notes=(
                f"sensitive columns encrypted at the proxy: {sensitive}",
                "each row gets a fresh random row id (CPA resistance)",
            ),
        )

    if isinstance(statement, (ast.Update, ast.Delete)):
        rewrite = (
            proxy.rewriter.rewrite_update
            if isinstance(statement, ast.Update)
            else proxy.rewriter.rewrite_delete
        )
        rewritten = rewrite(statement)
        kind = type(statement).__name__.lower()
        return PlanNode(
            op=kind,
            detail=f"rewritten {kind.upper()} on {statement.table}, "
            "predicate evaluated over shares at the SP",
            leakage=rewritten.leakage,
            notes=rewritten.notes,
        )

    # control statements (BEGIN/COMMIT/ROLLBACK, DDL): nothing to plan
    kind = type(statement).__name__.lower()
    return PlanNode(
        op=kind,
        detail="control statement; executes directly",
    )


def _route_node(proxy, rewritten_query) -> PlanNode:
    """How the backend will route the rewritten query."""
    server = proxy.server
    explain_fn = getattr(server, "explain_route", None)
    if callable(explain_fn):  # a cluster coordinator
        return explain_fn(rewritten_query)
    return PlanNode(
        op="execute",
        detail="single service provider runs the rewritten query",
        props={"backend": type(server).__name__},
    )


def describe_spec(spec) -> str:
    """One line describing how an output column decrypts."""
    if isinstance(spec, PlainSlot):
        return f"plain (result column {spec.index})"
    if isinstance(spec, ShareSlot):
        if spec.key.is_row_independent:
            key = "row-independent key"
        else:
            sources = ", ".join(s for s, _ in spec.key.terms)
            key = f"key over row ids of [{sources}]"
        return (
            f"share (result column {spec.index}, {key}, "
            f"type {spec.vtype.kind})"
        )
    if isinstance(spec, PostOp):
        left = describe_spec(spec.left)
        if spec.right is None:
            return f"proxy-side {spec.op}({left})"
        return f"proxy-side ({left} {spec.op} {describe_spec(spec.right)})"
    if isinstance(spec, Const):
        return f"constant {spec.value!r}"
    return f"<{type(spec).__name__}>"
