"""EXPLAIN: what the proxy is about to do, without doing it.

The demo UI (Figure 3) shows the attendee the rewritten query next to the
original.  :func:`explain` packages that view -- rewritten SQL, how each
output column decrypts, declared leakage, rewriting notes -- for the
shell, tests and documentation, with no server round trip.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import Const, PlainSlot, PostOp, ShareSlot
from repro.sql import ast
from repro.sql.parser import parse_statement


@dataclass(frozen=True)
class ExplainReport:
    """A dry-run description of one statement."""

    kind: str                       # 'select' | 'insert' | 'update' | 'delete'
    original_sql: str
    rewritten_sql: str
    outputs: tuple[str, ...]        # one human-readable line per output
    leakage: tuple[str, ...]
    notes: tuple[str, ...]

    def pretty(self) -> str:
        lines = [f"-- {self.kind.upper()} --"]
        lines.append("rewritten:")
        lines.append(f"  {self.rewritten_sql}")
        if self.outputs:
            lines.append("outputs:")
            lines.extend(f"  {line}" for line in self.outputs)
        lines.append("declared leakage:")
        if self.leakage:
            lines.extend(f"  - {item}" for item in self.leakage)
        else:
            lines.append("  (none)")
        if self.notes:
            lines.append("notes:")
            lines.extend(f"  - {note}" for note in self.notes)
        return "\n".join(lines)


def explain(proxy, sql: str) -> ExplainReport:
    """Rewrite ``sql`` against the proxy's key store; never contacts the SP.

    INSERTs are described rather than rewritten: rewriting one would burn
    fresh row ids for rows that are never stored.
    """
    statement = parse_statement(sql)
    if isinstance(statement, ast.Select):
        plan = proxy.rewriter.rewrite(statement)
        outputs = tuple(
            f"{column.name}: {describe_spec(column.spec)}"
            for column in plan.outputs
        )
        return ExplainReport(
            kind="select",
            original_sql=sql,
            rewritten_sql=plan.sql,
            outputs=outputs,
            leakage=plan.leakage,
            notes=plan.notes,
        )
    if isinstance(statement, ast.Insert):
        meta = proxy.store.table(statement.table)
        sensitive = [c.name for c in meta.columns.values() if c.sensitive]
        return ExplainReport(
            kind="insert",
            original_sql=sql,
            rewritten_sql=(
                f"INSERT INTO {statement.table} (...{len(meta.columns)} columns"
                f" + __rowid + __s) VALUES (<shares>)"
            ),
            outputs=(),
            leakage=tuple(
                f"insert: plaintext of insensitive column {c.name!r}"
                for c in meta.columns.values()
                if not c.sensitive
            ),
            notes=(
                f"sensitive columns encrypted at the proxy: {sensitive}",
                "each row gets a fresh random row id (CPA resistance)",
            ),
        )
    if isinstance(statement, ast.Update):
        plan = proxy.rewriter.rewrite_update(statement)
    else:
        plan = proxy.rewriter.rewrite_delete(statement)
    return ExplainReport(
        kind=type(statement).__name__.lower(),
        original_sql=sql,
        rewritten_sql=plan.sql,
        outputs=(),
        leakage=plan.leakage,
        notes=plan.notes,
    )


def describe_spec(spec) -> str:
    """One line describing how an output column decrypts."""
    if isinstance(spec, PlainSlot):
        return f"plain (result column {spec.index})"
    if isinstance(spec, ShareSlot):
        if spec.key.is_row_independent:
            key = "row-independent key"
        else:
            sources = ", ".join(s for s, _ in spec.key.terms)
            key = f"key over row ids of [{sources}]"
        return (
            f"share (result column {spec.index}, {key}, "
            f"type {spec.vtype.kind})"
        )
    if isinstance(spec, PostOp):
        left = describe_spec(spec.left)
        if spec.right is None:
            return f"proxy-side {spec.op}({left})"
        return f"proxy-side ({left} {spec.op} {describe_spec(spec.right)})"
    if isinstance(spec, Const):
        return f"constant {spec.value!r}"
    return f"<{type(spec).__name__}>"
