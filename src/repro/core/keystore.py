"""The DO-side key store (demo step 1).

Holds the system keys, one :class:`TableMeta` per uploaded table (column
keys, auxiliary-column keys) and the SIES key for row ids.  The paper's
demo invites the attendee to "check the size of the key store": it is
O(#columns), independent of row count -- :meth:`KeyStore.size_bytes` makes
that measurable (experiment E5).
"""

from __future__ import annotations

import json
from typing import Optional

from repro.core.meta import ColumnMeta, TableMeta, ValueType
from repro.crypto import keyops
from repro.crypto.keys import ColumnKey, SystemKeys
from repro.crypto.sies import SIESKey


class KeyStoreError(KeyError):
    """Unknown table/column, or duplicate registration."""


class KeyStore:
    """Column keys and table metadata for one data owner."""

    def __init__(
        self,
        keys: SystemKeys,
        sies_key: SIESKey,
        routing_key: Optional[bytes] = None,
    ):
        self.keys = keys
        self.sies_key = sies_key
        #: secret PRF key for cluster shard routing: the bucket a row lands
        #: on is a PRF of its shard-key plaintext under this key, so the
        #: service providers see placement but never the key values
        if routing_key is None:
            import secrets

            routing_key = secrets.token_bytes(32)
        self.routing_key = routing_key
        #: routing-key version: bumped by every committed topology change
        #: (elastic resharding).  The PRF key itself is stable -- a
        #: rebalance re-partitions the *same* bucket space -- but cached
        #: plans, per-shard prepared handles and leakage accounting are all
        #: keyed to the epoch of the topology they were built against.
        self.routing_epoch = 0
        self._tables: dict[str, TableMeta] = {}
        self._views: dict[str, str] = {}  # name -> defining SELECT text
        #: monotone counter; any change that can invalidate a cached
        #: rewrite plan (table/view registration, key rotation) bumps it,
        #: and prepared statements re-rewrite when it moves
        self.version = 0

    def bump_version(self) -> None:
        self.version += 1

    def advance_routing_epoch(self) -> int:
        """Record a committed shard-topology change.

        Also bumps :attr:`version`: every cached rewrite plan carries
        per-shard prepared handles and scatter routes that the old topology
        issued, and must re-prepare against the new one.
        """
        self.routing_epoch += 1
        self.bump_version()
        return self.routing_epoch

    # -- registration -----------------------------------------------------

    def register_table(self, meta: TableMeta, replace: bool = False) -> None:
        key = meta.name.lower()
        if key in self._tables and not replace:
            raise KeyStoreError(f"table {meta.name!r} already registered")
        self._tables[key] = meta
        self.bump_version()

    def drop_table(self, name: str) -> None:
        try:
            del self._tables[name.lower()]
        except KeyError:
            raise KeyStoreError(f"unknown table {name!r}") from None
        self.bump_version()

    # -- lookup ------------------------------------------------------------

    def table(self, name: str) -> TableMeta:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise KeyStoreError(f"unknown table {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> list[str]:
        return sorted(self._tables)

    # -- views ---------------------------------------------------------------
    #
    # Views live at the *proxy*: the SP never learns that a query came
    # through a view, it only sees the fully expanded rewritten SQL.  A
    # view is therefore also a convenient place to hide rewriting detail
    # from applications.

    def register_view(self, name: str, sql: str, replace: bool = False) -> None:
        key = name.lower()
        if key in self._tables:
            raise KeyStoreError(f"{name!r} is already a table")
        if key in self._views and not replace:
            raise KeyStoreError(f"view {name!r} already registered")
        self._views[key] = sql
        self.bump_version()

    def view(self, name: str) -> str:
        try:
            return self._views[name.lower()]
        except KeyError:
            raise KeyStoreError(f"unknown view {name!r}") from None

    def is_view(self, name: str) -> bool:
        return name.lower() in self._views

    def drop_view(self, name: str) -> None:
        try:
            del self._views[name.lower()]
        except KeyError:
            raise KeyStoreError(f"unknown view {name!r}") from None
        self.bump_version()

    def views(self) -> list[str]:
        return sorted(self._views)

    def column_key(self, table: str, column: str) -> ColumnKey:
        meta = self.table(table).column(column)
        if not meta.sensitive or meta.key is None:
            raise KeyStoreError(f"{table}.{column} is not a sensitive column")
        return meta.key

    def aux_key(self, table: str) -> ColumnKey:
        aux = self.table(table).aux_key
        if aux is None:
            raise KeyStoreError(f"table {table!r} has no auxiliary column key")
        return aux

    # -- measurement ----------------------------------------------------------

    def size_bytes(self) -> int:
        """Serialized size of everything the DO must keep secret.

        System keys + SIES key + per-column keys.  Deliberately *excludes*
        any per-row material: there is none, which is the demo's point.
        """
        return len(self.to_json().encode("utf-8"))

    def to_json(self) -> str:
        payload = {
            "system": {
                "n": self.keys.n,
                "g": self.keys.g,
                "rho1": self.keys.rho1,
                "rho2": self.keys.rho2,
                "value_bits": self.keys.value_bits,
            },
            "sies": {
                "key": self.sies_key.key.hex(),
                "modulus": self.sies_key.modulus,
            },
            "routing_key": self.routing_key.hex(),
            "routing_epoch": self.routing_epoch,
            "tables": {
                name: _table_to_dict(meta) for name, meta in self._tables.items()
            },
            "views": dict(self._views),
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, payload: str) -> "KeyStore":
        data = json.loads(payload)
        system = data["system"]
        keys = SystemKeys(
            n=int(system["n"]),
            g=int(system["g"]),
            rho1=int(system["rho1"]),
            rho2=int(system["rho2"]),
            phi=(int(system["rho1"]) - 1) * (int(system["rho2"]) - 1),
            value_bits=int(system["value_bits"]),
        )
        sies = SIESKey(
            key=bytes.fromhex(data["sies"]["key"]),
            modulus=int(data["sies"]["modulus"]),
        )
        routing = data.get("routing_key")
        store = cls(
            keys, sies,
            routing_key=bytes.fromhex(routing) if routing else None,
        )
        store.routing_epoch = int(data.get("routing_epoch", 0))
        for name, table in data["tables"].items():
            store.register_table(_table_from_dict(name, table))
        for name, sql in data.get("views", {}).items():
            store.register_view(name, sql)
        return store


def _table_to_dict(meta: TableMeta) -> dict:
    return {
        "aux_key": [meta.aux_key.m, meta.aux_key.x] if meta.aux_key else None,
        "num_rows": meta.num_rows,
        "columns": [
            {
                "name": c.name,
                "kind": c.vtype.kind,
                "scale": c.vtype.scale,
                "width": c.vtype.width,
                "sensitive": c.sensitive,
                "key": [c.key.m, c.key.x] if c.key else None,
            }
            for c in meta.columns.values()
        ],
    }


def _table_from_dict(name: str, data: dict) -> TableMeta:
    columns = {}
    for c in data["columns"]:
        key = ColumnKey(m=c["key"][0], x=c["key"][1]) if c["key"] else None
        columns[c["name"]] = ColumnMeta(
            name=c["name"],
            vtype=ValueType(c["kind"], scale=c["scale"], width=c["width"]),
            sensitive=c["sensitive"],
            key=key,
        )
    aux = data["aux_key"]
    return TableMeta(
        name=name,
        columns=columns,
        aux_key=ColumnKey(m=aux[0], x=aux[1]) if aux else None,
        num_rows=data["num_rows"],
    )
