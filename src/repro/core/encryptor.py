"""The upload pipeline (demo step 1).

Takes a plain table and the DO's sensitivity choices and produces the
encrypted table stored at the SP:

* insensitive columns are stored plain,
* each sensitive column is ring-encoded and secret-shared under a fresh
  column key (Definitions 1-2),
* a random row id is assigned per row and stored SIES-encrypted in the
  hidden ``__rowid`` column,
* the auxiliary column ``__s`` stores an encryption of 1 under a fresh
  auxiliary key -- the key-update helper every secure operator relies on.

Returns the :class:`TableMeta` for the DO's key store and the
:class:`repro.engine.Table` shipped to the SP.
"""

from __future__ import annotations

import secrets
from typing import Iterable, Optional, Sequence

from repro.analysis.contracts import sanitizer
from repro.core.meta import ColumnMeta, TableMeta, ValueType
from repro.crypto import keyops
from repro.crypto.encoding import check_domain, encode_signed
from repro.crypto.keys import SystemKeys
from repro.crypto.secret_sharing import encrypt_value, item_key
from repro.crypto.sies import SIESCipher, SIESKey
from repro.engine.schema import ColumnSpec, DataType, Schema
from repro.engine.table import Table

#: Hidden column names on every encrypted table.
ROWID_COLUMN = "__rowid"
AUX_COLUMN = "__s"

_DTYPE_BY_KIND = {
    "int": DataType.INT,
    "decimal": DataType.DECIMAL,
    "date": DataType.DATE,
    "string": DataType.STRING,
    "bool": DataType.BOOL,
}


class UploadError(ValueError):
    """Invalid upload request (bad schema, out-of-domain values, ...)."""


@sanitizer
def encrypt_table(
    keys: SystemKeys,
    sies_key: SIESKey,
    name: str,
    columns: Sequence[tuple[str, ValueType]],
    rows: Iterable[Sequence],
    sensitive: Iterable[str],
    rng=None,
) -> tuple[TableMeta, Table]:
    """Encrypt ``rows`` according to the sensitivity choice.

    ``columns`` is ``[(name, ValueType), ...]`` in storage order; ``rows``
    yields tuples in the same order; ``sensitive`` names the columns to
    protect.  ``rng`` seeds key and row-id generation for reproducible
    experiments (production passes None for the OS CSPRNG).
    """
    sensitive = set(sensitive)
    names = [c for c, _ in columns]
    unknown = sensitive - set(names)
    if unknown:
        raise UploadError(f"sensitive columns not in schema: {sorted(unknown)}")

    metas: dict[str, ColumnMeta] = {}
    for col_name, vtype in columns:
        if col_name.startswith("__"):
            raise UploadError(f"column name {col_name!r} is reserved")
        is_sensitive = col_name in sensitive
        metas[col_name] = ColumnMeta(
            name=col_name,
            vtype=vtype,
            sensitive=is_sensitive,
            key=keys.random_column_key(rng) if is_sensitive else None,
        )
    aux_key = keyops.aux_column_key(keys, rng)

    cipher = SIESCipher(sies_key)
    nonce = _random_nonce(rng)

    out_columns: list[list] = [[] for _ in columns]
    rowid_column: list = []
    aux_column: list = []
    num_rows = 0
    for row in rows:
        if len(row) != len(columns):
            raise UploadError(
                f"row width {len(row)} does not match schema width {len(columns)}"
            )
        row_id = keys.random_row_id(rng)
        rowid_column.append(cipher.encrypt(row_id % sies_key.modulus, nonce))
        nonce += 1
        aux_vk = item_key(keys, row_id, aux_key)
        aux_column.append(encrypt_value(keys, 1, aux_vk))
        for out, value, (col_name, vtype) in zip(out_columns, row, columns):
            meta = metas[col_name]
            if not meta.sensitive:
                out.append(value)
                continue
            if value is None:
                out.append(None)
                continue
            ring = check_domain(vtype.encode(value), keys.value_bits)
            vk = item_key(keys, row_id, meta.key)
            out.append(encrypt_value(keys, encode_signed(ring, keys.n), vk))
        num_rows += 1

    specs = []
    for col_name, vtype in columns:
        if col_name in sensitive:
            specs.append(ColumnSpec(col_name, DataType.SHARE))
        else:
            dtype = _DTYPE_BY_KIND[vtype.kind]
            scale = vtype.scale if dtype is DataType.DECIMAL else 0
            specs.append(ColumnSpec(col_name, dtype, scale=scale))
    specs.append(ColumnSpec(ROWID_COLUMN, DataType.SHARE))
    specs.append(ColumnSpec(AUX_COLUMN, DataType.SHARE))

    table = Table(
        Schema(tuple(specs)), out_columns + [rowid_column, aux_column]
    )
    meta = TableMeta(name=name, columns=metas, aux_key=aux_key, num_rows=num_rows)
    return meta, table


@sanitizer
def encrypt_rows(
    keys: SystemKeys,
    sies_key: SIESKey,
    meta: TableMeta,
    rows: Iterable[Sequence],
    rng=None,
) -> list[tuple]:
    """Encrypt new rows for an already-uploaded table (INSERT path).

    Reuses the table's existing column keys and auxiliary key, assigns a
    fresh random row id per row, and returns rows in *storage* order:
    the declared columns followed by the hidden ``__rowid`` and ``__s``
    columns.  This is exactly what a CPA attacker triggers when it inserts
    chosen plaintexts (paper Section 2.3): fresh row ids make the resulting
    shares unlinkable to equal-valued rows already stored.
    """
    if meta.aux_key is None:
        raise UploadError(f"table {meta.name!r} has no auxiliary key")
    cipher = SIESCipher(sies_key)
    metas = list(meta.columns.values())
    out = []
    for row in rows:
        if len(row) != len(metas):
            raise UploadError(
                f"row width {len(row)} does not match schema width {len(metas)}"
            )
        row_id = keys.random_row_id(rng)
        nonce = _random_nonce(rng)
        rowid_cell = cipher.encrypt(row_id % sies_key.modulus, nonce)
        aux_vk = item_key(keys, row_id, meta.aux_key)
        aux_cell = encrypt_value(keys, 1, aux_vk)
        storage_row = []
        for value, column in zip(row, metas):
            if not column.sensitive or value is None:
                storage_row.append(value)
                continue
            ring = check_domain(column.vtype.encode(value), keys.value_bits)
            vk = item_key(keys, row_id, column.key)
            storage_row.append(encrypt_value(keys, encode_signed(ring, keys.n), vk))
        storage_row.append(rowid_cell)
        storage_row.append(aux_cell)
        out.append(tuple(storage_row))
    return out


def _random_nonce(rng) -> int:
    if rng is not None:
        return rng.getrandbits(63)
    return secrets.randbits(63)
