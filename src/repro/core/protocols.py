"""The secure-operator protocol suite and its leakage profiles.

The demo paper specifies the multiplication protocol and defers the other
operators to the SIGMOD'14 paper / technical report.  This module documents
our reconstruction of each operator (see DESIGN.md Section 2 for the
derivations) and centralizes the parameter policy -- in particular how big
the random comparison mask may be before masked differences wrap around
``n`` and corrupt signs.

Operator summary (SP work per row / what the SP learns):

===============  =======================================  =====================
operator         SP computation                           SP learns
===============  =======================================  =====================
multiply (EE)    ``ae * be mod n``                        nothing new
multiply (EP)    ``ae * c mod n``                         the plain constant
key update       ``p * ae * prod se_i^q_i mod n``         nothing new
add (EE)         key-align, then ``ae + be mod n``        nothing new
add (EP)         ``ae + c * one_e mod n``                 the plain constant
compare          key-update diff to ``<rho^-1, 0>``       sign of (a-b); masked
                                                          magnitudes (ratios of
                                                          differences within
                                                          one query)
token (=, group) key-update to ``<mG, 0>``                equality pattern
order token      key-update to ``<rho^-1, 0>``            total order + masked
                                                          ratios (per query)
sum              key-align to ``<mq, 0>``, add shares     equality pattern of
                                                          the summed expression
===============  =======================================  =====================

Two comparison modes are provided (ablation experiment E8):

* ``MASKED`` (default, non-interactive): a single random positive ``rho``
  per comparison site; the SP filters locally.  Matches the paper's
  "computation pushed to the engine" architecture.
* ``INTERACTIVE``: the SP returns the encrypted differences, the DO
  decrypts their signs and sends back a bitmap.  One extra round trip per
  comparison site, but the SP sees only the final sign bits (no intra-query
  ratio leakage).  The SQL rewriter uses MASKED mode; INTERACTIVE is
  provided as the operator-level protocol :func:`interactive_signs` and is
  measured against MASKED in ablation E8.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.crypto.keys import SystemKeys


class ComparisonMode(enum.Enum):
    MASKED = "masked"
    INTERACTIVE = "interactive"


#: Bits of headroom reserved for expression growth: encrypted expressions
#: (sums of products of bounded inputs) must stay below ``2**expr_bits`` in
#: magnitude for the masked-sign protocol to be exact.
DEFAULT_EXPR_HEADROOM_BITS = 32


@dataclass(frozen=True)
class ProtocolPolicy:
    """Parameter policy shared by the rewriter and the UDF layer."""

    expr_headroom_bits: int = DEFAULT_EXPR_HEADROOM_BITS
    comparison_mode: ComparisonMode = ComparisonMode.MASKED
    min_mask_bits: int = 8

    def expression_bits(self, keys: SystemKeys) -> int:
        """Magnitude bound (in bits) for any in-flight expression value."""
        return keys.value_bits + self.expr_headroom_bits

    def mask_bits(self, keys: SystemKeys) -> int:
        """Size of the random comparison mask ``rho``.

        Chosen so ``|d| * rho < n / 2``: the masked difference never wraps,
        hence its residue's position relative to ``n/2`` equals the sign of
        ``d``.  With the paper's 2048-bit ``n`` and 64-bit values this
        leaves masks of well over 1900 bits -- statistically hiding the
        magnitude of ``d``.
        """
        available = keys.n.bit_length() - 1 - self.expression_bits(keys) - 2
        if available < self.min_mask_bits:
            raise ValueError(
                "modulus too small for masked comparisons: "
                f"{keys.n.bit_length()}-bit n, "
                f"{self.expression_bits(keys)}-bit expressions"
            )
        return available

    def random_mask(self, keys: SystemKeys, rng) -> int:
        """A fresh positive comparison mask co-prime with n."""
        from repro.crypto import ntheory

        bits = self.mask_bits(keys)
        while True:
            rho = rng.getrandbits(bits) | (1 << (bits - 1))
            if ntheory.gcd(rho, keys.n) == 1:
                return rho


def interactive_signs(keys: SystemKeys, shares, item_keys) -> list:
    """The INTERACTIVE comparison protocol, DO side.

    The SP ships the encrypted difference column (``shares``); the DO
    regenerates the item keys (``item_keys``, from the SIES row ids it also
    received), decrypts each difference and answers with its sign only.
    The SP then filters on the returned bitmap.  Compared to MASKED mode
    the SP learns nothing beyond the signs, at the price of one round trip
    and DO-side work linear in the rows compared.
    """
    from repro.crypto.encoding import decode_signed

    signs = []
    for share, vk in zip(shares, item_keys):
        if share is None:
            signs.append(None)
            continue
        value = decode_signed(share * vk % keys.n, keys.n)
        signs.append(0 if value == 0 else (1 if value > 0 else -1))
    return signs


#: Human-readable leakage profile per operator; the security harness
#: aggregates these into per-query leakage reports (experiment E6).
LEAKAGE = {
    "sdb_mul": "none beyond input availability",
    "sdb_mul_plain": "the plaintext operand (it was insensitive already)",
    "sdb_add": "none beyond input availability",
    "sdb_keyupdate": "none (p, q are masked by fresh key randomness)",
    "compare": "sign of the compared difference; rho-masked magnitudes",
    "token": "equality pattern under a fresh per-site token key",
    "order_token": "total order of the expression; rho-masked ratios",
    "sum_align": "equality pattern of the summed expression within a query",
}
