"""The DO <-> SP communication boundary.

The paper's architecture (Figure 2) separates the proxy and the engine by a
network.  We keep the two in one process but force every interaction
through this channel object, which (a) makes the trust boundary explicit in
code, (b) counts request/response bytes for the cost experiments, and
(c) hands the QR-knowledge attacker exactly what a wire-tapper would see.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Iterable

from repro.crypto.sies import SIESCiphertext
from repro.engine.table import Table


@dataclass(frozen=True)
class ChannelRecord:
    """One observed message."""

    direction: str  # 'to_sp' | 'to_do'
    kind: str       # 'query' | 'result' | 'upload'
    size_bytes: int
    summary: str


@dataclass
class Channel:
    """Byte-counting, recording message channel."""

    records: list = field(default_factory=list)

    def record_query(self, sql: str) -> None:
        self.records.append(
            ChannelRecord(
                direction="to_sp",
                kind="query",
                size_bytes=len(sql.encode("utf-8")),
                summary=sql[:120],
            )
        )

    def record_upload(self, name: str, table: Table) -> None:
        self.records.append(
            ChannelRecord(
                direction="to_sp",
                kind="upload",
                size_bytes=estimate_table_bytes(table),
                summary=f"upload {name}: {table.num_rows} rows",
            )
        )

    def record_result(self, table: Table) -> None:
        self.records.append(
            ChannelRecord(
                direction="to_do",
                kind="result",
                size_bytes=estimate_table_bytes(table),
                summary=f"result: {table.num_rows} rows x {table.num_columns} cols",
            )
        )

    def bytes_sent(self) -> int:
        return sum(r.size_bytes for r in self.records if r.direction == "to_sp")

    def bytes_received(self) -> int:
        return sum(r.size_bytes for r in self.records if r.direction == "to_do")


def estimate_value_bytes(value) -> int:
    """Approximate serialized size of one value."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return max(1, (value.bit_length() + 7) // 8)
    if isinstance(value, float):
        return 8
    if isinstance(value, datetime.date):
        return 4
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, SIESCiphertext):
        return estimate_value_bytes(value.value) + 8
    return 16


def estimate_table_bytes(table: Table) -> int:
    return sum(
        estimate_value_bytes(v) for column in table.columns for v in column
    )
