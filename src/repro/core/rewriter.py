"""SQL rewriting: plain queries in, UDF queries + decryption plans out.

This is the proxy component of paper Figure 2: "rewriting the SQL operators
that involve sensitive columns to their corresponding UDFs".  The rewriter
walks the application's AST and, wherever a sensitive column is touched,
replaces the operator by the SDB UDF implementing its secure protocol while
*deriving the column key of the result* (Section 2.2's multiplication
example, generalized to the full operator suite of
:mod:`repro.core.protocols`).

Design notes
------------

* Every intermediate sensitive value carries a :class:`KeyExpr` -- the
  derived key with one exponent term per row-id source.  Outputs that still
  have terms get hidden SIES row-id columns appended so the proxy can
  regenerate item keys (the paper's "the row-id is added in the rewritten
  query").
* Derived tables re-export the auxiliary ``__s`` and ``__rowid`` columns of
  any source that their share outputs still depend on, so outer operators
  can keep performing key updates -- data interoperability across query
  nesting.
* Divisions and AVG cannot run in the ring.  In output position they become
  proxy-side :class:`PostOp` trees over exact SP-computed parts; in
  comparisons they are *normalized away* by cross-multiplication (the
  divisor must be provably positive: COUNT aggregates and positive
  literals), which is how e.g. TPC-H Q17's ``l_quantity < 0.2 * avg(...)``
  runs entirely at the SP.
"""

from __future__ import annotations

import datetime
import decimal
import functools
import random
import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.contracts import sanitizer
from repro.core.keystore import KeyStore
from repro.core.meta import TableMeta, ValueType
from repro.core.plan import (
    Const,
    MaskSite,
    OutputColumn,
    ParamRef,
    ParamSlot,
    PlainSlot,
    PostOp,
    RewrittenQuery,
    ShareSlot,
)
from repro.core.protocols import ComparisonMode, ProtocolPolicy
from repro.crypto import keyops, ntheory
from repro.crypto.keyops import KeyExpr
from repro.crypto.keys import ColumnKey
from repro.engine.expressions import Evaluator, EvaluationError, RowScope
from repro.sql import ast

ROWID_COLUMN = "__rowid"
AUX_COLUMN = "__s"


class RewriteError(ValueError):
    """The query cannot be rewritten (unknown table/column, misuse)."""


@dataclass(frozen=True)
class _SlotPlaceholder(ast.Placeholder):
    """A placeholder already assigned a bind slot (rewriter-internal).

    The rewriter renumbers every surviving marker into a slot of the plan's
    ``param_slots``; this subclass distinguishes markers it has already
    processed from application markers still carrying their original index.
    """


def _reject_unbound_parameters(statement) -> None:
    """DML rewrites take fully-bound statements; markers must bind first.

    SELECT plans keep markers (they become bind slots), but DML re-rewrites
    per execution, so the session layer binds before rewriting.  A marker
    arriving here means the caller skipped binding -- e.g.
    ``proxy.execute("DELETE ... WHERE x = ?")`` with no way to pass values.
    """
    from repro.sql.params import num_parameters

    count = num_parameters(statement)
    if count:
        raise RewriteError(
            f"statement has {count} unbound parameter(s); execute it through "
            "a repro.api cursor with a parameter row"
        )


def _param_of(node: ast.Expr):
    """``(param_index, negated)`` when ``node`` is a (negated) marker."""
    negated = False
    while isinstance(node, ast.UnaryOp) and node.op == "-":
        negated = not negated
        node = node.operand
    if isinstance(node, ast.Placeholder) and not isinstance(node, _SlotPlaceholder):
        return node.index, negated
    return None


class UnsupportedQueryError(RewriteError):
    """The query needs an operation outside SDB's secure operator suite."""


@dataclass(frozen=True)
class RExpr:
    """A rewritten expression: SP-evaluable node + value metadata."""

    node: ast.Expr
    vtype: ValueType
    key: Optional[KeyExpr] = None

    @property
    def is_share(self) -> bool:
        return self.key is not None


@dataclass(frozen=True)
class SourceHandle:
    """How to reach one row-id source's helper columns from a scope."""

    name: str
    aux_key: ColumnKey
    s_expr: ast.Expr
    rowid_expr: ast.Expr


@dataclass(frozen=True)
class DerivedColumn:
    """Metadata of one derived-table output column."""

    name: str
    vtype: ValueType
    key: Optional[KeyExpr] = None


class Scope:
    """Name resolution for the rewriter (bindings, sources, memos)."""

    def __init__(self, outer: Optional["Scope"] = None):
        self.tables: dict[str, TableMeta] = {}
        self.derived: dict[str, dict[str, DerivedColumn]] = {}
        self.sources: dict[str, SourceHandle] = {}
        self.memo: dict[ast.Expr, RExpr] = {}
        self.outer = outer

    # -- registration -----------------------------------------------------

    def add_table(self, binding: str, meta: TableMeta) -> None:
        if binding in self.tables or binding in self.derived:
            raise RewriteError(f"duplicate binding {binding!r}")
        self.tables[binding] = meta
        self.sources[binding] = SourceHandle(
            name=binding,
            aux_key=meta.aux_key,
            s_expr=ast.Column(AUX_COLUMN, table=binding),
            rowid_expr=ast.Column(ROWID_COLUMN, table=binding),
        )

    def add_derived(
        self, binding: str, columns: dict, handles: list[SourceHandle]
    ) -> None:
        if binding in self.tables or binding in self.derived:
            raise RewriteError(f"duplicate binding {binding!r}")
        self.derived[binding] = columns
        for handle in handles:
            self.sources.setdefault(handle.name, handle)

    # -- resolution -----------------------------------------------------------

    def resolve(self, name: str, table: Optional[str]) -> RExpr:
        scope = self
        while scope is not None:
            hit = scope._resolve_local(name, table)
            if hit is not None:
                return hit
            scope = scope.outer
        where = f"{table}.{name}" if table else name
        raise RewriteError(f"unknown column {where!r}")

    def _resolve_local(self, name: str, table: Optional[str]) -> Optional[RExpr]:
        hits = []
        for binding, meta in self.tables.items():
            if table is not None and binding != table:
                continue
            if name in meta.columns:
                hits.append(_column_rexpr(binding, meta.columns[name]))
        for binding, columns in self.derived.items():
            if table is not None and binding != table:
                continue
            if name in columns:
                col = columns[name]
                hits.append(
                    RExpr(
                        node=ast.Column(col.name, table=binding),
                        vtype=col.vtype,
                        key=col.key,
                    )
                )
        if len(hits) > 1:
            raise RewriteError(f"ambiguous column {name!r}")
        return hits[0] if hits else None

    def handle(self, source: str) -> SourceHandle:
        scope = self
        while scope is not None:
            if source in scope.sources:
                return scope.sources[source]
            scope = scope.outer
        raise UnsupportedQueryError(
            f"no auxiliary column available for source {source!r}"
        )

    def column_is_sensitive(self, name: str, table: Optional[str]) -> bool:
        try:
            return self.resolve(name, table).is_share
        except RewriteError:
            return False

    def all_bindings(self) -> list[str]:
        return list(self.tables) + list(self.derived)

    def binding_columns(self, binding: str) -> list[str]:
        if binding in self.tables:
            return list(self.tables[binding].columns)
        if binding in self.derived:
            return list(self.derived[binding])
        raise RewriteError(f"unknown table {binding!r} in star expansion")


def _column_rexpr(binding: str, meta) -> RExpr:
    node = ast.Column(meta.name, table=binding)
    if meta.sensitive:
        return RExpr(
            node=node,
            vtype=meta.vtype,
            key=KeyExpr.from_column_key(meta.key, binding),
        )
    return RExpr(node=node, vtype=meta.vtype)


def _serialized(method):
    """Serialize an entry point on the rewriter's lock.

    The rewriter keeps per-rewrite scratch state (leakage, notes, param
    slots, hidden-name counter) on ``self``; concurrent sessions sharing
    one proxy must not interleave rewrites.  The lock is re-entrant and
    held only for the rewrite itself -- plans are cached per statement, so
    it is never on the per-execution hot path.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._rewrite_lock:
            return method(self, *args, **kwargs)

    return wrapper


class Rewriter:
    """Rewrites application queries for one key store."""

    def __init__(
        self,
        store: KeyStore,
        policy: Optional[ProtocolPolicy] = None,
        rng=None,
    ):
        self.store = store
        self.keys = store.keys
        self.policy = policy or ProtocolPolicy()
        self.rng = rng if rng is not None else random.SystemRandom()
        self._leakage: list[str] = []
        self._notes: list[str] = []
        self._hidden_counter = 0
        self._param_types: tuple = ()
        self._param_slots: list[ParamSlot] = []
        self._mask_sites: list[MaskSite] = []
        self._token_sites_by_m: dict[int, MaskSite] = {}
        self._rewrite_lock = threading.RLock()

    # -- entry point --------------------------------------------------------

    @sanitizer
    @_serialized
    def rewrite(self, query: ast.Select, param_types=()) -> RewrittenQuery:
        """Rewrite ``query``; ``param_types`` declares placeholder vtypes.

        A query may contain :class:`~repro.sql.ast.Placeholder` markers;
        ``param_types[i]`` is the :class:`ValueType` marker ``i`` will be
        bound with (the session layer infers it from the first bound value).
        Markers rewrite like any non-constant insensitive operand -- they
        survive into the rewritten query, typically inside an ``sdb_enc``
        call that ring-encodes the eventual value at the SP.
        """
        self._leakage = []
        self._notes = []
        self._hidden_counter = 0
        self._param_types = tuple(param_types)
        self._param_slots: list[ParamSlot] = []
        self._mask_sites = []
        self._token_sites_by_m = {}
        rewritten, outputs = self._rewrite_top(query)
        rewritten = self._finalize_params(rewritten)
        self._pin_output_token_sites(outputs)
        return RewrittenQuery(
            query=rewritten,
            outputs=tuple(outputs),
            leakage=tuple(self._leakage),
            notes=tuple(self._notes),
            param_slots=tuple(self._param_slots),
            mask_sites=tuple(self._mask_sites),
        )

    # -- views ----------------------------------------------------------------

    def _expand_view(self, texpr: ast.TableRef) -> ast.SubqueryRef:
        """Inline a proxy-side view as a derived table.

        Cycle detection lives in the caller (:meth:`_rewrite_from`), whose
        guard stays open while the expanded subquery is rewritten -- views
        referencing views are legal, definition cycles are an error.
        """
        from repro.sql.parser import parse

        query = parse(self.store.view(texpr.name))
        return ast.SubqueryRef(query=query, alias=texpr.binding)

    # -- DML -----------------------------------------------------------------

    @sanitizer
    @_serialized
    def rewrite_update(self, statement: ast.Update):
        """Rewrite an UPDATE so it runs entirely at the SP.

        The WHERE predicate goes through the normal secure-comparison
        rewriting.  Each assignment to a *sensitive* column is rewritten as
        a share expression and key-updated to the column's own key, so the
        replacement share is decryptable exactly like an uploaded one:

        * ``SET balance = balance * 2``  -- share arithmetic, then key
          update back to ``ck_balance``;
        * ``SET balance = 100``          -- the constant is carried into
          the row's key via the auxiliary column ``S`` (an encryption of 1
          key-updated to ``ck_balance``, scaled by the ring constant).

        Assignments to insensitive columns must not involve sensitive
        inputs (that would require decrypting at the SP).
        """
        from repro.core.plan import RewrittenDML

        self._leakage = []
        self._notes = []
        self._hidden_counter = 0
        _reject_unbound_parameters(statement)
        if statement.table not in self.store:
            raise RewriteError(f"table {statement.table!r} is not uploaded")
        meta = self.store.table(statement.table)
        scope = Scope()
        scope.add_table(statement.table, meta)
        binding = statement.table

        where = (
            self._rewrite_predicate(statement.where, scope)
            if statement.where is not None
            else None
        )

        assignments = []
        for assignment in statement.assignments:
            column = meta.column(assignment.column)
            rexpr = self._rewrite_expr(assignment.value, scope)
            if not column.sensitive:
                if rexpr.is_share:
                    raise UnsupportedQueryError(
                        f"assignment to insensitive column {column.name!r} "
                        "cannot read sensitive data (the SP would have to "
                        "decrypt); mark the target column sensitive instead"
                    )
                assignments.append(
                    ast.Assignment(column=assignment.column, value=rexpr.node)
                )
                continue
            target_key = KeyExpr.from_column_key(column.key, binding)
            target_scale = column.vtype.scale
            if rexpr.is_share:
                rexpr = self._rescale(rexpr, target_scale)
                if rexpr.vtype.scale != target_scale:
                    raise UnsupportedQueryError(
                        f"cannot assign scale-{rexpr.vtype.scale} expression "
                        f"to {column.name!r} (scale {target_scale}): ring "
                        "arithmetic cannot round a share back down -- use an "
                        "integer factor or a constant at the column's scale"
                    )
                rexpr = self._keyupdate(rexpr, target_key, scope)
            else:
                rexpr = self._encrypt_plain_under(
                    rexpr, target_key, target_scale, scope
                )
            assignments.append(
                ast.Assignment(column=assignment.column, value=rexpr.node)
            )
            self._notes.append(
                f"SET {column.name}: share re-keyed to the column key at the SP"
            )

        rewritten = ast.Update(
            table=statement.table,
            assignments=tuple(assignments),
            where=where,
        )
        return RewrittenDML(
            statement=rewritten,
            leakage=tuple(self._leakage),
            notes=tuple(self._notes),
        )

    @sanitizer
    @_serialized
    def rewrite_delete(self, statement: ast.Delete):
        """Rewrite a DELETE's predicate; row removal itself is public."""
        from repro.core.plan import RewrittenDML

        self._leakage = []
        self._notes = []
        self._hidden_counter = 0
        _reject_unbound_parameters(statement)
        if statement.table not in self.store:
            raise RewriteError(f"table {statement.table!r} is not uploaded")
        meta = self.store.table(statement.table)
        scope = Scope()
        scope.add_table(statement.table, meta)
        where = (
            self._rewrite_predicate(statement.where, scope)
            if statement.where is not None
            else None
        )
        if statement.where is not None:
            self._leak("row selection", f"DELETE WHERE {statement.where.to_sql()}")
        rewritten = ast.Delete(table=statement.table, where=where)
        return RewrittenDML(
            statement=rewritten,
            leakage=tuple(self._leakage),
            notes=tuple(self._notes),
        )

    # -- shared SELECT machinery ------------------------------------------------

    def _build_scope(self, query: ast.Select, outer: Optional[Scope]) -> tuple:
        """Create the scope and the rewritten FROM clause."""
        scope = Scope(outer=outer)
        if query.from_clause is None:
            return scope, None
        from_clause = self._rewrite_from(query.from_clause, scope)
        return scope, from_clause

    def _rewrite_from(self, texpr: ast.TableExpr, scope: Scope) -> ast.TableExpr:
        if isinstance(texpr, ast.TableRef):
            if self.store.is_view(texpr.name):
                key = texpr.name.lower()
                expanding = getattr(self, "_expanding_views", None)
                if expanding is None:
                    expanding = self._expanding_views = set()
                if key in expanding:
                    raise RewriteError(
                        f"view {texpr.name!r} is defined recursively"
                    )
                expanding.add(key)
                try:
                    return self._rewrite_from(self._expand_view(texpr), scope)
                finally:
                    expanding.discard(key)
            if texpr.name not in self.store:
                raise RewriteError(f"table {texpr.name!r} is not uploaded")
            scope.add_table(texpr.binding, self.store.table(texpr.name))
            return texpr
        if isinstance(texpr, ast.SubqueryRef):
            inner, columns, handles = self._rewrite_inner(texpr.query, scope)
            rebased = [
                SourceHandle(
                    name=h.name,
                    aux_key=h.aux_key,
                    s_expr=ast.Column(f"__s_{h.name}", table=texpr.alias),
                    rowid_expr=ast.Column(f"__rowid_{h.name}", table=texpr.alias),
                )
                for h in handles
            ]
            scope.add_derived(texpr.alias, columns, rebased)
            return ast.SubqueryRef(query=inner, alias=texpr.alias)
        if isinstance(texpr, ast.Join):
            left = self._rewrite_from(texpr.left, scope)
            right = self._rewrite_from(texpr.right, scope)
            condition = None
            if texpr.condition is not None:
                condition = self._rewrite_predicate(texpr.condition, scope)
            return ast.Join(
                left=left, right=right, kind=texpr.kind, condition=condition
            )
        raise RewriteError(f"cannot rewrite {type(texpr).__name__}")

    def _rewrite_group_by(self, query: ast.Select, scope: Scope) -> tuple:
        """Rewrite GROUP BY keys; sensitive keys become equality tokens."""
        out = []
        for expr in query.group_by:
            rexpr = self._rewrite_expr(expr, scope)
            if rexpr.is_share:
                token = self._tokenize(rexpr, scope, site=f"GROUP BY {expr.to_sql()}")
                scope.memo[expr] = token
                out.append(token.node)
            else:
                scope.memo[expr] = rexpr
                out.append(rexpr.node)
        return tuple(out)

    # -- top-level SELECT ----------------------------------------------------------

    def _rewrite_top(self, query: ast.Select):
        scope, from_clause = self._build_scope(query, outer=None)
        where = (
            self._rewrite_predicate(query.where, scope)
            if query.where is not None
            else None
        )
        group_by = self._rewrite_group_by(query, scope)
        user_items = self._expand_stars(query.items, scope)

        phys_items: list[ast.SelectItem] = []
        outputs: list[OutputColumn] = []
        output_rexprs: list = []  # RExpr | None (None for PostOp outputs)
        rowid_slots: dict[str, int] = {}
        used_names: set[str] = set()

        grouped = bool(query.group_by) or self._query_has_aggregates(query)

        for i, item in enumerate(user_items):
            name = self._output_name(item, i, used_names)
            if self._needs_post(item.expr, scope):
                spec = self._rewrite_post(
                    item.expr, scope, phys_items, rowid_slots, grouped
                )
                outputs.append(OutputColumn(name=name, spec=spec))
                output_rexprs.append(None)
                continue
            rexpr = self._rewrite_expr(item.expr, scope)
            if query.distinct and rexpr.is_share and rexpr.key.terms:
                rexpr = self._tokenize(rexpr, scope, site=f"DISTINCT {name}")
            spec = self._leaf_spec(
                rexpr, name, scope, phys_items, rowid_slots, grouped
            )
            outputs.append(OutputColumn(name=name, spec=spec))
            output_rexprs.append(rexpr)

        having = (
            self._rewrite_predicate(query.having, scope)
            if query.having is not None
            else None
        )

        order_by = self._rewrite_order_by(
            query, scope, user_items, outputs, output_rexprs
        )

        rewritten = ast.Select(
            items=tuple(phys_items),
            from_clause=from_clause,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=query.limit,
            distinct=query.distinct,
        )
        return rewritten, outputs

    def _leaf_spec(
        self, rexpr: RExpr, name: str, scope, phys_items, rowid_slots, grouped
    ):
        index = len(phys_items)
        phys_items.append(ast.SelectItem(expr=rexpr.node, alias=self._phys_alias(name)))
        if not rexpr.is_share:
            return PlainSlot(index=index, vtype=rexpr.vtype)
        slots = []
        for source, _ in rexpr.key.terms:
            if grouped:
                raise UnsupportedQueryError(
                    "grouped query outputs a row-dependent share; "
                    "aggregate or group by it instead"
                )
            slot = rowid_slots.get(source)
            if slot is None:
                slot = len(phys_items)
                handle = scope.handle(source)
                phys_items.append(
                    ast.SelectItem(
                        expr=handle.rowid_expr, alias=self._hidden_name()
                    )
                )
                rowid_slots[source] = slot
            slots.append((source, slot))
        return ShareSlot(
            index=index, key=rexpr.key, vtype=rexpr.vtype, rowid_slots=tuple(slots)
        )

    def _phys_alias(self, name: str) -> str:
        return name

    def _hidden_name(self) -> str:
        self._hidden_counter += 1
        return f"__h{self._hidden_counter}"

    @staticmethod
    def _output_name(item: ast.SelectItem, i: int, used: set) -> str:
        if item.alias:
            base = item.alias
        elif isinstance(item.expr, ast.Column):
            base = item.expr.name
        elif isinstance(item.expr, ast.Aggregate):
            base = item.expr.func
        else:
            base = f"_col{i}"
        name = base
        suffix = 1
        while name in used:
            name = f"{base}_{suffix}"
            suffix += 1
        used.add(name)
        return name

    def _expand_stars(self, items, scope: Scope):
        out = []
        for item in items:
            if not isinstance(item.expr, ast.Star):
                out.append(item)
                continue
            bindings = (
                [item.expr.table] if item.expr.table else scope.all_bindings()
            )
            for binding in bindings:
                for column in scope.binding_columns(binding):
                    out.append(
                        ast.SelectItem(expr=ast.Column(column, table=binding))
                    )
        return out

    def _query_has_aggregates(self, query: ast.Select) -> bool:
        roots = [item.expr for item in query.items]
        if query.having is not None:
            roots.append(query.having)
        roots.extend(o.expr for o in query.order_by)
        return any(
            isinstance(node, ast.Aggregate)
            for root in roots
            for node in ast.walk(root)
        )

    # -- ORDER BY -------------------------------------------------------------------

    def _rewrite_order_by(self, query, scope, user_items, outputs, output_rexprs):
        alias_map = {}
        for item, output, rexpr in zip(user_items, outputs, output_rexprs):
            alias_map[output.name] = (output, rexpr)
            if item.alias:
                alias_map[item.alias] = (output, rexpr)
        out = []
        for order_item in query.order_by:
            expr = order_item.expr
            if (
                isinstance(expr, ast.Column)
                and expr.table is None
                and expr.name in alias_map
            ):
                output, rexpr = alias_map[expr.name]
                if isinstance(output.spec, PlainSlot):
                    node = ast.Column(output.name)
                elif rexpr is not None:
                    node = self._order_token(rexpr, scope).node
                else:
                    raise UnsupportedQueryError(
                        f"cannot ORDER BY proxy-computed column {expr.name!r}"
                    )
            else:
                rexpr = self._rewrite_expr(expr, scope)
                node = (
                    self._order_token(rexpr, scope).node
                    if rexpr.is_share
                    else rexpr.node
                )
            out.append(ast.OrderItem(expr=node, descending=order_item.descending))
        return tuple(out)

    def _order_token(self, rexpr: RExpr, scope: Scope) -> RExpr:
        mask_site = self._new_sign_mask_site()
        rho = mask_site.draw(self.rng)
        masked = self._keyupdate(
            rexpr,
            keyops.reveal_key(self.keys, rho),
            scope,
            remask=(mask_site, self._reveal_target),
        )
        self._leak("order_token", "ORDER BY on sensitive expression")
        node = ast.FuncCall(
            "sdb_signed", (masked.node, ast.Literal(self.keys.n))
        )
        return RExpr(node=node, vtype=ValueType.int_())

    # -- derived tables / subqueries ----------------------------------------------------

    def _rewrite_inner(self, query: ast.Select, outer: Scope):
        """Rewrite a derived-table query; returns (select, columns, handles)."""
        scope, from_clause = self._build_scope(query, outer=outer)
        where = (
            self._rewrite_predicate(query.where, scope)
            if query.where is not None
            else None
        )
        group_by = self._rewrite_group_by(query, scope)
        user_items = self._expand_stars(query.items, scope)

        phys_items: list[ast.SelectItem] = []
        columns: dict[str, DerivedColumn] = {}
        used_names: set[str] = set()
        needed_sources: dict[str, SourceHandle] = {}

        for i, item in enumerate(user_items):
            name = self._output_name(item, i, used_names)
            if self._needs_post(item.expr, scope):
                raise UnsupportedQueryError(
                    "division on sensitive data inside a derived table; "
                    "move it to the outer query"
                )
            rexpr = self._rewrite_expr(item.expr, scope)
            phys_items.append(ast.SelectItem(expr=rexpr.node, alias=name))
            columns[name] = DerivedColumn(name=name, vtype=rexpr.vtype, key=rexpr.key)
            if rexpr.is_share:
                for source, _ in rexpr.key.terms:
                    needed_sources[source] = scope.handle(source)

        grouped = bool(query.group_by)
        handles = []
        if needed_sources and grouped:
            raise UnsupportedQueryError(
                "grouped derived table exports row-dependent shares"
            )
        for source, handle in needed_sources.items():
            phys_items.append(
                ast.SelectItem(expr=handle.s_expr, alias=f"__s_{source}")
            )
            phys_items.append(
                ast.SelectItem(expr=handle.rowid_expr, alias=f"__rowid_{source}")
            )
            handles.append(handle)

        having = (
            self._rewrite_predicate(query.having, scope)
            if query.having is not None
            else None
        )

        order_by = []
        for order_item in query.order_by:
            # inner ORDER BY only matters combined with LIMIT; aliases of
            # plain outputs resolve by name, everything else is rewritten
            expr = order_item.expr
            if (
                isinstance(expr, ast.Column)
                and expr.table is None
                and expr.name in columns
                and columns[expr.name].key is None
            ):
                node = ast.Column(expr.name)
            else:
                rexpr = self._rewrite_expr(expr, scope)
                node = (
                    self._order_token(rexpr, scope).node
                    if rexpr.is_share
                    else rexpr.node
                )
            order_by.append(
                ast.OrderItem(expr=node, descending=order_item.descending)
            )

        rewritten = ast.Select(
            items=tuple(phys_items),
            from_clause=from_clause,
            where=where,
            group_by=group_by,
            having=having,
            order_by=tuple(order_by),
            limit=query.limit,
            distinct=query.distinct,
        )
        return rewritten, columns, handles

    def _rewrite_scalar_subquery(self, expr: ast.ScalarSubquery, scope: Scope) -> RExpr:
        inner, columns, _ = self._rewrite_inner(expr.query, scope)
        if len(columns) != 1:
            raise RewriteError("scalar subquery must return exactly one column")
        col = next(iter(columns.values()))
        if col.key is not None and col.key.terms:
            raise UnsupportedQueryError(
                "scalar subquery returns a row-dependent share; aggregate it"
            )
        return RExpr(
            node=ast.ScalarSubquery(query=inner), vtype=col.vtype, key=col.key
        )

    # -- predicates -----------------------------------------------------------------

    def _rewrite_predicate(self, expr: ast.Expr, scope: Scope) -> ast.Expr:
        if isinstance(expr, ast.BinaryOp) and expr.op in ("and", "or"):
            return ast.BinaryOp(
                op=expr.op,
                left=self._rewrite_predicate(expr.left, scope),
                right=self._rewrite_predicate(expr.right, scope),
            )
        if isinstance(expr, ast.UnaryOp) and expr.op == "not":
            return ast.UnaryOp(
                op="not", operand=self._rewrite_predicate(expr.operand, scope)
            )
        if isinstance(expr, ast.BinaryOp) and expr.op in ast.COMPARISON_OPS:
            return self._rewrite_comparison(expr, scope)
        if isinstance(expr, ast.Between):
            return self._rewrite_between(expr, scope)
        if isinstance(expr, ast.InList):
            return self._rewrite_in_list(expr, scope)
        if isinstance(expr, ast.InSubquery):
            return self._rewrite_in_subquery(expr, scope)
        if isinstance(expr, ast.Exists):
            inner, _, _ = self._rewrite_inner(expr.query, scope)
            return ast.Exists(query=inner, negated=expr.negated)
        if isinstance(expr, ast.Like):
            return self._rewrite_like(expr, scope)
        if isinstance(expr, ast.IsNull):
            subject = self._rewrite_expr(expr.subject, scope)
            return ast.IsNull(subject=subject.node, negated=expr.negated)
        rexpr = self._rewrite_expr(expr, scope)
        if rexpr.is_share:
            raise UnsupportedQueryError(
                "a sensitive value cannot be used directly as a predicate"
            )
        return rexpr.node

    def _rewrite_comparison(self, expr: ast.BinaryOp, scope: Scope) -> ast.Expr:
        left, right = expr.left, expr.right
        if self._comparison_needs_normalization(expr, scope):
            left, right = self._normalize_fractions(expr, scope)
        l = self._rewrite_expr(left, scope)
        r = self._rewrite_expr(right, scope)
        return self._compare(expr.op, l, r, scope, site=expr.to_sql())

    def _rewrite_between(self, expr: ast.Between, scope: Scope) -> ast.Expr:
        subject = self._rewrite_expr(expr.subject, scope)
        low = self._rewrite_expr(expr.low, scope)
        high = self._rewrite_expr(expr.high, scope)
        if not (subject.is_share or low.is_share or high.is_share):
            return ast.Between(
                subject=subject.node, low=low.node, high=high.node,
                negated=expr.negated,
            )
        ge = self._compare(">=", subject, low, scope, site=expr.to_sql())
        le = self._compare("<=", subject, high, scope, site=expr.to_sql())
        both = ast.BinaryOp(op="and", left=ge, right=le)
        return ast.UnaryOp(op="not", operand=both) if expr.negated else both

    def _rewrite_in_list(self, expr: ast.InList, scope: Scope) -> ast.Expr:
        subject = self._rewrite_expr(expr.subject, scope)
        items = [self._rewrite_expr(item, scope) for item in expr.items]
        if not subject.is_share and not any(i.is_share for i in items):
            return ast.InList(
                subject=subject.node,
                items=tuple(i.node for i in items),
                negated=expr.negated,
            )
        mask_site = self._new_token_site()
        token_m = self._draw_token(mask_site)
        self._leak("token", f"IN-list membership: {expr.subject.to_sql()}")
        subject_token = self._as_token(subject, token_m, scope, site=mask_site)
        item_tokens = tuple(
            self._as_token(
                i, token_m, scope, as_vtype=subject.vtype, site=mask_site
            ).node
            for i in items
        )
        return ast.InList(
            subject=subject_token.node, items=item_tokens, negated=expr.negated
        )

    def _rewrite_in_subquery(self, expr: ast.InSubquery, scope: Scope) -> ast.Expr:
        subject = self._rewrite_expr(expr.subject, scope)
        inner_scope, inner_from = self._build_scope(expr.query, outer=scope)
        inner_where = (
            self._rewrite_predicate(expr.query.where, inner_scope)
            if expr.query.where is not None
            else None
        )
        inner_group = self._rewrite_group_by(expr.query, inner_scope)
        inner_items = self._expand_stars(expr.query.items, inner_scope)
        if len(inner_items) != 1:
            raise RewriteError("IN subquery must return one column")
        inner_rexpr = self._rewrite_expr(inner_items[0].expr, inner_scope)

        if not subject.is_share and not inner_rexpr.is_share:
            inner_select = ast.Select(
                items=(ast.SelectItem(expr=inner_rexpr.node, alias="v"),),
                from_clause=inner_from,
                where=inner_where,
                group_by=inner_group,
                having=(
                    self._rewrite_predicate(expr.query.having, inner_scope)
                    if expr.query.having is not None
                    else None
                ),
                distinct=expr.query.distinct,
            )
            return ast.InSubquery(
                subject=subject.node, query=inner_select, negated=expr.negated
            )

        mask_site = self._new_token_site()
        token_m = self._draw_token(mask_site)
        self._leak("token", f"IN-subquery membership: {expr.subject.to_sql()}")
        share_vtype = (subject if subject.is_share else inner_rexpr).vtype
        subject_token = self._as_token(
            subject, token_m, scope, as_vtype=share_vtype, site=mask_site
        )
        inner_token = self._as_token(
            inner_rexpr, token_m, inner_scope, as_vtype=share_vtype, site=mask_site
        )
        inner_select = ast.Select(
            items=(ast.SelectItem(expr=inner_token.node, alias="v"),),
            from_clause=inner_from,
            where=inner_where,
            group_by=inner_group,
            having=(
                self._rewrite_predicate(expr.query.having, inner_scope)
                if expr.query.having is not None
                else None
            ),
            distinct=expr.query.distinct,
        )
        return ast.InSubquery(
            subject=subject_token.node, query=inner_select, negated=expr.negated
        )

    def _rewrite_like(self, expr: ast.Like, scope: Scope) -> ast.Expr:
        subject = self._rewrite_expr(expr.subject, scope)
        if subject.is_share:
            raise UnsupportedQueryError(
                "LIKE on a sensitive column is not supported by the secure "
                "operator suite (pattern matching has no share-space protocol)"
            )
        return ast.Like(
            subject=subject.node, pattern=expr.pattern, negated=expr.negated
        )

    # -- comparison / token protocols ---------------------------------------------------

    def _compare(self, op, l: RExpr, r: RExpr, scope: Scope, site: str) -> ast.Expr:
        if not l.is_share and not r.is_share:
            return ast.BinaryOp(op=op, left=l.node, right=r.node)

        if op in ("=", "<>"):
            lt, rt = self._equality_tokens(l, r, scope, site)
            return ast.BinaryOp(op=op, left=lt.node, right=rt.node)

        if not (l.vtype.is_orderable and r.vtype.is_orderable):
            raise UnsupportedQueryError(f"cannot order-compare: {site}")

        diff = self._sub(l, r, scope)
        mask_site = self._new_sign_mask_site()
        rho = mask_site.draw(self.rng)
        masked = self._keyupdate(
            diff,
            keyops.reveal_key(self.keys, rho),
            scope,
            remask=(mask_site, self._reveal_target),
        )
        self._leak("compare", f"comparison sign: {site}")
        sign = ast.FuncCall("sdb_sign", (masked.node, ast.Literal(self.keys.n)))
        return ast.BinaryOp(op=op, left=sign, right=ast.Literal(0))

    def _equality_tokens(self, l: RExpr, r: RExpr, scope: Scope, site: str):
        """Tokenize both sides of an equality with aligned encodings."""
        mask_site = self._new_token_site()
        token_m = self._draw_token(mask_site)
        self._leak("token", f"equality: {site}")
        if l.vtype.kind == "string" or r.vtype.kind == "string":
            if l.is_share and r.is_share and l.vtype.width != r.vtype.width:
                raise UnsupportedQueryError(
                    "equality between sensitive strings of different widths "
                    f"({l.vtype.width} vs {r.vtype.width}): {site}"
                )
            width = (l.vtype if l.is_share else r.vtype).width
            wide = ValueType.string(width)
            lt = self._as_token(l, token_m, scope, as_vtype=wide, site=mask_site)
            rt = self._as_token(r, token_m, scope, as_vtype=wide, site=mask_site)
            return lt, rt
        if l.vtype.is_numeric and r.vtype.is_numeric:
            scale = max(l.vtype.scale, r.vtype.scale)
            l = self._rescale(l, scale)
            r = self._rescale(r, scale)
            as_vtype = ValueType.decimal(scale) if scale else ValueType.int_()
            lt = self._as_token(l, token_m, scope, as_vtype=as_vtype, site=mask_site)
            rt = self._as_token(r, token_m, scope, as_vtype=as_vtype, site=mask_site)
            return lt, rt
        lt = self._as_token(l, token_m, scope, site=mask_site)
        rt = self._as_token(r, token_m, scope, site=mask_site)
        return lt, rt

    def _as_token(
        self,
        rexpr: RExpr,
        token_m: int,
        scope: Scope,
        as_vtype: ValueType = None,
        site: Optional[MaskSite] = None,
    ) -> RExpr:
        """Re-encrypt (or encode) a value under the token key ``<m, 0>``.

        When ``site`` is given, every literal this emits is registered with
        the mask site so a cached plan can re-draw ``token_m`` per bind.
        """
        n = self.keys.n
        target = KeyExpr.make(token_m)
        if rexpr.is_share:
            remask = None if site is None else (site, self._token_target)
            return self._keyupdate(rexpr, target, scope, remask=remask)
        vtype = as_vtype or rexpr.vtype
        inv = ntheory.modinv(token_m, n)
        constant = self._fold(rexpr.node)
        if constant is not _NOT_CONST:
            ring = self._ring(constant, vtype, vtype.scale)
            node = ast.Literal(ring * inv % n)
            if site is not None:
                site.add(
                    node,
                    lambda fresh, _r=ring: _r * ntheory.modinv(fresh, n) % n,
                )
            return RExpr(node=node, vtype=vtype, key=target)
        param = _param_of(rexpr.node)
        if param is not None:
            node = self._defer_param(
                param[0], vtype, vtype.scale, inv, param[1], site=site
            )
            return RExpr(node=node, vtype=vtype, key=target)
        enc = self._enc_node(
            RExpr(node=rexpr.node, vtype=vtype), vtype.scale
        )
        inv_node = ast.Literal(inv)
        if site is not None:
            site.add(inv_node, lambda fresh: ntheory.modinv(fresh, n))
        node = ast.FuncCall(
            "sdb_mul_plain",
            (enc, inv_node, ast.Literal(0), ast.Literal(n)),
        )
        return RExpr(node=node, vtype=vtype, key=target)

    def _tokenize(self, rexpr: RExpr, scope: Scope, site: str) -> RExpr:
        mask_site = self._new_token_site()
        token_m = self._draw_token(mask_site)
        self._leak("token", site)
        return self._as_token(rexpr, token_m, scope, site=mask_site)

    def _fresh_token_m(self) -> int:
        return ntheory.random_unit(self.keys.n, self.rng)

    # -- mask sites (bind-time re-masking of cached plans) -------------------

    def _new_token_site(self) -> MaskSite:
        """A fresh token-draw site (equality / membership / DISTINCT)."""
        n = self.keys.n
        site = MaskSite(
            "token",
            lambda rng: ntheory.random_unit(n, rng),
            index=len(self._mask_sites),
        )
        self._mask_sites.append(site)
        return site

    def _new_sign_mask_site(self) -> MaskSite:
        """A fresh comparison-mask site (sign / order protocols)."""
        site = MaskSite(
            "sign-mask",
            lambda rng: self.policy.random_mask(self.keys, rng),
            index=len(self._mask_sites),
        )
        self._mask_sites.append(site)
        return site

    def _token_target(self, fresh: int) -> KeyExpr:
        return KeyExpr.make(fresh)

    def _reveal_target(self, fresh: int) -> KeyExpr:
        return keyops.reveal_key(self.keys, fresh)

    def _draw_token(self, site: MaskSite) -> int:
        """Draw a token unit and remember which site produced it.

        The registry lets the rewriter notice when that token key later
        becomes decryption-relevant (an output ShareSlot key, or the fixed
        source of a chained key update) and pin the site.
        """
        token_m = site.draw(self.rng)
        self._token_sites_by_m[token_m % self.keys.n] = site
        return token_m

    def _pin_output_token_sites(self, outputs) -> None:
        """Pin token sites whose keys the decryption plan recorded."""

        def walk(spec):
            if isinstance(spec, ShareSlot):
                site = self._token_sites_by_m.get(spec.key.m % self.keys.n)
                if site is not None:
                    site.pinned = True
            elif isinstance(spec, PostOp):
                walk(spec.left)
                if spec.right is not None:
                    walk(spec.right)

        for output in outputs:
            walk(output.spec)

    # -- arithmetic on shares -------------------------------------------------------------

    def _rewrite_expr(self, expr: ast.Expr, scope: Scope) -> RExpr:
        memo = scope.memo.get(expr)
        if memo is not None:
            return memo

        if isinstance(expr, ast.Literal):
            return RExpr(node=expr, vtype=_literal_vtype(expr.value))
        if isinstance(expr, ast.Placeholder):
            types = self._param_types
            vtype = (
                types[expr.index]
                if expr.index < len(types) and types[expr.index] is not None
                else ValueType.int_()
            )
            return RExpr(node=expr, vtype=vtype)
        if isinstance(expr, ast.Interval):
            return RExpr(node=expr, vtype=ValueType.int_())
        if isinstance(expr, ast.Column):
            return scope.resolve(expr.name, expr.table)
        if isinstance(expr, ast.BinaryOp):
            return self._rewrite_binary(expr, scope)
        if isinstance(expr, ast.UnaryOp):
            return self._rewrite_unary(expr, scope)
        if isinstance(expr, ast.Aggregate):
            return self._rewrite_aggregate(expr, scope)
        if isinstance(expr, ast.CaseWhen):
            return self._rewrite_case(expr, scope)
        if isinstance(expr, ast.ScalarSubquery):
            return self._rewrite_scalar_subquery(expr, scope)
        if isinstance(expr, ast.Extract):
            operand = self._rewrite_expr(expr.operand, scope)
            if operand.is_share:
                raise UnsupportedQueryError(
                    "EXTRACT on a sensitive date has no share-space protocol; "
                    "store the extracted part as its own column"
                )
            return RExpr(
                node=ast.Extract(unit=expr.unit, operand=operand.node),
                vtype=ValueType.int_(),
            )
        if isinstance(expr, ast.Substring):
            operand = self._rewrite_expr(expr.operand, scope)
            if operand.is_share:
                raise UnsupportedQueryError(
                    "SUBSTRING on a sensitive string has no share-space protocol"
                )
            return RExpr(
                node=ast.Substring(
                    operand=operand.node, start=expr.start, length=expr.length
                ),
                vtype=ValueType.string(width=64),
            )
        if isinstance(
            expr, (ast.Between, ast.InList, ast.InSubquery, ast.Exists,
                   ast.Like, ast.IsNull)
        ):
            # a predicate in value position (e.g. inside CASE WHEN handled
            # elsewhere); rewrite as predicate and type it boolean
            return RExpr(
                node=self._rewrite_predicate(expr, scope), vtype=ValueType.bool_()
            )
        raise RewriteError(f"cannot rewrite expression {type(expr).__name__}")

    def _rewrite_binary(self, expr: ast.BinaryOp, scope: Scope) -> RExpr:
        if expr.op in ("and", "or") or expr.op in ast.COMPARISON_OPS:
            return RExpr(
                node=self._rewrite_predicate(expr, scope), vtype=ValueType.bool_()
            )
        l = self._rewrite_expr(expr.left, scope)
        r = self._rewrite_expr(expr.right, scope)
        if not l.is_share and not r.is_share:
            return RExpr(
                node=ast.BinaryOp(op=expr.op, left=l.node, right=r.node),
                vtype=_combine_plain_vtype(expr.op, l.vtype, r.vtype),
            )
        if expr.op == "+":
            return self._add(l, r, scope)
        if expr.op == "-":
            return self._sub(l, r, scope)
        if expr.op == "*":
            return self._mul(l, r, scope)
        if expr.op == "/":
            raise UnsupportedQueryError(
                "division on sensitive data must be normalized (comparison) "
                "or computed at the proxy (output position)"
            )
        if expr.op == "||":
            raise UnsupportedQueryError("concatenation of sensitive strings")
        raise RewriteError(f"unknown operator {expr.op!r}")

    def _rewrite_unary(self, expr: ast.UnaryOp, scope: Scope) -> RExpr:
        if expr.op == "not":
            return RExpr(
                node=self._rewrite_predicate(expr, scope), vtype=ValueType.bool_()
            )
        operand = self._rewrite_expr(expr.operand, scope)
        if not operand.is_share:
            return RExpr(
                node=ast.UnaryOp(op="-", operand=operand.node), vtype=operand.vtype
            )
        return self._mul_const(operand, -1, 0)

    # EE / EP multiplication ------------------------------------------------------------

    def _mul(self, l: RExpr, r: RExpr, scope: Scope) -> RExpr:
        if l.is_share and r.is_share:
            node = ast.FuncCall(
                "sdb_mul", (l.node, r.node, ast.Literal(self.keys.n))
            )
            key = keyops.multiply_keys(self.keys, l.key, r.key)
            return RExpr(node=node, vtype=_mul_vtype(l.vtype, r.vtype), key=key)
        share, plain = (l, r) if l.is_share else (r, l)
        constant = self._fold(plain.node)
        if constant is not _NOT_CONST:
            if constant is None:
                return RExpr(node=ast.Literal(None), vtype=share.vtype, key=share.key)
            scale = _numeric_scale(plain.vtype, constant)
            ring = self._ring(constant, plain.vtype, scale)
            if ring == 0:
                return RExpr(
                    node=ast.Literal(0),
                    vtype=_mul_vtype(share.vtype, plain.vtype),
                    key=share.key,
                )
            return self._mul_const(share, ring, scale)
        param = _param_of(plain.node)
        if param is not None:
            # defer the constant-factor path: ring-encode at bind time
            scale = plain.vtype.scale if plain.vtype.kind == "decimal" else 0
            node = ast.FuncCall(
                "sdb_mul_plain",
                (
                    share.node,
                    self._defer_param(param[0], plain.vtype, scale, None, param[1]),
                    ast.Literal(0),
                    ast.Literal(self.keys.n),
                ),
            )
            vtype = share.vtype
            if scale or vtype.kind == "decimal":
                vtype = ValueType.decimal(vtype.scale + scale)
            return RExpr(node=node, vtype=vtype, key=share.key)
        # non-constant insensitive operand: scale it into the ring at the SP
        scale = plain.vtype.scale if plain.vtype.kind == "decimal" else 0
        node = ast.FuncCall(
            "sdb_mul_plain",
            (
                share.node,
                plain.node,
                ast.Literal(scale),
                ast.Literal(self.keys.n),
            ),
        )
        vtype = _mul_vtype(share.vtype, plain.vtype)
        return RExpr(node=node, vtype=vtype, key=share.key)

    def _mul_const(self, share: RExpr, ring_factor: int, added_scale: int) -> RExpr:
        """Multiply a share by a ring constant at the SP (key unchanged)."""
        node = ast.FuncCall(
            "sdb_mul_plain",
            (
                share.node,
                ast.Literal(ring_factor),
                ast.Literal(0),
                ast.Literal(self.keys.n),
            ),
        )
        vtype = share.vtype
        if added_scale or vtype.kind == "decimal":
            vtype = ValueType.decimal(vtype.scale + added_scale)
        return RExpr(node=node, vtype=vtype, key=share.key)

    # EE / EP addition ---------------------------------------------------------------------

    def _add(self, l: RExpr, r: RExpr, scope: Scope) -> RExpr:
        if l.is_share and r.is_share:
            scale = max(l.vtype.scale, r.vtype.scale)
            l = self._rescale(l, scale)
            r = self._rescale(r, scale)
            if l.key != r.key:
                # align to whichever key still has row-id terms, so we never
                # create a deterministic intermediate unnecessarily
                if not l.key.terms and r.key.terms:
                    l = self._keyupdate(l, r.key, scope)
                else:
                    r = self._keyupdate(r, l.key, scope)
            node = ast.FuncCall(
                "sdb_add", (l.node, r.node, ast.Literal(self.keys.n))
            )
            return RExpr(
                node=node, vtype=_add_vtype(l.vtype, r.vtype, scale), key=l.key
            )
        share, plain = (l, r) if l.is_share else (r, l)
        scale = max(share.vtype.scale, plain.vtype.scale)
        share = self._rescale(share, scale) if share.vtype.is_numeric else share
        encrypted = self._encrypt_plain_under(plain, share.key, scale, scope)
        node = ast.FuncCall(
            "sdb_add", (share.node, encrypted.node, ast.Literal(self.keys.n))
        )
        return RExpr(
            node=node, vtype=_add_vtype(share.vtype, plain.vtype, scale),
            key=share.key,
        )

    def _sub(self, l: RExpr, r: RExpr, scope: Scope) -> RExpr:
        if r.is_share:
            negated = self._mul_const(r, -1, 0)
            negated = RExpr(node=negated.node, vtype=r.vtype, key=r.key)
            return self._add(l, negated, scope)
        # r is plain: negate the plain side
        if isinstance(r.node, ast.Literal) and isinstance(r.node.value, (int, float)):
            neg = RExpr(node=ast.Literal(-r.node.value), vtype=r.vtype)
        else:
            neg = RExpr(node=ast.UnaryOp(op="-", operand=r.node), vtype=r.vtype)
        # dates subtract to day counts; the ring encoding already does this
        if r.vtype.kind == "date":
            constant = self._fold(r.node)
            if constant is _NOT_CONST:
                raise UnsupportedQueryError(
                    "subtracting a non-constant date from a sensitive value"
                )
            ring = self._ring(constant, r.vtype, 0)
            neg = RExpr(node=ast.Literal(-ring), vtype=ValueType.int_())
        result = self._add(l, neg, scope)
        vtype = result.vtype
        if l.vtype.kind == "date" and r.vtype.kind == "date":
            vtype = ValueType.int_()
        return RExpr(node=result.node, vtype=vtype, key=result.key)

    def _rescale(self, rexpr: RExpr, target_scale: int) -> RExpr:
        if not rexpr.vtype.is_numeric or rexpr.vtype.scale == target_scale:
            return rexpr
        if rexpr.vtype.scale > target_scale:
            raise RewriteError("cannot reduce scale of a share")
        diff = target_scale - rexpr.vtype.scale
        if not rexpr.is_share:
            return rexpr  # plain values are scaled when ring-encoded
        scaled = self._mul_const(rexpr, 10 ** diff, 0)
        return RExpr(
            node=scaled.node, vtype=ValueType.decimal(target_scale), key=rexpr.key
        )

    def _encrypt_plain_under(
        self, plain: RExpr, key: KeyExpr, scale: int, scope: Scope
    ) -> RExpr:
        """Produce a share of an insensitive value under ``key``."""
        constant = self._fold(plain.node)
        vtype = plain.vtype
        if not key.terms:
            # row-independent key: encryption is value * m^-1
            inv = ntheory.modinv(key.m, self.keys.n)
            if constant is not _NOT_CONST:
                ring = self._ring(constant, vtype, scale)
                return RExpr(
                    node=ast.Literal(ring * inv % self.keys.n), vtype=vtype, key=key
                )
            param = _param_of(plain.node)
            if param is not None:
                node = self._defer_param(param[0], vtype, scale, inv, param[1])
                return RExpr(node=node, vtype=vtype, key=key)
            enc = self._enc_node(plain, scale)
            node = ast.FuncCall(
                "sdb_mul_plain",
                (enc, ast.Literal(inv), ast.Literal(0), ast.Literal(self.keys.n)),
            )
            return RExpr(node=node, vtype=vtype, key=key)
        # re-key an S column (an encryption of 1) to the target key, then
        # scale it by the plain value
        source = key.terms[0][0]
        handle = scope.handle(source)
        one = RExpr(
            node=handle.s_expr,
            vtype=ValueType.int_(),
            key=KeyExpr.from_column_key(handle.aux_key, source),
        )
        one_under_key = self._keyupdate(one, key, scope)
        if constant is not _NOT_CONST:
            ring = self._ring(constant, vtype, scale)
            if ring == 0:
                return RExpr(node=ast.Literal(0), vtype=vtype, key=key)
            node = ast.FuncCall(
                "sdb_mul_plain",
                (
                    one_under_key.node,
                    ast.Literal(ring),
                    ast.Literal(0),
                    ast.Literal(self.keys.n),
                ),
            )
            return RExpr(node=node, vtype=vtype, key=key)
        param = _param_of(plain.node)
        if param is not None:
            node = ast.FuncCall(
                "sdb_mul_plain",
                (
                    one_under_key.node,
                    self._defer_param(param[0], vtype, scale, None, param[1]),
                    ast.Literal(0),
                    ast.Literal(self.keys.n),
                ),
            )
            return RExpr(node=node, vtype=vtype, key=key)
        enc = self._enc_node(plain, scale)
        node = ast.FuncCall(
            "sdb_mul",
            (one_under_key.node, enc, ast.Literal(self.keys.n)),
        )
        return RExpr(node=node, vtype=vtype, key=key)

    def _enc_node(self, plain: RExpr, scale: int) -> ast.Expr:
        """SP-side ring encoding of an insensitive expression."""
        vtype = plain.vtype
        return ast.FuncCall(
            "sdb_enc",
            (
                plain.node,
                ast.Literal(vtype.kind),
                ast.Literal(scale),
                ast.Literal(vtype.width),
                ast.Literal(self.keys.n),
            ),
        )

    # -- key update --------------------------------------------------------------------------

    def _keyupdate(
        self, rexpr: RExpr, target: KeyExpr, scope: Scope, remask=None
    ) -> RExpr:
        """Re-encrypt ``rexpr`` to ``target`` via ``sdb_keyupdate``.

        ``remask`` is ``(site, target_of)`` for updates whose target derives
        from a mask-site draw (``target_of(fresh)`` rebuilds it): the
        emitted ``p``/``q`` literals register with the site so a cached
        plan recomputes them from a fresh draw per bind.
        """
        if rexpr.key == target:
            return rexpr
        src_site = self._token_sites_by_m.get(rexpr.key.m % self.keys.n)
        if src_site is not None:
            # this update's p/q coefficients capture the token key as a
            # fixed source; the site can no longer re-draw per bind
            src_site.pinned = True
        current_terms = rexpr.key.term_map()
        target_terms = target.term_map()
        helper_keys = {}
        for src in set(current_terms) | set(target_terms):
            if current_terms.get(src, 0) != target_terms.get(src, 0):
                helper_keys[src] = scope.handle(src).aux_key
        params = keyops.key_update_params(
            self.keys, rexpr.key, target, helper_keys
        )
        p_node = ast.Literal(params.p)
        args = [rexpr.node, p_node, ast.Literal(self.keys.n)]
        q_nodes = []
        for source, q in params.q_by_source:
            q_node = ast.Literal(q)
            args.append(scope.handle(source).s_expr)
            args.append(q_node)
            q_nodes.append((source, q_node))
        if remask is not None:
            site, target_of = remask
            keys, src_key = self.keys, rexpr.key
            helpers = dict(helper_keys)

            def fresh_params(fresh):
                return keyops.key_update_params(
                    keys, src_key, target_of(fresh), helpers
                )

            site.add(p_node, lambda fresh: fresh_params(fresh).p)
            for source, q_node in q_nodes:
                site.add(
                    q_node,
                    lambda fresh, _s=source: dict(
                        fresh_params(fresh).q_by_source
                    )[_s],
                )
        node = ast.FuncCall("sdb_keyupdate", tuple(args))
        return RExpr(node=node, vtype=rexpr.vtype, key=target)

    # -- aggregates ---------------------------------------------------------------------------

    def _rewrite_aggregate(self, expr: ast.Aggregate, scope: Scope) -> RExpr:
        memo = scope.memo.get(expr)
        if memo is not None:
            return memo
        result = self._rewrite_aggregate_uncached(expr, scope)
        scope.memo[expr] = result
        return result

    def _rewrite_aggregate_uncached(self, expr: ast.Aggregate, scope: Scope) -> RExpr:
        if expr.arg is None:  # COUNT(*)
            return RExpr(node=expr, vtype=ValueType.int_())
        arg = self._rewrite_expr(expr.arg, scope)
        if not arg.is_share:
            node = ast.Aggregate(
                func=expr.func, arg=arg.node, distinct=expr.distinct
            )
            vtype = arg.vtype if expr.func != "count" else ValueType.int_()
            if expr.func == "avg":
                vtype = ValueType.decimal(max(arg.vtype.scale, 2))
            return RExpr(node=node, vtype=vtype)

        if expr.func == "count":
            counted = arg.node
            if expr.distinct:
                token = self._tokenize(
                    arg, scope, site=f"COUNT(DISTINCT {expr.arg.to_sql()})"
                )
                counted = token.node
            return RExpr(
                node=ast.Aggregate(func="count", arg=counted, distinct=expr.distinct),
                vtype=ValueType.int_(),
            )

        if expr.distinct:
            raise UnsupportedQueryError(
                f"{expr.func.upper()}(DISTINCT ...) on sensitive data"
            )

        if expr.func == "sum":
            target, _ = keyops.token_key(self.keys, self.rng)
            self._leak("sum_align", f"SUM alignment: {expr.arg.to_sql()}")
            aligned = self._keyupdate(arg, target, scope)
            node = ast.FuncCall(
                "sdb_agg_sum", (aligned.node, ast.Literal(self.keys.n))
            )
            return RExpr(node=node, vtype=arg.vtype, key=target)

        if expr.func in ("min", "max"):
            mask_site = self._new_sign_mask_site()
            rho = mask_site.draw(self.rng)
            masked = self._keyupdate(
                arg,
                keyops.reveal_key(self.keys, rho),
                scope,
                remask=(mask_site, self._reveal_target),
            )
            self._leak("order_token", f"{expr.func.upper()}: {expr.arg.to_sql()}")
            token = ast.FuncCall(
                "sdb_signed", (masked.node, ast.Literal(self.keys.n))
            )
            target, _ = keyops.token_key(self.keys, self.rng)
            aligned = self._keyupdate(arg, target, scope)
            node = ast.FuncCall(
                f"sdb_agg_{expr.func}", (token, aligned.node)
            )
            return RExpr(node=node, vtype=arg.vtype, key=target)

        if expr.func == "avg":
            raise UnsupportedQueryError(
                "AVG of sensitive data outside output position (normalize "
                "the comparison or select SUM and COUNT)"
            )
        raise RewriteError(f"unknown aggregate {expr.func!r}")

    # -- CASE ------------------------------------------------------------------------------------

    def _rewrite_case(self, expr: ast.CaseWhen, scope: Scope) -> RExpr:
        conditions = [self._rewrite_predicate(c, scope) for c, _ in expr.branches]
        branches = [self._rewrite_expr(b, scope) for _, b in expr.branches]
        default = (
            self._rewrite_expr(expr.default, scope)
            if expr.default is not None
            else None
        )
        all_branches = branches + ([default] if default is not None else [])
        if not any(b.is_share for b in all_branches):
            pairs = tuple(
                (c, b.node) for c, b in zip(conditions, branches)
            )
            return RExpr(
                node=ast.CaseWhen(
                    branches=pairs,
                    default=default.node if default is not None else None,
                ),
                vtype=all_branches[0].vtype,
            )
        scale = max(b.vtype.scale for b in all_branches)
        target = next(b for b in all_branches if b.is_share)
        target = self._rescale(target, scale)
        target_key = target.key

        def align(branch: RExpr) -> ast.Expr:
            if branch.is_share:
                branch = self._rescale(branch, scale)
                return self._keyupdate(branch, target_key, scope).node
            constant = self._fold(branch.node)
            if constant == 0 or constant is None:
                return ast.Literal(0 if constant == 0 else None)
            return self._encrypt_plain_under(
                branch, target_key, scale, scope
            ).node

        pairs = tuple(
            (c, align(b)) for c, b in zip(conditions, branches)
        )
        default_node = align(default) if default is not None else None
        vtype = target.vtype
        return RExpr(
            node=ast.CaseWhen(branches=pairs, default=default_node),
            vtype=vtype,
            key=target_key,
        )

    # -- output-position division (PostOp trees) ------------------------------------------------

    def _needs_post(self, expr: ast.Expr, scope: Scope) -> bool:
        """Does this output expression need proxy-side arithmetic?"""
        return self._contains_sensitive_fraction(expr, scope)

    def _contains_sensitive_fraction(self, expr: ast.Expr, scope: Scope) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.BinaryOp) and node.op == "/":
                if self._expr_sensitive(node, scope):
                    return True
            if (
                isinstance(node, ast.Aggregate)
                and node.func == "avg"
                and node.arg is not None
                and self._expr_sensitive(node.arg, scope)
            ):
                return True
        return False

    def _rewrite_post(self, expr, scope, phys_items, rowid_slots, grouped):
        """Build a PostOp tree for an output expression with divisions."""
        if isinstance(expr, ast.BinaryOp) and expr.op in ("+", "-", "*", "/"):
            if self._contains_sensitive_fraction(
                expr.left, scope
            ) or self._contains_sensitive_fraction(expr.right, scope) or expr.op == "/":
                left = self._rewrite_post(
                    expr.left, scope, phys_items, rowid_slots, grouped
                )
                right = self._rewrite_post(
                    expr.right, scope, phys_items, rowid_slots, grouped
                )
                return PostOp(op=expr.op, left=left, right=right)
        if (
            isinstance(expr, ast.Aggregate)
            and expr.func == "avg"
            and expr.arg is not None
            and self._expr_sensitive(expr.arg, scope)
        ):
            total = self._rewrite_post(
                ast.Aggregate(func="sum", arg=expr.arg, distinct=expr.distinct),
                scope, phys_items, rowid_slots, grouped,
            )
            count = self._rewrite_post(
                ast.Aggregate(func="count", arg=expr.arg, distinct=expr.distinct),
                scope, phys_items, rowid_slots, grouped,
            )
            return PostOp(op="/", left=total, right=count)
        constant = self._fold(expr)
        if constant is not _NOT_CONST:
            return Const(value=constant)
        param = _param_of(expr)
        if param is not None:
            # like Const: the value stays at the proxy, read at decrypt time
            return ParamRef(param=param[0], negate=param[1])
        rexpr = self._rewrite_expr(expr, scope)
        return self._leaf_spec(
            rexpr, self._hidden_name(), scope, phys_items, rowid_slots, grouped
        )

    def _expr_sensitive(self, expr: ast.Expr, scope: Scope) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Column):
                if scope.column_is_sensitive(node.name, node.table):
                    return True
            elif isinstance(node, (ast.ScalarSubquery, ast.InSubquery)):
                query = node.query
                child = self._sensitivity_scope(query, scope)
                for item in query.items:
                    if not isinstance(item.expr, ast.Star) and self._expr_sensitive(
                        item.expr, child
                    ):
                        return True
        return False

    def _sensitivity_scope(self, query: ast.Select, outer: Scope) -> Scope:
        """A lightweight scope for sensitivity checks (no rewriting)."""
        scope = Scope(outer=outer)
        self._collect_sensitivity_bindings(query.from_clause, scope)
        return scope

    def _collect_sensitivity_bindings(self, texpr, scope: Scope) -> None:
        if texpr is None:
            return
        if isinstance(texpr, ast.TableRef):
            if texpr.name in self.store:
                try:
                    scope.add_table(texpr.binding, self.store.table(texpr.name))
                except RewriteError:
                    pass
            return
        if isinstance(texpr, ast.Join):
            self._collect_sensitivity_bindings(texpr.left, scope)
            self._collect_sensitivity_bindings(texpr.right, scope)
            return
        if isinstance(texpr, ast.SubqueryRef):
            # treat a derived table's outputs conservatively: sensitive if
            # anything inside is sensitive
            child = self._sensitivity_scope(texpr.query, scope.outer)
            columns = {}
            for i, item in enumerate(texpr.query.items):
                if isinstance(item.expr, ast.Star):
                    continue
                name = item.alias or (
                    item.expr.name if isinstance(item.expr, ast.Column) else f"_col{i}"
                )
                sensitive = self._expr_sensitive(item.expr, child)
                columns[name] = DerivedColumn(
                    name=name,
                    vtype=ValueType.int_(),
                    key=KeyExpr.make(1) if sensitive else None,
                )
            try:
                scope.add_derived(texpr.alias, columns, [])
            except RewriteError:
                pass

    # -- fraction normalization for comparisons ------------------------------------------------

    def _comparison_needs_normalization(self, expr: ast.BinaryOp, scope) -> bool:
        def has_fraction(side) -> bool:
            for node in ast.walk(side):
                if isinstance(node, ast.BinaryOp) and node.op == "/":
                    return True
                if isinstance(node, ast.Aggregate) and node.func == "avg":
                    if node.arg is not None and self._expr_sensitive(node.arg, scope):
                        return True
                if isinstance(node, ast.ScalarSubquery):
                    for item in node.query.items:
                        child = self._sensitivity_scope(node.query, scope)
                        if not isinstance(item.expr, ast.Star) and _walk_has_fraction(
                            item.expr, child, self
                        ):
                            return True
            return False

        sensitive = self._expr_sensitive(expr.left, scope) or self._expr_sensitive(
            expr.right, scope
        )
        return sensitive and (has_fraction(expr.left) or has_fraction(expr.right))

    def _normalize_fractions(self, expr: ast.BinaryOp, scope: Scope):
        nl, dl = self._as_fraction(expr.left, scope)
        nr, dr = self._as_fraction(expr.right, scope)
        for den in (dl, dr):
            if den is not None and not _provably_positive(den):
                raise UnsupportedQueryError(
                    f"cannot prove divisor positive: {den.to_sql()}"
                )
        left = nl if dr is None else ast.BinaryOp(op="*", left=nl, right=dr)
        right = nr if dl is None else ast.BinaryOp(op="*", left=nr, right=dl)
        self._notes.append(
            f"normalized division by cross-multiplication: {expr.to_sql()}"
        )
        return left, right

    def _as_fraction(self, expr: ast.Expr, scope: Scope):
        """Symbolically split ``expr`` into (numerator, denominator|None)."""
        if isinstance(expr, ast.BinaryOp) and expr.op == "/":
            nl, dl = self._as_fraction(expr.left, scope)
            nr, dr = self._as_fraction(expr.right, scope)
            num = nl if dr is None else ast.BinaryOp(op="*", left=nl, right=dr)
            den = nr if dl is None else ast.BinaryOp(op="*", left=nr, right=dl)
            return num, den
        if isinstance(expr, ast.BinaryOp) and expr.op == "*":
            nl, dl = self._as_fraction(expr.left, scope)
            nr, dr = self._as_fraction(expr.right, scope)
            num = ast.BinaryOp(op="*", left=nl, right=nr)
            den = _mul_opt(dl, dr)
            return num, den
        if (
            isinstance(expr, ast.Aggregate)
            and expr.func == "avg"
            and expr.arg is not None
            and self._expr_sensitive(expr.arg, scope)
        ):
            return (
                ast.Aggregate(func="sum", arg=expr.arg, distinct=expr.distinct),
                ast.Aggregate(func="count", arg=expr.arg, distinct=expr.distinct),
            )
        if isinstance(expr, ast.ScalarSubquery):
            if len(expr.query.items) != 1:
                return expr, None
            child = self._sensitivity_scope(expr.query, scope)
            num, den = self._as_fraction(expr.query.items[0].expr, child)
            if den is None:
                return expr, None
            num_query = ast.Select(
                items=(ast.SelectItem(expr=num),),
                from_clause=expr.query.from_clause,
                where=expr.query.where,
                group_by=expr.query.group_by,
                having=expr.query.having,
            )
            den_query = ast.Select(
                items=(ast.SelectItem(expr=den),),
                from_clause=expr.query.from_clause,
                where=expr.query.where,
                group_by=expr.query.group_by,
                having=expr.query.having,
            )
            return (
                ast.ScalarSubquery(query=num_query),
                ast.ScalarSubquery(query=den_query),
            )
        return expr, None

    # -- parameter slots --------------------------------------------------------------------------
    #
    # Wherever the constant paths above fold a literal proxy-side (ring
    # encoding, token/key-inverse masking), a parameter marker defers that
    # same arithmetic to bind time: the rewritten query keeps a marker and
    # the plan records a ParamSlot describing the transform.  For a single
    # execution the SP sees exactly what it would have seen had the value
    # been inlined -- never the plaintext of a sensitive operand.  Across
    # executions, freshness comes from the plan's MaskSites: every
    # comparison mask and token drawn during this rewrite is recorded with
    # recompute closures, so the session layer defers them into extra bind
    # markers (RewrittenQuery.defer_masks) and re-draws them per execution.
    # Two binds of one cached plan therefore put unlinkable literals on the
    # wire, exactly as if the string had been re-rewritten.

    def _defer_param(
        self,
        param_index: int,
        vtype: ValueType,
        scale: int,
        factor: Optional[int],
        negate: bool,
        site: Optional[MaskSite] = None,
    ) -> ast.Expr:
        slot = len(self._param_slots)
        mask_site = mask_member = None
        if site is not None and factor is not None:
            # the factor is this site's token inverse: once the plan's
            # masks are deferred, it is recomputed from the fresh draw
            n = self.keys.n
            mask_site = site.index
            mask_member = site.add(
                None, lambda fresh: ntheory.modinv(fresh, n)
            )
        self._param_slots.append(
            ParamSlot(
                param=param_index,
                kind=vtype.kind,
                scale=scale,
                width=vtype.width,
                factor=factor,
                negate=negate,
                mask_site=mask_site,
                mask_member=mask_member if mask_member is not None else 0,
            )
        )
        return _SlotPlaceholder(index=slot)

    def _finalize_params(self, node):
        """Renumber surviving plain markers into passthrough slots."""
        from repro.sql.params import transform_nodes

        def leaf(sub):
            if isinstance(sub, _SlotPlaceholder):
                return sub
            if isinstance(sub, ast.Placeholder):
                slot = len(self._param_slots)
                self._param_slots.append(ParamSlot(param=sub.index))
                return _SlotPlaceholder(index=slot)
            return None

        return transform_nodes(node, leaf)

    # -- helpers ----------------------------------------------------------------------------------

    def _fold(self, expr: ast.Expr):
        """Constant-fold an expression at the proxy; `_NOT_CONST` on failure."""
        try:
            return Evaluator(None, RowScope({})).evaluate(expr)
        except Exception:
            return _NOT_CONST

    def _ring(self, value, vtype: ValueType, scale: int) -> int:
        """Ring-encode a constant at the requested decimal scale."""
        if value is None:
            raise RewriteError("cannot ring-encode NULL")
        if vtype.kind in ("int", "decimal") or isinstance(value, (int, float)):
            from repro.crypto.encoding import ring_encode

            return ring_encode(value, "decimal" if scale else "int", scale)
        if vtype.kind == "date" or isinstance(value, datetime.date):
            from repro.crypto.encoding import encode_date

            return encode_date(value)
        if vtype.kind == "string" or isinstance(value, str):
            from repro.crypto.encoding import encode_string

            width = vtype.width or max(len(str(value).encode("utf-8")), 1)
            return encode_string(str(value), width)
        if vtype.kind == "bool":
            return int(bool(value))
        # name the type, never the value: rewrite errors travel in exception
        # text and the constant may be a sensitive query operand
        raise RewriteError(f"cannot ring-encode value of type {type(value).__name__}")

    def _leak(self, kind: str, site: str) -> None:
        self._leakage.append(f"{kind}: {site}")


def _walk_has_fraction(expr, scope, rewriter) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.BinaryOp) and node.op == "/":
            return True
        if isinstance(node, ast.Aggregate) and node.func == "avg":
            if node.arg is not None and rewriter._expr_sensitive(node.arg, scope):
                return True
    return False


def _mul_opt(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return ast.BinaryOp(op="*", left=a, right=b)


def _provably_positive(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.Aggregate) and expr.func == "count":
        return True  # non-negative; zero makes both sides zero/NULL
    if isinstance(expr, ast.Literal):
        return isinstance(expr.value, (int, float)) and expr.value > 0
    if isinstance(expr, ast.BinaryOp) and expr.op == "*":
        return _provably_positive(expr.left) and _provably_positive(expr.right)
    if isinstance(expr, ast.ScalarSubquery) and len(expr.query.items) == 1:
        return _provably_positive(expr.query.items[0].expr)
    return False


_NOT_CONST = object()


def infer_param_type(value) -> Optional[ValueType]:
    """The :class:`ValueType` a parameter value binds as (None for NULL).

    The session layer specializes a prepared statement's rewrite plan per
    parameter *type signature*: the first execution with a new signature
    rewrites once, later executions with same-typed values reuse the plan.
    """
    if value is None:
        return None
    return _literal_vtype(value)


def _literal_vtype(value) -> ValueType:
    if value is None:
        return ValueType.int_()
    if isinstance(value, bool):
        return ValueType.bool_()
    if isinstance(value, int):
        return ValueType.int_()
    if isinstance(value, float):
        exponent = decimal.Decimal(str(value)).as_tuple().exponent
        return ValueType.decimal(max(0, -exponent))
    if isinstance(value, datetime.date):
        return ValueType.date()
    if isinstance(value, str):
        return ValueType.string(width=max(len(value.encode("utf-8")), 1))
    raise RewriteError(f"unsupported literal of type {type(value).__name__}")


def _numeric_scale(vtype: ValueType, constant) -> int:
    if vtype.kind == "decimal":
        return vtype.scale
    if isinstance(constant, float):
        exponent = decimal.Decimal(str(constant)).as_tuple().exponent
        return max(0, -exponent)
    return 0


def _combine_plain_vtype(op, l: ValueType, r: ValueType) -> ValueType:
    if op == "||":
        return ValueType.string(width=(l.width or 32) + (r.width or 32))
    if l.kind == "date" or r.kind == "date":
        if op == "-" and l.kind == "date" and r.kind == "date":
            return ValueType.int_()
        return ValueType.date()
    if l.kind == "decimal" or r.kind == "decimal" or op == "/":
        return ValueType.decimal(max(l.scale, r.scale, 2))
    return ValueType.int_()


def _mul_vtype(l: ValueType, r: ValueType) -> ValueType:
    if l.kind == "decimal" or r.kind == "decimal":
        return ValueType.decimal(l.scale + r.scale)
    return ValueType.int_()


def _add_vtype(l: ValueType, r: ValueType, scale: int) -> ValueType:
    if l.kind == "date" or r.kind == "date":
        return ValueType.date()
    if l.kind == "decimal" or r.kind == "decimal":
        return ValueType.decimal(scale)
    return ValueType.int_()
