"""Readers-writer synchronization for the execution tier.

The concurrency redesign replaces the per-server global ``RLock`` (one
statement at a time, sessions serialized) with a readers-writer scheme:
read-only statements against the current snapshot epoch run concurrently,
while DML/DDL take the write side, run exclusively, and bump the epoch.

:class:`ReadWriteLock` is writer-preferring (a waiting writer blocks new
readers, so a steady stream of reads cannot starve DML) and re-entrant on
the write side; a thread holding the write lock may also re-acquire the
read side, which keeps composite operations (a DML routine calling a
read-locked helper on the same server) deadlock-free.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class ReadWriteLock:
    """A writer-preferring readers-writer lock.

    * any number of threads may hold the read side at once;
    * the write side is exclusive against readers and other writers;
    * write acquisition is re-entrant, and a write holder may take the
      read side (counted as a nested write hold);
    * read -> write upgrades are not supported and will deadlock -- the
      callers in this codebase never nest that way.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: int | None = None  # thread ident of the write holder
        self._write_depth = 0
        self._waiting_writers = 0

    # -- read side -----------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:  # write holder reading its own snapshot
                self._write_depth += 1
                return
            while self._writer is not None or self._waiting_writers:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                if self._write_depth <= 1:
                    # depth 1 is the write hold itself; a nested read hold
                    # would have pushed it to >= 2
                    raise RuntimeError(
                        "release_read without a matching acquire_read "
                        "(write side held but no nested read hold)"
                    )
                self._write_depth -= 1
                return
            if self._readers <= 0:
                raise RuntimeError(
                    "release_read without a matching acquire_read"
                )
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- write side ----------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
                return
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = me
            self._write_depth = 1

    def release_write(self) -> None:
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError(
                    "release_write without a matching acquire_write "
                    "(calling thread does not hold the write side)"
                )
            self._write_depth -= 1
            if self._write_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # -- context managers ------------------------------------------------------

    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection ---------------------------------------------------------

    @property
    def write_held(self) -> bool:
        """Whether the calling thread currently holds the write side."""
        return self._writer == threading.get_ident()
