"""Concrete attacks: quantifying what each scheme leaks.

The demo's security step argues qualitatively ("the memory dump shows no
sensitive information").  This module makes the comparison quantitative by
mounting the classic inference attacks an SP-resident adversary with DB
knowledge and auxiliary information would run:

* :class:`FrequencyAttack` -- against *deterministic* encryption (CryptDB's
  DET layer): match ciphertexts to plaintexts by frequency rank.  Known to
  devastate low-entropy columns (Naveed-Kamara-Wright, CCS 2015).
* :class:`SortingAttack` -- against *order-preserving* encryption: when the
  attacker knows (approximately) the plaintext multiset, sorting both sides
  aligns them exactly.
* :class:`CorrelationProbe` -- scheme-agnostic: rank correlation between
  stored ciphertexts and the hidden plaintexts.  OPE scores ~1.0 by
  construction; SDB shares must score ~0.
* :class:`FactoringAttack` -- against SDB's modulus: Pollard's rho with a
  bounded budget.  Toy moduli fall instantly, production-size ones do not,
  which is exactly the parameter the paper sets at 2048 bits.

Each attack returns a :class:`AttackReport` with a recovery rate, so the
E10 bench can print one comparable table across schemes.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.crypto.ntheory import gcd


@dataclass(frozen=True)
class AttackReport:
    """Outcome of one attack run."""

    attack: str
    target: str
    attempted: int
    recovered: int
    detail: str = ""

    @property
    def recovery_rate(self) -> float:
        return self.recovered / self.attempted if self.attempted else 0.0


class FrequencyAttack:
    """Frequency analysis against deterministic ciphertexts.

    The attacker holds the ciphertext column (DB knowledge) and an
    auxiliary plaintext distribution (e.g. public demographics).  Because
    DET maps equal plaintexts to equal ciphertexts, ranking both sides by
    frequency aligns them; ties are broken arbitrarily, which only *hurts*
    the attacker, so the measured rate is a lower bound.
    """

    def __init__(self, auxiliary: Sequence):
        if not auxiliary:
            raise ValueError("frequency attack needs an auxiliary distribution")
        self._auxiliary = list(auxiliary)

    def run(self, ciphertexts: Sequence, true_plaintexts: Sequence, target: str) -> AttackReport:
        """``true_plaintexts[i]`` is the hidden value behind
        ``ciphertexts[i]`` -- used only to *score* the guesses."""
        cipher_ranked = [c for c, _ in Counter(ciphertexts).most_common()]
        plain_ranked = [p for p, _ in Counter(self._auxiliary).most_common()]
        guess = {
            c: plain_ranked[i]
            for i, c in enumerate(cipher_ranked)
            if i < len(plain_ranked)
        }
        recovered = sum(
            1
            for c, truth in zip(ciphertexts, true_plaintexts)
            if guess.get(c) == truth
        )
        return AttackReport(
            attack="frequency",
            target=target,
            attempted=len(ciphertexts),
            recovered=recovered,
            detail=f"{len(cipher_ranked)} distinct ciphertexts",
        )


class SortingAttack:
    """Sorting attack against order-preserving ciphertexts.

    With the exact plaintext multiset as auxiliary knowledge, sorting the
    ciphertexts and the plaintexts and pairing by position recovers every
    value (OPE preserves the permutation).
    """

    def __init__(self, auxiliary: Sequence):
        self._auxiliary = sorted(auxiliary)

    def run(self, ciphertexts: Sequence, true_plaintexts: Sequence, target: str) -> AttackReport:
        order = sorted(range(len(ciphertexts)), key=lambda i: ciphertexts[i])
        guesses: dict[int, object] = {}
        for position, index in enumerate(order):
            if position < len(self._auxiliary):
                guesses[index] = self._auxiliary[position]
        recovered = sum(
            1
            for i, truth in enumerate(true_plaintexts)
            if guesses.get(i) == truth
        )
        return AttackReport(
            attack="sorting",
            target=target,
            attempted=len(ciphertexts),
            recovered=recovered,
            detail=f"auxiliary multiset of {len(self._auxiliary)}",
        )


class CorrelationProbe:
    """Spearman rank correlation between ciphertexts and plaintexts.

    A scheme whose ciphertexts order like the plaintexts (OPE: rho = 1)
    leaks the entire ordering to DB knowledge alone.  SDB shares are
    multiplicatively masked per row, so |rho| should be statistical noise.
    """

    @staticmethod
    def spearman(ciphertexts: Sequence, plaintexts: Sequence) -> float:
        n = len(ciphertexts)
        if n < 2:
            return 0.0
        c_rank = _ranks(ciphertexts)
        p_rank = _ranks(plaintexts)
        c_mean = sum(c_rank) / n
        p_mean = sum(p_rank) / n
        cov = sum((c - c_mean) * (p - p_mean) for c, p in zip(c_rank, p_rank))
        c_var = sum((c - c_mean) ** 2 for c in c_rank)
        p_var = sum((p - p_mean) ** 2 for p in p_rank)
        if not c_var or not p_var:
            return 0.0
        return cov / math.sqrt(c_var * p_var)

    def run(self, ciphertexts: Sequence, true_plaintexts: Sequence, target: str) -> AttackReport:
        rho = self.spearman(ciphertexts, true_plaintexts)
        # the probe "recovers the ordering" when correlation is strong
        leaked = abs(rho) > 0.9
        return AttackReport(
            attack="rank-correlation",
            target=target,
            attempted=1,
            recovered=int(leaked),
            detail=f"spearman rho = {rho:+.3f}",
        )


def _ranks(values: Sequence) -> list[float]:
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        average = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = average
        i = j + 1
    return ranks


@dataclass(frozen=True)
class FactoringOutcome:
    factor: Optional[int]
    iterations: int

    @property
    def succeeded(self) -> bool:
        return self.factor is not None


class FactoringAttack:
    """Pollard's rho against the public modulus ``n``.

    Recovering ``rho1 * rho2 = n`` yields ``phi(n)``, after which CPA
    pairs break the scheme.  The attack is feasible exactly when ``n`` is
    too small -- the security parameter the paper fixes at 2048 bits.
    ``budget`` caps the rho iterations so benchmarks terminate.
    """

    def __init__(self, budget: int = 2_000_000):
        self.budget = budget

    def factor(self, n: int) -> FactoringOutcome:
        if n % 2 == 0:
            return FactoringOutcome(factor=2, iterations=0)
        iterations = 0
        for c in (1, 3, 5, 7, 11):
            x = y = 2
            d = 1
            while d == 1 and iterations < self.budget:
                x = (x * x + c) % n
                y = (y * y + c) % n
                y = (y * y + c) % n
                d = gcd(abs(x - y), n)
                iterations += 1
            if 1 < d < n:
                return FactoringOutcome(factor=d, iterations=iterations)
            if iterations >= self.budget:
                break
        return FactoringOutcome(factor=None, iterations=iterations)

    def run(self, n: int, target: str) -> AttackReport:
        outcome = self.factor(n)
        return AttackReport(
            attack="factoring",
            target=target,
            attempted=1,
            recovered=int(outcome.succeeded),
            detail=(
                f"factor found after {outcome.iterations} iterations"
                if outcome.succeeded
                else f"no factor within {outcome.iterations} iterations"
            ),
        )
