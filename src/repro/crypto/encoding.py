"""Plaintext encoding for the secret-sharing domain.

SDB's shares live in ``Z_n``; application values (signed integers, fixed
point decimals, dates, short strings) must be mapped into that ring before
encryption and back after decryption.  The encodings here are the standard
ones:

* **Signed integers** -- ``v mod n`` with the convention that residues above
  ``n/2`` are negative.  Values must satisfy ``|v| < 2**(value_bits-1)`` so
  arithmetic never wraps and the masked-sign comparison protocol of
  :mod:`repro.core.protocols` is unambiguous.
* **Decimals** -- scaled integers at a fixed per-column scale (TPC-H uses
  two fractional digits).
* **Dates** -- days since 1970-01-01 (proleptic Gregorian).
* **Strings** -- big-endian integer of the UTF-8 bytes, right-padded to a
  fixed width so integer order equals (byte-wise) lexicographic order.
"""

from __future__ import annotations

import datetime

_EPOCH = datetime.date(1970, 1, 1)


def encode_signed(value: int, n: int) -> int:
    """Map a signed integer into ``Z_n``."""
    return value % n


def decode_signed(residue: int, n: int) -> int:
    """Inverse of :func:`encode_signed` under the ``n/2`` convention."""
    residue %= n
    return residue - n if residue > n // 2 else residue


def check_domain(value: int, value_bits: int) -> int:
    """Validate that ``value`` fits the configured plaintext domain.

    Returns the value unchanged; raises :class:`OverflowError` otherwise.
    Keeping every stored plaintext inside ``|v| < 2**(value_bits-1)`` is what
    lets additions, subtractions and constant multiplications of query
    expressions stay inside the wrap-free window the comparison protocol
    needs.
    """
    if abs(value) >= 1 << (value_bits - 1):
        raise OverflowError(
            f"value {value} outside the {value_bits}-bit plaintext domain"
        )
    return value


def encode_decimal(value, scale: int = 2) -> int:
    """Encode a decimal as a scaled integer (``round`` half-even)."""
    return round(float(value) * (10 ** scale))


def decode_decimal(encoded: int, scale: int = 2) -> float:
    """Inverse of :func:`encode_decimal`."""
    return encoded / (10 ** scale)


def encode_date(value) -> int:
    """Encode a date (``datetime.date`` or ISO string) as epoch days."""
    if isinstance(value, str):
        value = datetime.date.fromisoformat(value)
    return (value - _EPOCH).days


def decode_date(days: int) -> datetime.date:
    """Inverse of :func:`encode_date`."""
    return _EPOCH + datetime.timedelta(days=int(days))


def encode_string(value: str, width: int) -> int:
    """Encode a string as a fixed-width big-endian integer.

    Order-compatible with byte-wise lexicographic comparison, which is what
    makes equality tokens and ORDER BY on encrypted string columns behave
    like their plaintext counterparts.  Raises if the UTF-8 form exceeds
    ``width`` bytes.
    """
    raw = value.encode("utf-8")
    if len(raw) > width:
        raise ValueError(f"string longer than the declared width {width}")
    if b"\x00" in raw:
        # NUL is the padding byte; strings containing it would not
        # round-trip (SQL strings never contain NUL anyway)
        raise ValueError("strings containing NUL bytes are not encodable")
    return int.from_bytes(raw.ljust(width, b"\x00"), "big")


def decode_string(encoded: int, width: int) -> str:
    """Inverse of :func:`encode_string` (strips the zero padding)."""
    raw = int(encoded).to_bytes(width, "big")
    return raw.rstrip(b"\x00").decode("utf-8")
