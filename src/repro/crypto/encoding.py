"""Plaintext encoding for the secret-sharing domain.

SDB's shares live in ``Z_n``; application values (signed integers, fixed
point decimals, dates, short strings) must be mapped into that ring before
encryption and back after decryption.  The encodings here are the standard
ones:

* **Signed integers** -- ``v mod n`` with the convention that residues above
  ``n/2`` are negative.  Values must satisfy ``|v| < 2**(value_bits-1)`` so
  arithmetic never wraps and the masked-sign comparison protocol of
  :mod:`repro.core.protocols` is unambiguous.
* **Decimals** -- scaled integers at a fixed per-column scale (TPC-H uses
  two fractional digits).
* **Dates** -- days since 1970-01-01 (proleptic Gregorian).
* **Strings** -- big-endian integer of the UTF-8 bytes, right-padded to a
  fixed width so integer order equals (byte-wise) lexicographic order.
"""

from __future__ import annotations

import datetime

from repro.analysis.contracts import plaintext_source

_EPOCH = datetime.date(1970, 1, 1)


def encode_signed(value: int, n: int) -> int:
    """Map a signed integer into ``Z_n``."""
    return value % n


@plaintext_source
def decode_signed(residue: int, n: int) -> int:
    """Inverse of :func:`encode_signed` under the ``n/2`` convention."""
    residue %= n
    return residue - n if residue > n // 2 else residue


def check_domain(value: int, value_bits: int) -> int:
    """Validate that ``value`` fits the configured plaintext domain.

    Returns the value unchanged; raises :class:`OverflowError` otherwise.
    Keeping every stored plaintext inside ``|v| < 2**(value_bits-1)`` is what
    lets additions, subtractions and constant multiplications of query
    expressions stay inside the wrap-free window the comparison protocol
    needs.
    """
    if abs(value) >= 1 << (value_bits - 1):
        # report the magnitude, never the value: this error can surface in
        # SP-side logs and the value may be a sensitive bound parameter
        raise OverflowError(
            f"value of {abs(value).bit_length()} bits outside the "
            f"{value_bits}-bit plaintext domain"
        )
    return value


def encode_decimal(value, scale: int = 2) -> int:
    """Encode a decimal as a scaled integer (``round`` half-even)."""
    return round(float(value) * (10 ** scale))


@plaintext_source
def decode_decimal(encoded: int, scale: int = 2) -> float:
    """Inverse of :func:`encode_decimal`."""
    return encoded / (10 ** scale)


def encode_date(value) -> int:
    """Encode a date (``datetime.date`` or ISO string) as epoch days."""
    if isinstance(value, str):
        value = datetime.date.fromisoformat(value)
    return (value - _EPOCH).days


@plaintext_source
def decode_date(days: int) -> datetime.date:
    """Inverse of :func:`encode_date`."""
    return _EPOCH + datetime.timedelta(days=int(days))


def encode_string(value: str, width: int) -> int:
    """Encode a string as a fixed-width big-endian integer.

    Order-compatible with byte-wise lexicographic comparison, which is what
    makes equality tokens and ORDER BY on encrypted string columns behave
    like their plaintext counterparts.  Raises if the UTF-8 form exceeds
    ``width`` bytes.
    """
    raw = value.encode("utf-8")
    if len(raw) > width:
        raise ValueError(f"string longer than the declared width {width}")
    if b"\x00" in raw:
        # NUL is the padding byte; strings containing it would not
        # round-trip (SQL strings never contain NUL anyway)
        raise ValueError("strings containing NUL bytes are not encodable")
    return int.from_bytes(raw.ljust(width, b"\x00"), "big")


def ring_encode(value, kind: str, scale: int = 0, width: int = 0) -> int:
    """Encode ``value`` for the ring under a declared value kind.

    The kind-dispatching front door to the per-type encoders above, used
    when a prepared statement binds a parameter: the plan recorded
    ``(kind, scale, width)`` at rewrite time and the actual value arrives
    later, and the rewriter's constant path delegates here so bound
    parameters stay bit-identical to inlined constants.

    Deliberately NOT the same dispatch as :meth:`ValueType.encode`: that
    one encodes *stored column values* whose declared type matches the
    value (an int column truncates with ``int(value)``), while query
    constants and parameters may be floats meeting an int context and must
    round (``qty < 24.7`` means ``qty < 25`` after ``round``, matching the
    pre-session-layer rewriter).  Merging the two would silently change
    comparison semantics on one side or the other.
    """
    if kind in ("int", "decimal"):
        return encode_decimal(value, scale) if scale else int(round(value))
    if kind == "date":
        return encode_date(value)
    if kind == "string":
        text = str(value)
        return encode_string(text, width or max(len(text.encode("utf-8")), 1))
    if kind == "bool":
        return int(bool(value))
    raise ValueError(f"cannot ring-encode kind {kind!r}")


@plaintext_source
def decode_string(encoded: int, width: int) -> str:
    """Inverse of :func:`encode_string` (strips the zero padding)."""
    raw = int(encoded).to_bytes(width, "big")
    return raw.rstrip(b"\x00").decode("utf-8")
