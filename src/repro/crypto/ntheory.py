"""Number-theoretic primitives.

SDB's secret sharing scheme works in the multiplicative group modulo an
RSA-style composite ``n = rho1 * rho2`` (Section 2.1 of the paper).  This
module provides the primitives needed to construct and work in that group:
probabilistic primality testing, prime generation, modular inverses, and
random sampling of units (elements co-prime with ``n``).

Everything here is pure Python on native big integers; the paper uses
2048-bit ``n`` and Python's ``pow`` handles that size natively.
"""

from __future__ import annotations

import secrets

# Deterministic Miller-Rabin witness sets.  For 64-bit integers the first
# twelve primes are a *proven* deterministic witness set (Sorenson & Webster
# 2015), so ``is_prime`` is exact below 3.3 * 10^24.  Above that we add
# random witnesses for a 2^-128 error bound.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981
_RANDOM_WITNESS_ROUNDS = 64


def _miller_rabin_witness(a: int, d: int, s: int, m: int) -> bool:
    """Return ``True`` if ``a`` witnesses that ``m`` is composite.

    ``m - 1 = d * 2**s`` with ``d`` odd.
    """
    x = pow(a, d, m)
    if x in (1, m - 1):
        return False
    for _ in range(s - 1):
        x = x * x % m
        if x == m - 1:
            return False
    return True


def is_prime(m: int) -> bool:
    """Primality test.

    Exact for ``m`` below ~3.3e24 (deterministic Miller-Rabin witness set);
    probabilistic with error below ``2**-128`` above that.
    """
    if m < 2:
        return False
    for p in _SMALL_PRIMES:
        if m == p:
            return True
        if m % p == 0:
            return False
    d = m - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    if m < _DETERMINISTIC_BOUND:
        witnesses = _DETERMINISTIC_WITNESSES
    else:
        witnesses = tuple(
            secrets.randbelow(m - 3) + 2 for _ in range(_RANDOM_WITNESS_ROUNDS)
        )
    return not any(_miller_rabin_witness(a, d, s, m) for a in witnesses)


def random_prime(bits: int, rng=None) -> int:
    """Sample a random prime of exactly ``bits`` bits.

    ``rng`` may be a :class:`random.Random`-like object (for reproducible
    tests); by default the OS CSPRNG is used.
    """
    if bits < 2:
        raise ValueError("primes need at least 2 bits")
    randbits = rng.getrandbits if rng is not None else secrets.randbits
    while True:
        candidate = randbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # full bit-length, odd
        if is_prime(candidate):
            return candidate


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: return ``(g, s, t)`` with ``a*s + b*t == g == gcd(a, b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Modular multiplicative inverse of ``a`` modulo ``m``.

    Raises :class:`ValueError` when ``gcd(a, m) != 1`` (the inverse does not
    exist); SDB's encryption function relies on item keys being units mod n,
    which key generation guarantees.

    Dispatches to CPython's native ``pow(a, -1, m)`` (C bigint code) and
    keeps the extended-Euclid fallback message for the error case.
    """
    try:
        return pow(a % m, -1, m)
    except ValueError:
        g, _, _ = egcd(a % m, m)
        raise ValueError(f"{a} has no inverse modulo {m} (gcd={g})") from None


def batch_modinv(values, m: int) -> list[int]:
    """Invert many values modulo ``m`` with a single :func:`modinv` call.

    Montgomery's batch-inversion trick: one pass of prefix products, one
    modular inverse of the total, and one back-substitution pass -- ``3k``
    multiplications instead of ``k`` extended-Euclid/``pow`` inversions.
    This is the number-theoretic half of the columnar encrypt path
    (:func:`repro.crypto.secret_sharing.encrypt_column`).

    If any value is not a unit mod ``m``, falls back to per-value
    inversion so the error names the offending element, matching the
    scalar path.
    """
    values = list(values)
    prefix = []
    acc = 1
    for v in values:
        prefix.append(acc)
        acc = acc * v % m
    try:
        inv = modinv(acc, m)
    except ValueError:
        # at least one non-unit: re-raise against the precise offender
        return [modinv(v, m) for v in values]
    out = [0] * len(values)
    for i in range(len(values) - 1, -1, -1):
        out[i] = prefix[i] * inv % m
        inv = inv * values[i] % m
    return out


def gcd(a: int, b: int) -> int:
    """Greatest common divisor (non-negative)."""
    while b:
        a, b = b, a % b
    return abs(a)


def random_unit(n: int, rng=None) -> int:
    """Sample a uniform element of ``Z_n*`` (co-prime with ``n``) in ``[2, n)``.

    The paper requires the secret generator ``g`` and the column-key parts to
    be co-prime with ``n`` so that modular inverses exist.
    """
    randbelow = (
        (lambda k: rng.randrange(k)) if rng is not None else secrets.randbelow
    )
    while True:
        candidate = randbelow(n - 2) + 2
        if gcd(candidate, n) == 1:
            return candidate


def random_below(n: int, rng=None) -> int:
    """Sample a uniform integer in ``[1, n)``."""
    randbelow = (
        (lambda k: rng.randrange(k)) if rng is not None else secrets.randbelow
    )
    return randbelow(n - 1) + 1


def crt_pair(residue1: int, modulus1: int, residue2: int, modulus2: int) -> int:
    """Chinese remainder theorem for two co-prime moduli.

    Used by tests to validate arithmetic against the factored form of ``n``.
    """
    g, s, _ = egcd(modulus1, modulus2)
    if g != 1:
        raise ValueError("moduli must be co-prime")
    diff = (residue2 - residue1) % modulus2
    return (residue1 + modulus1 * ((diff * s) % modulus2)) % (modulus1 * modulus2)
