"""The multiplicative secret sharing scheme of paper Section 2.1.

Three functions implement the paper verbatim:

* :func:`item_key` -- Definition 1:
  ``vk = gen(r, <m, x>) = m * g**(r * x mod phi(n)) mod n``.
* :func:`encrypt_value` -- Definition 2:
  ``ve = E(v, vk) = v * vk^-1 mod n``.
* :func:`decrypt_value` -- Equation 4:
  ``v = D(ve, vk) = ve * vk mod n``.

The column-level helpers vectorize these for the upload pipeline and the
result decryptor.  The worked example of paper Figure 1 (``g=2, n=35``,
column key ``<2, 2>``) is reproduced in the test suite and in experiment E1.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.contracts import plaintext_source, sanitizer
from repro.crypto.keys import ColumnKey, SystemKeys
from repro.crypto.ntheory import batch_modinv, modinv


def item_key(keys: SystemKeys, row_id: int, ck: ColumnKey) -> int:
    """Definition 1: generate the item key for ``(row_id, ck)``.

    The exponent is reduced mod ``phi(n)`` per the paper's convention; the
    DO can do this because it knows the factorization of ``n``.
    """
    exponent = (row_id * ck.x) % keys.phi
    return (ck.m * pow(keys.g, exponent, keys.n)) % keys.n


def item_keys(keys: SystemKeys, row_ids: Sequence[int], ck: ColumnKey) -> list[int]:
    """Vectorized Definition 1: item keys for a whole column of row ids.

    One pass with every modulus and key part hoisted into locals -- the
    per-row work is exactly one ``pow`` and two multiplications.
    """
    n, g, phi = keys.n, keys.g, keys.phi
    m, x = ck.m, ck.x
    return [m * pow(g, (r * x) % phi, n) % n for r in row_ids]


@sanitizer
def encrypt_value(keys: SystemKeys, value: int, vk: int) -> int:
    """Definition 2: split off the SP share ``ve = v * vk^-1 mod n``."""
    return (value % keys.n) * modinv(vk, keys.n) % keys.n


@plaintext_source
def decrypt_value(keys: SystemKeys, ve: int, vk: int) -> int:
    """Equation 4: recover ``v = ve * vk mod n`` (still ring-encoded)."""
    return (ve * vk) % keys.n


@sanitizer
def encrypt_column(
    keys: SystemKeys,
    values: Iterable[int],
    row_ids: Sequence[int],
    ck: ColumnKey,
) -> list[int]:
    """Encrypt a column of ring-encoded values under ``ck``.

    ``values[i]`` is encrypted with the item key generated from
    ``row_ids[i]``.  This is the bulk path used at upload time (demo
    step 1): item keys are generated in one vectorized pass and inverted
    together via Montgomery's batch-inversion trick
    (:func:`repro.crypto.ntheory.batch_modinv`), so the whole column costs
    one modular inverse total instead of one per row.
    """
    n = keys.n
    vks = item_keys(keys, row_ids, ck)
    inverses = batch_modinv(vks, n)
    return [(v % n) * inv % n for v, inv in zip(values, inverses)]


@plaintext_source
def decrypt_column(
    keys: SystemKeys,
    shares: Iterable[int],
    row_ids: Sequence[int],
    ck: ColumnKey,
) -> list[int]:
    """Decrypt a column of SP shares (inverse of :func:`encrypt_column`)."""
    n = keys.n
    vks = item_keys(keys, row_ids, ck)
    return [ve * vk % n for ve, vk in zip(shares, vks)]
