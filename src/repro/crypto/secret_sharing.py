"""The multiplicative secret sharing scheme of paper Section 2.1.

Three functions implement the paper verbatim:

* :func:`item_key` -- Definition 1:
  ``vk = gen(r, <m, x>) = m * g**(r * x mod phi(n)) mod n``.
* :func:`encrypt_value` -- Definition 2:
  ``ve = E(v, vk) = v * vk^-1 mod n``.
* :func:`decrypt_value` -- Equation 4:
  ``v = D(ve, vk) = ve * vk mod n``.

The column-level helpers vectorize these for the upload pipeline and the
result decryptor.  The worked example of paper Figure 1 (``g=2, n=35``,
column key ``<2, 2>``) is reproduced in the test suite and in experiment E1.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.crypto.keys import ColumnKey, SystemKeys
from repro.crypto.ntheory import modinv


def item_key(keys: SystemKeys, row_id: int, ck: ColumnKey) -> int:
    """Definition 1: generate the item key for ``(row_id, ck)``.

    The exponent is reduced mod ``phi(n)`` per the paper's convention; the
    DO can do this because it knows the factorization of ``n``.
    """
    exponent = (row_id * ck.x) % keys.phi
    return (ck.m * pow(keys.g, exponent, keys.n)) % keys.n


def encrypt_value(keys: SystemKeys, value: int, vk: int) -> int:
    """Definition 2: split off the SP share ``ve = v * vk^-1 mod n``."""
    return (value % keys.n) * modinv(vk, keys.n) % keys.n


def decrypt_value(keys: SystemKeys, ve: int, vk: int) -> int:
    """Equation 4: recover ``v = ve * vk mod n`` (still ring-encoded)."""
    return (ve * vk) % keys.n


def encrypt_column(
    keys: SystemKeys,
    values: Iterable[int],
    row_ids: Sequence[int],
    ck: ColumnKey,
) -> list[int]:
    """Encrypt a column of ring-encoded values under ``ck``.

    ``values[i]`` is encrypted with the item key generated from
    ``row_ids[i]``.  This is the bulk path used at upload time (demo step 1).
    """
    out = []
    for value, row_id in zip(values, row_ids):
        vk = item_key(keys, row_id, ck)
        out.append(encrypt_value(keys, value, vk))
    return out


def decrypt_column(
    keys: SystemKeys,
    shares: Iterable[int],
    row_ids: Sequence[int],
    ck: ColumnKey,
) -> list[int]:
    """Decrypt a column of SP shares (inverse of :func:`encrypt_column`)."""
    out = []
    for ve, row_id in zip(shares, row_ids):
        vk = item_key(keys, row_id, ck)
        out.append(decrypt_value(keys, ve, vk))
    return out
