"""Cryptographic substrate for SDB.

This package implements every cryptographic component the paper relies on:

* :mod:`repro.crypto.ntheory` -- number-theoretic primitives (Miller-Rabin
  primality testing, prime generation, modular inverses) used to build the
  RSA-style modulus ``n = rho1 * rho2`` of Section 2.1.
* :mod:`repro.crypto.keys` -- system key material (``g``, ``n``, ``phi(n)``)
  and per-column keys ``ck = <m, x>``.
* :mod:`repro.crypto.secret_sharing` -- the multiplicative secret sharing
  scheme of Definitions 1 and 2 and the decryption rule of Equation 4.
* :mod:`repro.crypto.sies` -- the SIES symmetric scheme used for row ids.
* :mod:`repro.crypto.keyops` -- the column-key algebra that powers the
  data-interoperable operators (key propagation and key-update parameters).
* :mod:`repro.crypto.prf` -- deterministic pseudo-random functions and
  seedable randomness used across the system.
"""

from repro.crypto.keys import ColumnKey, SystemKeys, generate_system_keys
from repro.crypto.secret_sharing import (
    decrypt_value,
    encrypt_value,
    item_key,
)
from repro.crypto.sies import SIESCipher, SIESKey

__all__ = [
    "ColumnKey",
    "SystemKeys",
    "generate_system_keys",
    "item_key",
    "encrypt_value",
    "decrypt_value",
    "SIESCipher",
    "SIESKey",
]
