"""Pseudo-random functions and seedable randomness.

Two needs across SDB:

* **Security-grade randomness** for real key generation (``secrets``).
* **Reproducible randomness** for tests, benchmarks and the TPC-H data
  generator.  Everything that generates data or keys accepts an optional
  ``rng`` so experiments are repeatable.

The PRF here (SHA-256 in counter mode) backs the SIES pads and the
deterministic row-id assignment used by the upload pipeline.
"""

from __future__ import annotations

import hashlib
import hmac
import random


def prf_int(key: bytes, message: bytes, bits: int) -> int:
    """Keyed PRF ``F_key(message)`` returning a ``bits``-bit integer.

    Implemented as HMAC-SHA256 in counter mode, truncated/expanded to the
    requested width.  Deterministic in ``(key, message)``.
    """
    if bits <= 0:
        raise ValueError("bits must be positive")
    blocks = []
    counter = 0
    need = (bits + 7) // 8
    while sum(len(b) for b in blocks) < need:
        blocks.append(
            hmac.new(key, message + counter.to_bytes(8, "big"), hashlib.sha256).digest()
        )
        counter += 1
    raw = b"".join(blocks)[:need]
    return int.from_bytes(raw, "big") % (1 << bits)


def derive_key(master: bytes, label: str) -> bytes:
    """Derive an independent sub-key from a master key and a label."""
    return hmac.new(master, label.encode("utf-8"), hashlib.sha256).digest()


def seeded_rng(seed) -> random.Random:
    """A reproducible RNG for tests, dbgen and benchmarks.

    Not for key material in production use; real deployments pass
    ``rng=None`` to key generation, which then uses the OS CSPRNG.
    """
    return random.Random(seed)
