"""Column-key algebra: how keys propagate through secure operators.

This module is the data-interoperability engine room.  Every SDB operator
consumes shares and produces shares; what makes the outputs *decryptable*
and *composable* is that the DO can derive the column key of every operator
output from the keys of its inputs:

* multiplication (paper Section 2.2):  ``ck_C = <mA * mB, xA + xB>``;
* key update: re-encrypt a column to any target key with SP-side work only,
  using the auxiliary column ``S`` (an encrypted column of 1s);
* plaintext multiplication: the share is scaled, the key is unchanged;
* addition: operands aligned to a common key, shares added.

Because operators can also *combine columns of different tables* (after a
join), a derived key is in general

    ``vk = m * g**(sum_i r_i * x_i)  (exponents mod phi(n))``

with one term per source table instance.  :class:`KeyExpr` captures this:
``m`` is the multiplicative part and ``terms`` maps a row-id *source*
(a table instance in the query plan) to its exponent coefficient ``x``.
A plain column key ``<m, x>`` of table ``t`` is the one-term expression
``KeyExpr(m, {t: x})``; an aggregation-ready key has no terms at all and
decrypts without row ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.crypto.keys import ColumnKey, SystemKeys
from repro.crypto.ntheory import modinv


@dataclass(frozen=True)
class KeyExpr:
    """A derived column key: ``vk = m * g**(sum r_src * x_src) mod n``.

    ``terms`` is a canonically sorted tuple of ``(source, x)`` pairs; a
    *source* names the row-id stream of one table instance in a query (two
    scans of the same table in a self-join are distinct sources).
    """

    m: int
    terms: tuple[tuple[str, int], ...] = ()

    @classmethod
    def make(cls, m: int, terms: Mapping[str, int] = ()) -> "KeyExpr":
        items = dict(terms) if terms else {}
        cleaned = tuple(sorted((s, x) for s, x in items.items() if x != 0))
        return cls(m=m, terms=cleaned)

    @classmethod
    def from_column_key(cls, ck: ColumnKey, source: str) -> "KeyExpr":
        return cls.make(ck.m, {source: ck.x})

    @property
    def sources(self) -> tuple[str, ...]:
        return tuple(s for s, _ in self.terms)

    @property
    def is_row_independent(self) -> bool:
        """True when the item key does not depend on any row id.

        Row-independent keys (``x = 0`` everywhere) decrypt without row ids
        and are the alignment target for SUM and for equality tokens.
        """
        return not self.terms

    def term_map(self) -> dict[str, int]:
        return dict(self.terms)

    def item_key(self, keys: SystemKeys, row_ids: Mapping[str, int]) -> int:
        """Materialize the item key given the row id of every source."""
        exponent = 0
        for source, x in self.terms:
            exponent = (exponent + row_ids[source] * x) % keys.phi
        return (self.m * pow(keys.g, exponent, keys.n)) % keys.n


def multiply_keys(keys: SystemKeys, a: KeyExpr, b: KeyExpr) -> KeyExpr:
    """Key for ``A * B`` (paper: ``<mA*mB, xA+xB>``, per source)."""
    merged = a.term_map()
    for source, x in b.terms:
        merged[source] = (merged.get(source, 0) + x) % keys.phi
    return KeyExpr.make((a.m * b.m) % keys.n, merged)


def multiply_key_plain(keys: SystemKeys, a: KeyExpr, constant: int) -> KeyExpr:
    """Key for ``A * c`` computed DO-side (share untouched at the SP).

    Decryption multiplies the share by the item key, so scaling the key's
    ``m`` by ``c`` scales the decrypted value by ``c`` for free.  ``c`` must
    be non-zero mod n (the rewriter folds multiplications by zero away); the
    SP-side variant (:func:`repro.core.udfs.sdb_mul_plain`) scales the share
    instead and leaves the key unchanged -- the rewriter picks either.
    """
    c = constant % keys.n
    if c == 0:
        raise ValueError("cannot fold multiplication by zero into a key")
    return KeyExpr.make((a.m * c) % keys.n, a.term_map())


@dataclass(frozen=True)
class KeyUpdateParams:
    """DO-computed parameters of one key-update UDF call.

    The SP evaluates ``new_share = p * share * prod_i helper_i ** q_i mod n``
    where ``helper_i`` is the encrypted auxiliary column ``S`` of source
    ``i``.  ``p`` and the ``q_i`` reveal nothing useful without the secret
    column keys (they are one equation in several unknowns, masked by the
    randomness of the keys involved).
    """

    p: int
    q_by_source: tuple[tuple[str, int], ...]


def key_update_params(
    keys: SystemKeys,
    current: KeyExpr,
    target: KeyExpr,
    helper_keys: Mapping[str, ColumnKey],
) -> KeyUpdateParams:
    """Compute ``(p, {q_i})`` to re-encrypt from ``current`` to ``target``.

    Correctness (per source ``i`` with helper key ``<mS, xS>``)::

        ve' = ve * (m/m') * g**(sum_i r_i (x_i - x'_i))
        Se_i**q_i = mS_i**(-q_i) * g**(-r_i * xS_i * q_i)

    choosing ``q_i = (x'_i - x_i) * xS_i^-1 mod phi`` makes the ``g`` powers
    match, and ``p = (m/m') * prod_i mS_i**q_i mod n`` fixes the constants.

    ``helper_keys`` maps each involved source to the column key of its
    auxiliary ``S`` column; ``xS`` must be a unit modulo ``phi(n)`` (the
    upload pipeline samples it that way).
    """
    current_terms = current.term_map()
    target_terms = target.term_map()
    p = (current.m * modinv(target.m, keys.n)) % keys.n
    q_by_source = []
    for source in sorted(set(current_terms) | set(target_terms)):
        x = current_terms.get(source, 0)
        x_target = target_terms.get(source, 0)
        if x == x_target:
            continue
        helper = helper_keys.get(source)
        if helper is None:
            raise KeyError(f"no auxiliary column key for source {source!r}")
        xs_inv = modinv(helper.x, keys.phi)
        q = ((x_target - x) * xs_inv) % keys.phi
        p = (p * pow(helper.m, q, keys.n)) % keys.n
        q_by_source.append((source, q))
    return KeyUpdateParams(p=p, q_by_source=tuple(q_by_source))


def reshard_update_factor(
    keys: SystemKeys, ck: ColumnKey, old_row_id: int, new_row_id: int
) -> int:
    """Multiplier re-encrypting one share from ``old_row_id`` to ``new_row_id``.

    This is the key-update protocol of :func:`key_update_params` applied at
    per-row granularity with the *column key held fixed*: instead of moving
    a whole column from ``<m, x>`` to ``<m', x'>`` under the same row ids,
    it moves one item from ``vk = m * g**(r*x)`` to ``vk' = m * g**(r'*x)``
    under a refreshed row id.  Writing both updates as a change of the item
    key's exponent, the correction term is

        ``share' = share * g**((r - r') * x)  (exponent mod phi(n))``

    so ``share' = v * vk'^-1`` decrypts with the unchanged column key and
    the *new* row id.  Elastic resharding uses this to re-randomize every
    migrated row in flight: the destination shard's ciphertexts are
    unlinkable to (and not replayable from) the source shard's, because the
    source's shares are bound to row ids that no longer exist.

    Only the DO can evaluate this (it needs ``g``, ``phi`` and the column
    key); the SP-side variant for whole columns remains
    :func:`key_update_params` + ``sdb_keyupdate``.
    """
    delta = ((old_row_id - new_row_id) * ck.x) % keys.phi
    return pow(keys.g, delta, keys.n)


def aux_column_key(keys: SystemKeys, rng=None) -> ColumnKey:
    """Column key for an auxiliary ``S`` column.

    Like any column key, but ``x`` is additionally required to be a unit
    modulo ``phi(n)`` so that key-update can divide by it.
    """
    from repro.crypto import ntheory

    m = ntheory.random_unit(keys.n, rng)
    while True:
        x = ntheory.random_below(keys.phi, rng)
        if ntheory.gcd(x, keys.phi) == 1:
            return ColumnKey(m=m, x=x)


def reveal_key(keys: SystemKeys, mask: int) -> KeyExpr:
    """The *revealing* target key ``<mask^-1 mod n, 0>``.

    Key-updating a column to this key hands the SP ``v * mask mod n`` for
    every row: with ``mask = 1`` the plaintext itself (never used), with a
    random positive ``mask`` the sign-preserving masked value used by the
    comparison and ordering protocols, and the decryption key for the DO is
    simply ``mask^-1``.
    """
    return KeyExpr.make(modinv(mask % keys.n, keys.n))


def token_key(keys: SystemKeys, rng=None) -> tuple[KeyExpr, int]:
    """A fresh deterministic-token target key ``<mG, 0>``.

    Returns the key expression and ``mG`` (kept by the DO to decrypt group
    keys in results).  Same plaintext -> same token, which is exactly the
    information GROUP BY / equi-join needs and nothing more.
    """
    from repro.crypto import ntheory

    m = ntheory.random_unit(keys.n, rng)
    return KeyExpr.make(m), m
