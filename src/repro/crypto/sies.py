"""SIES: the symmetric scheme used for row ids (paper reference [6]).

The demo stores each row id ``r`` at the SP encrypted under SIES
(Papadopoulos, Kiayias, Papadias: "Secure and efficient in-network
processing of exact sum queries", ICDE 2011).  SIES is an additively
homomorphic symmetric scheme: a ciphertext is the plaintext plus a
pseudo-random pad,

    ``c = (r + F_key(nonce)) mod M``,

so the DO (who can regenerate the pad from the nonce) decrypts with a single
subtraction, and sums of ciphertexts decrypt to sums of plaintexts when the
pads are summed too.  Row ids are never operated on by SDB's secure
operators (Section 2.1: "a simpler encryption method suffices"), so this is
exactly the right tool: cheap, IND-CPA under the PRF assumption, and the
additive property comes for free for the storage substrate.

The nonce is stored next to the ciphertext at the SP; the key stays at the
DO's key store.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.crypto.prf import prf_int


@dataclass(frozen=True)
class SIESKey:
    """SIES secret key: PRF key bytes plus the public modulus ``M``."""

    key: bytes
    modulus: int

    def __post_init__(self):
        if len(self.key) < 16:
            raise ValueError("SIES key must be at least 128 bits")
        if self.modulus < 2:
            raise ValueError("SIES modulus must be at least 2")

    @classmethod
    def generate(cls, modulus: int, rng=None) -> "SIESKey":
        if rng is not None:
            key = rng.getrandbits(256).to_bytes(32, "big")
        else:
            key = secrets.token_bytes(32)
        return cls(key=key, modulus=modulus)


@dataclass(frozen=True)
class SIESCiphertext:
    """A SIES ciphertext: the padded value and the pad's nonce."""

    value: int
    nonce: int


class SIESCipher:
    """Encrypt/decrypt row ids under a :class:`SIESKey`.

    Nonces are sequential by default (the upload pipeline assigns one per
    row); any unique-per-row integer works.
    """

    def __init__(self, key: SIESKey):
        self._key = key

    @property
    def modulus(self) -> int:
        return self._key.modulus

    def _pad(self, nonce: int) -> int:
        bits = max(self._key.modulus.bit_length() + 64, 128)
        return prf_int(
            self._key.key, nonce.to_bytes(16, "big", signed=False), bits
        ) % self._key.modulus

    def encrypt(self, plaintext: int, nonce: int) -> SIESCiphertext:
        if not 0 <= plaintext < self._key.modulus:
            raise ValueError("plaintext outside SIES modulus range")
        return SIESCiphertext(
            value=(plaintext + self._pad(nonce)) % self._key.modulus,
            nonce=nonce,
        )

    def decrypt(self, ciphertext: SIESCiphertext) -> int:
        return (ciphertext.value - self._pad(ciphertext.nonce)) % self._key.modulus

    def add(self, a: SIESCiphertext, b: SIESCiphertext, nonce: int) -> SIESCiphertext:
        """Additive homomorphism: re-noised ciphertext of ``a + b``.

        Exercised by the SIES test-suite to match the scheme's headline
        property (exact sum queries); SDB itself only needs encrypt/decrypt.
        """
        combined = (a.value + b.value) % self._key.modulus
        pad = (self._pad(a.nonce) + self._pad(b.nonce)) % self._key.modulus
        plain_sum = (combined - pad) % self._key.modulus
        return self.encrypt(plain_sum, nonce)
