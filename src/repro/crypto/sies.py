"""SIES: the symmetric scheme used for row ids (paper reference [6]).

The demo stores each row id ``r`` at the SP encrypted under SIES
(Papadopoulos, Kiayias, Papadias: "Secure and efficient in-network
processing of exact sum queries", ICDE 2011).  SIES is an additively
homomorphic symmetric scheme: a ciphertext is the plaintext plus a
pseudo-random pad,

    ``c = (r + F_key(nonce)) mod M``,

so the DO (who can regenerate the pad from the nonce) decrypts with a single
subtraction, and sums of ciphertexts decrypt to sums of plaintexts when the
pads are summed too.  Row ids are never operated on by SDB's secure
operators (Section 2.1: "a simpler encryption method suffices"), so this is
exactly the right tool: cheap, IND-CPA under the PRF assumption, and the
additive property comes for free for the storage substrate.

The nonce is stored next to the ciphertext at the SP; the key stays at the
DO's key store.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.contracts import plaintext_source, sanitizer
from repro.crypto.prf import prf_int


@dataclass(frozen=True)
class SIESKey:
    """SIES secret key: PRF key bytes plus the public modulus ``M``."""

    key: bytes
    modulus: int

    def __post_init__(self):
        if len(self.key) < 16:
            raise ValueError("SIES key must be at least 128 bits")
        if self.modulus < 2:
            raise ValueError("SIES modulus must be at least 2")

    @classmethod
    def generate(cls, modulus: int, rng=None) -> "SIESKey":
        if rng is not None:
            key = rng.getrandbits(256).to_bytes(32, "big")
        else:
            key = secrets.token_bytes(32)
        return cls(key=key, modulus=modulus)


@dataclass(frozen=True)
class SIESCiphertext:
    """A SIES ciphertext: the padded value and the pad's nonce."""

    value: int
    nonce: int


class SIESCipher:
    """Encrypt/decrypt row ids under a :class:`SIESKey`.

    Nonces are sequential by default (the upload pipeline assigns one per
    row); any unique-per-row integer works.
    """

    #: PRF input width for the nonce encoding (one source of truth for the
    #: scalar and bulk paths)
    _NONCE_BYTES = 16

    def __init__(self, key: SIESKey):
        self._key = key
        # pad parameters are fixed per key; derive once so the scalar and
        # bulk paths can never drift apart
        self._pad_bits = max(key.modulus.bit_length() + 64, 128)

    @property
    def modulus(self) -> int:
        return self._key.modulus

    def _pad(self, nonce: int) -> int:
        return prf_int(
            self._key.key,
            nonce.to_bytes(self._NONCE_BYTES, "big", signed=False),
            self._pad_bits,
        ) % self._key.modulus

    @sanitizer
    def encrypt(self, plaintext: int, nonce: int) -> SIESCiphertext:
        if not 0 <= plaintext < self._key.modulus:
            raise ValueError("plaintext outside SIES modulus range")
        return SIESCiphertext(
            value=(plaintext + self._pad(nonce)) % self._key.modulus,
            nonce=nonce,
        )

    @plaintext_source
    def decrypt(self, ciphertext: SIESCiphertext) -> int:
        return (ciphertext.value - self._pad(ciphertext.nonce)) % self._key.modulus

    @sanitizer
    def encrypt_many(
        self, plaintexts: Sequence[int], nonces: Sequence[int]
    ) -> list[SIESCiphertext]:
        """Encrypt a column of row ids in one pass (upload pipeline).

        Same per-element semantics as :meth:`encrypt`, with the key
        material, modulus and PRF parameters hoisted out of the loop so the
        only per-row work is the PRF call and one modular addition.
        """
        modulus = self._key.modulus
        key = self._key.key
        bits = self._pad_bits
        width = self._NONCE_BYTES
        out = []
        for plaintext, nonce in zip(plaintexts, nonces):
            if not 0 <= plaintext < modulus:
                raise ValueError("plaintext outside SIES modulus range")
            pad = prf_int(key, nonce.to_bytes(width, "big", signed=False), bits)
            out.append(
                SIESCiphertext(value=(plaintext + pad) % modulus, nonce=nonce)
            )
        return out

    @plaintext_source
    def decrypt_many(self, ciphertexts: Sequence[SIESCiphertext]) -> list[int]:
        """Decrypt a column of ciphertexts (inverse of :meth:`encrypt_many`)."""
        modulus = self._key.modulus
        key = self._key.key
        bits = self._pad_bits
        width = self._NONCE_BYTES
        return [
            (c.value - prf_int(key, c.nonce.to_bytes(width, "big", signed=False), bits))
            % modulus
            for c in ciphertexts
        ]

    def add(self, a: SIESCiphertext, b: SIESCiphertext, nonce: int) -> SIESCiphertext:
        """Additive homomorphism: re-noised ciphertext of ``a + b``.

        Exercised by the SIES test-suite to match the scheme's headline
        property (exact sum queries); SDB itself only needs encrypt/decrypt.
        """
        combined = (a.value + b.value) % self._key.modulus
        pad = (self._pad(a.nonce) + self._pad(b.nonce)) % self._key.modulus
        plain_sum = (combined - pad) % self._key.modulus
        return self.encrypt(plain_sum, nonce)
