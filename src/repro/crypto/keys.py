"""Key material for SDB's secret sharing scheme (paper Section 2.1).

The data owner maintains:

* a public RSA-style modulus ``n = rho1 * rho2`` (the factors and
  ``phi(n) = (rho1 - 1) * (rho2 - 1)`` stay secret at the DO),
* a secret generator ``g`` co-prime with ``n``,
* one **column key** ``ck = <m, x>`` per sensitive column, where
  ``0 < m, x < n`` are random.

The paper uses 1024-bit primes (2048-bit ``n``).  Key size is a parameter
here so tests can run with small moduli while benchmarks use paper-scale
material.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.crypto import ntheory

#: Modulus size used by the paper (two 1024-bit primes).
PAPER_MODULUS_BITS = 2048

#: Default bound (in bits) on plaintext magnitude.  Sensitive values must
#: satisfy ``|v| < 2**VALUE_BITS`` so that signed decoding and the masked
#: comparison protocol are unambiguous.  64 bits covers TPC-H's scaled
#: decimals with room to spare.
DEFAULT_VALUE_BITS = 64


@dataclass(frozen=True)
class ColumnKey:
    """A column key ``ck = <m, x>``.

    ``m`` is the multiplicative part and ``x`` the exponent part of the item
    key ``vk = m * g**(r * x) mod n`` (Definition 1).  Column keys live only
    in the DO's key store; the SP never sees them.
    """

    m: int
    x: int

    def __post_init__(self):
        if self.m <= 0 or self.x < 0:
            raise ValueError("column key parts must be positive (x may be 0)")

    def to_json(self) -> str:
        return json.dumps({"m": self.m, "x": self.x})

    @classmethod
    def from_json(cls, payload: str) -> "ColumnKey":
        data = json.loads(payload)
        return cls(m=int(data["m"]), x=int(data["x"]))


@dataclass(frozen=True)
class SystemKeys:
    """The DO's system-wide key material.

    Attributes
    ----------
    n:
        Public modulus ``rho1 * rho2``; shared with the SP (UDFs reduce
        modulo ``n``).
    g:
        Secret generator, co-prime with ``n``.
    rho1, rho2:
        The secret prime factors.
    phi:
        ``phi(n) = (rho1 - 1) * (rho2 - 1)``; exponents of ``g`` are reduced
        modulo ``phi`` (the paper's "mod phi(n)" convention after Def. 1).
    value_bits:
        Bound on plaintext magnitude (see :data:`DEFAULT_VALUE_BITS`).
    """

    n: int
    g: int
    rho1: int
    rho2: int
    phi: int
    value_bits: int = DEFAULT_VALUE_BITS

    def __post_init__(self):
        if self.rho1 * self.rho2 != self.n:
            raise ValueError("n must equal rho1 * rho2")
        if self.phi != (self.rho1 - 1) * (self.rho2 - 1):
            raise ValueError("phi must equal (rho1-1)*(rho2-1)")
        if ntheory.gcd(self.g, self.n) != 1:
            raise ValueError("g must be co-prime with n")
        if self.n.bit_length() < self.value_bits + 3:
            raise ValueError(
                "modulus too small for the configured plaintext domain"
            )

    @property
    def public(self) -> "PublicParams":
        """The part of the key material the SP is allowed to see."""
        return PublicParams(n=self.n, value_bits=self.value_bits)

    def random_column_key(self, rng=None) -> ColumnKey:
        """Draw a fresh uniform column key ``<m, x>``.

        ``m`` is sampled from ``Z_n*`` so item keys are invertible; ``x`` is
        sampled from ``[1, phi)`` so the exponent is a valid residue.
        """
        m = ntheory.random_unit(self.n, rng)
        x = ntheory.random_below(self.phi, rng)
        return ColumnKey(m=m, x=x)

    def random_row_id(self, rng=None) -> int:
        """Draw a random row id ``0 < r < n`` (Section 2.1)."""
        return ntheory.random_below(self.n, rng)


@dataclass(frozen=True)
class PublicParams:
    """Public parameters shipped to the SP alongside the UDFs.

    Only ``n`` (and the plaintext-domain width, which is public information
    about the schema) crosses the trust boundary.  ``g``, ``phi`` and the
    column keys never do.
    """

    n: int
    value_bits: int = DEFAULT_VALUE_BITS


def generate_system_keys(
    modulus_bits: int = PAPER_MODULUS_BITS,
    value_bits: int = DEFAULT_VALUE_BITS,
    rng=None,
) -> SystemKeys:
    """Generate fresh system keys.

    Follows the paper: pick two random primes ``rho1, rho2`` of
    ``modulus_bits / 2`` bits each, set ``n = rho1 * rho2``,
    ``phi = (rho1-1)(rho2-1)``, and pick a secret ``g`` co-prime with ``n``.

    ``rng`` may be provided for reproducible tests; production callers leave
    it ``None`` to use the OS CSPRNG.
    """
    if modulus_bits < 16:
        raise ValueError("modulus_bits must be at least 16")
    half = modulus_bits // 2
    rho1 = ntheory.random_prime(half, rng)
    rho2 = ntheory.random_prime(modulus_bits - half, rng)
    while rho2 == rho1:
        rho2 = ntheory.random_prime(modulus_bits - half, rng)
    n = rho1 * rho2
    phi = (rho1 - 1) * (rho2 - 1)
    g = ntheory.random_unit(n, rng)
    return SystemKeys(
        n=n, g=g, rho1=rho1, rho2=rho2, phi=phi, value_bits=value_bits
    )


def testing_system_keys(rng=None, value_bits: int = 24) -> SystemKeys:
    """Small (but still correct) key material for fast unit tests.

    Uses a 64-bit modulus: large enough that the ``value_bits``-bit plaintext
    domain and the masked comparison protocol behave exactly as at paper
    scale, small enough that property-based tests run thousands of cases.
    """
    return generate_system_keys(modulus_bits=64, value_bits=value_bits, rng=rng)
