"""Typed AST for the SQL dialect.

Plain dataclasses; the same node types are used on both sides of the trust
boundary -- the proxy's rewriter maps an application AST to a rewritten AST
in which sensitive operations have become :class:`FuncCall` nodes naming SDB
UDFs, and the SP engine plans/evaluates either form.

Every node renders back to SQL via ``to_sql()`` so the demo can display the
rewritten query exactly as the paper's Figure 3 does.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class Expr:
    """Base class for expressions."""

    def to_sql(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: int, float (decimal), str, bool, date or None."""

    value: object

    def to_sql(self) -> str:
        v = self.value
        if v is None:
            return "NULL"
        if isinstance(v, bool):
            return "TRUE" if v else "FALSE"
        if isinstance(v, datetime.date):
            return f"DATE '{v.isoformat()}'"
        if isinstance(v, str):
            escaped = v.replace("'", "''")
            return f"'{escaped}'"
        return str(v)


@dataclass(frozen=True)
class Placeholder(Expr):
    """A ``?`` parameter marker (0-based ``index``; qmark paramstyle).

    Placeholders survive rewriting: the proxy's rewriter routes them through
    the same SP-side ``sdb_enc`` path it uses for any non-constant
    insensitive operand, so a prepared statement's rewritten query still
    contains the markers and binding a parameter set is a pure AST
    substitution (:func:`repro.sql.params.bind_parameters`) -- no re-parse,
    no re-rewrite.  ``to_sql`` renders the explicit 1-based form ``?N`` so a
    rewritten query (where markers may appear out of order or more than
    once) round-trips through the wire protocol unambiguously.
    """

    index: int

    def to_sql(self) -> str:
        return f"?{self.index + 1}"


@dataclass(frozen=True)
class Interval(Expr):
    """``INTERVAL '3' MONTH`` -- date arithmetic operand."""

    amount: int
    unit: str  # 'year' | 'month' | 'day'

    def to_sql(self) -> str:
        return f"INTERVAL '{self.amount}' {self.unit.upper()}"


@dataclass(frozen=True)
class Column(Expr):
    """A (possibly table-qualified) column reference."""

    name: str
    table: Optional[str] = None

    def to_sql(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Arithmetic / comparison / logical binary operator."""

    op: str  # '+', '-', '*', '/', '=', '<>', '<', '<=', '>', '>=', 'and', 'or', '||'
    left: Expr
    right: Expr

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op.upper()} {self.right.to_sql()})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # '-', 'not'
    operand: Expr

    def to_sql(self) -> str:
        return f"({self.op.upper()} {self.operand.to_sql()})"


@dataclass(frozen=True)
class FuncCall(Expr):
    """A scalar function call; rewritten queries use SDB UDF names here."""

    name: str
    args: tuple[Expr, ...]

    def to_sql(self) -> str:
        return f"{self.name}({', '.join(a.to_sql() for a in self.args)})"


@dataclass(frozen=True)
class Aggregate(Expr):
    """``SUM/AVG/COUNT/MIN/MAX([DISTINCT] expr)`` or ``COUNT(*)``."""

    func: str
    arg: Optional[Expr]  # None for COUNT(*)
    distinct: bool = False

    def to_sql(self) -> str:
        if self.arg is None:
            return f"{self.func.upper()}(*)"
        inner = ("DISTINCT " if self.distinct else "") + self.arg.to_sql()
        return f"{self.func.upper()}({inner})"


@dataclass(frozen=True)
class CaseWhen(Expr):
    """Searched CASE expression."""

    branches: tuple[tuple[Expr, Expr], ...]  # (condition, result)
    default: Optional[Expr] = None

    def to_sql(self) -> str:
        parts = ["CASE"]
        for cond, result in self.branches:
            parts.append(f"WHEN {cond.to_sql()} THEN {result.to_sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.to_sql()}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True)
class Between(Expr):
    subject: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def to_sql(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return (
            f"({self.subject.to_sql()} {maybe_not}BETWEEN "
            f"{self.low.to_sql()} AND {self.high.to_sql()})"
        )


@dataclass(frozen=True)
class InList(Expr):
    subject: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def to_sql(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        items = ", ".join(item.to_sql() for item in self.items)
        return f"({self.subject.to_sql()} {maybe_not}IN ({items}))"


@dataclass(frozen=True)
class InSubquery(Expr):
    subject: Expr
    query: "Select"
    negated: bool = False

    def to_sql(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return f"({self.subject.to_sql()} {maybe_not}IN ({self.query.to_sql()}))"


@dataclass(frozen=True)
class Exists(Expr):
    query: "Select"
    negated: bool = False

    def to_sql(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return f"({maybe_not}EXISTS ({self.query.to_sql()}))"


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    query: "Select"

    def to_sql(self) -> str:
        return f"({self.query.to_sql()})"


@dataclass(frozen=True)
class Like(Expr):
    subject: Expr
    pattern: str
    negated: bool = False

    def to_sql(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        escaped = self.pattern.replace("'", "''")
        return f"({self.subject.to_sql()} {maybe_not}LIKE '{escaped}')"


@dataclass(frozen=True)
class IsNull(Expr):
    subject: Expr
    negated: bool = False

    def to_sql(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return f"({self.subject.to_sql()} IS {maybe_not}NULL)"


@dataclass(frozen=True)
class Extract(Expr):
    """``EXTRACT(YEAR FROM expr)``."""

    unit: str
    operand: Expr

    def to_sql(self) -> str:
        return f"EXTRACT({self.unit.upper()} FROM {self.operand.to_sql()})"


@dataclass(frozen=True)
class Substring(Expr):
    """``SUBSTRING(expr FROM start FOR length)`` (1-based, SQL style)."""

    operand: Expr
    start: Expr
    length: Optional[Expr] = None

    def to_sql(self) -> str:
        tail = f" FOR {self.length.to_sql()}" if self.length is not None else ""
        return f"SUBSTRING({self.operand.to_sql()} FROM {self.start.to_sql()}{tail})"


# --------------------------------------------------------------------------
# Relations / query structure
# --------------------------------------------------------------------------


class TableExpr:
    """Base class for FROM items."""

    def to_sql(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class TableRef(TableExpr):
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name

    def to_sql(self) -> str:
        return f"{self.name} {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class SubqueryRef(TableExpr):
    """A derived table: ``(SELECT ...) alias``."""

    query: "Select"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias

    def to_sql(self) -> str:
        return f"({self.query.to_sql()}) {self.alias}"


@dataclass(frozen=True)
class Join(TableExpr):
    """Explicit join; ``kind`` is 'inner', 'left' or 'cross'."""

    left: TableExpr
    right: TableExpr
    kind: str = "inner"
    condition: Optional[Expr] = None

    def to_sql(self) -> str:
        kw = {"inner": "JOIN", "left": "LEFT OUTER JOIN", "cross": "CROSS JOIN"}[self.kind]
        on = f" ON {self.condition.to_sql()}" if self.condition is not None else ""
        return f"{self.left.to_sql()} {kw} {self.right.to_sql()}{on}"


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None

    def to_sql(self) -> str:
        return f"{self.expr.to_sql()} AS {self.alias}" if self.alias else self.expr.to_sql()


@dataclass(frozen=True)
class Star(Expr):
    """``SELECT *`` (optionally qualified ``t.*``)."""

    table: Optional[str] = None

    def to_sql(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False

    def to_sql(self) -> str:
        return self.expr.to_sql() + (" DESC" if self.descending else "")


@dataclass(frozen=True)
class Select:
    """A SELECT statement (the only statement the proxy accepts from apps;
    DDL/upload runs through the client API instead)."""

    items: tuple[SelectItem, ...]
    from_clause: Optional[TableExpr] = None
    where: Optional[Expr] = None
    group_by: tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False

    def to_sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(item.to_sql() for item in self.items))
        if self.from_clause is not None:
            parts.append("FROM " + self.from_clause.to_sql())
        if self.where is not None:
            parts.append("WHERE " + self.where.to_sql())
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(g.to_sql() for g in self.group_by))
        if self.having is not None:
            parts.append("HAVING " + self.having.to_sql())
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.to_sql() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


# --------------------------------------------------------------------------
# DML statements
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Insert:
    """``INSERT INTO table [(col, ...)] VALUES (expr, ...), ...``.

    The proxy evaluates the value expressions locally (they must be
    constant), encrypts sensitive positions, and submits an INSERT whose
    literals are shares -- the code path a CPA attacker watches.
    """

    table: str
    columns: Optional[tuple[str, ...]]
    rows: tuple[tuple[Expr, ...], ...]

    def to_sql(self) -> str:
        cols = f" ({', '.join(self.columns)})" if self.columns else ""
        rows = ", ".join(
            "(" + ", ".join(v.to_sql() for v in row) + ")" for row in self.rows
        )
        return f"INSERT INTO {self.table}{cols} VALUES {rows}"


@dataclass(frozen=True)
class Assignment:
    """One ``column = expr`` pair of an UPDATE's SET list."""

    column: str
    value: Expr

    def to_sql(self) -> str:
        return f"{self.column} = {self.value.to_sql()}"


@dataclass(frozen=True)
class Update:
    """``UPDATE table SET col = expr, ... [WHERE pred]``."""

    table: str
    assignments: tuple[Assignment, ...]
    where: Optional[Expr] = None

    def to_sql(self) -> str:
        sets = ", ".join(a.to_sql() for a in self.assignments)
        where = f" WHERE {self.where.to_sql()}" if self.where is not None else ""
        return f"UPDATE {self.table} SET {sets}{where}"


@dataclass(frozen=True)
class Delete:
    """``DELETE FROM table [WHERE pred]``."""

    table: str
    where: Optional[Expr] = None

    def to_sql(self) -> str:
        where = f" WHERE {self.where.to_sql()}" if self.where is not None else ""
        return f"DELETE FROM {self.table}{where}"


@dataclass(frozen=True)
class TxnControl:
    """``BEGIN [TRANSACTION]`` / ``COMMIT`` / ``ROLLBACK``."""

    kind: str  # 'begin' | 'commit' | 'rollback'

    def to_sql(self) -> str:
        return self.kind.upper()


# --------------------------------------------------------------------------
# DDL statements
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnDef:
    """One column of a ``CREATE TABLE``: name, type, sensitivity choice."""

    name: str
    type_name: str  # 'int' | 'decimal' | 'date' | 'string' | 'bool'
    arg: Optional[int] = None  # scale (DECIMAL) or byte width (STRING)
    encrypted: bool = False

    _TYPE_SQL = {
        "int": "INT", "decimal": "DECIMAL", "date": "DATE",
        "string": "STRING", "bool": "BOOL",
    }

    def to_sql(self) -> str:
        type_sql = self._TYPE_SQL[self.type_name]
        if self.arg is not None:
            type_sql += f"({self.arg})"
        suffix = " ENCRYPTED" if self.encrypted else ""
        return f"{self.name} {type_sql}{suffix}"


@dataclass(frozen=True)
class CreateTable:
    """``CREATE TABLE t (col type [ENCRYPTED], ...) [SHARD BY (col)]``.

    DDL never reaches the SP as text: the proxy turns it into an encrypted
    (possibly shard-routed) upload, exactly like the client-API path.
    """

    table: str
    columns: tuple[ColumnDef, ...]
    shard_by: Optional[str] = None

    def to_sql(self) -> str:
        cols = ", ".join(c.to_sql() for c in self.columns)
        shard = f" SHARD BY ({self.shard_by})" if self.shard_by else ""
        return f"CREATE TABLE {self.table} ({cols}){shard}"


@dataclass(frozen=True)
class AlterCluster:
    """``ALTER CLUSTER ADD SHARD ['host:port']`` / ``ALTER CLUSTER REMOVE SHARD``.

    Cluster DDL never reaches a service provider as text: the proxy turns
    it into a topology change driven through the rebalance protocol
    (:mod:`repro.cluster.rebalance`).  ``endpoint`` names a remote shard
    daemon to add; ``None`` grows with an in-process shard backend.
    """

    action: str  # 'add' | 'remove'
    endpoint: Optional[str] = None

    def to_sql(self) -> str:
        if self.action == "add":
            suffix = f" '{self.endpoint}'" if self.endpoint else ""
            return f"ALTER CLUSTER ADD SHARD{suffix}"
        return "ALTER CLUSTER REMOVE SHARD"


# --------------------------------------------------------------------------
# Introspection statements
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Explain:
    """``EXPLAIN <statement>`` -- describe the plan without executing.

    The wrapped statement is parsed normally; the session layer answers
    with a :class:`~repro.engine.planner.PlanNode` tree instead of running
    it, so an EXPLAIN never contacts a service provider beyond (cached)
    catalog metadata.
    """

    statement: "Statement"

    def to_sql(self) -> str:
        return f"EXPLAIN {self.statement.to_sql()}"


#: Any parsable statement.
Statement = Union[
    Select, Insert, Update, Delete, TxnControl, CreateTable, AlterCluster,
    Explain,
]


COMPARISON_OPS = {"=", "<>", "<", "<=", ">", ">="}
ARITHMETIC_OPS = {"+", "-", "*", "/"}
LOGICAL_OPS = {"and", "or"}


def walk(expr: Expr):
    """Yield ``expr`` and every sub-expression (not descending into subqueries)."""
    yield expr
    children: Sequence[Expr] = ()
    if isinstance(expr, BinaryOp):
        children = (expr.left, expr.right)
    elif isinstance(expr, UnaryOp):
        children = (expr.operand,)
    elif isinstance(expr, FuncCall):
        children = expr.args
    elif isinstance(expr, Aggregate) and expr.arg is not None:
        children = (expr.arg,)
    elif isinstance(expr, CaseWhen):
        children = [c for pair in expr.branches for c in pair]
        if expr.default is not None:
            children = list(children) + [expr.default]
    elif isinstance(expr, Between):
        children = (expr.subject, expr.low, expr.high)
    elif isinstance(expr, InList):
        children = (expr.subject, *expr.items)
    elif isinstance(expr, (InSubquery, Like, IsNull)):
        children = (expr.subject,)
    elif isinstance(expr, (Extract,)):
        children = (expr.operand,)
    elif isinstance(expr, Substring):
        children = (expr.operand, expr.start) + (
            (expr.length,) if expr.length is not None else ()
        )
    for child in children:
        yield from walk(child)
