"""SQL frontend: lexer, AST and parser.

The SDB proxy accepts plain SQL from the application (paper Figure 2, step
1), parses it here, rewrites sensitive operations to UDF calls, and submits
the rewritten AST to the service provider's engine.  The dialect covers the
full TPC-H query set: inner/left joins, correlated and uncorrelated
subqueries, IN/EXISTS, aggregates, CASE, LIKE, BETWEEN, EXTRACT, SUBSTRING
and date/interval arithmetic.
"""

from repro.sql.ast import *  # noqa: F401,F403 -- re-export the AST nodes
from repro.sql.lexer import LexError, tokenize
from repro.sql.parser import ParseError, parse

__all__ = ["tokenize", "parse", "LexError", "ParseError"]
