"""Recursive-descent SQL parser.

Grammar (precedence low to high): OR, AND, NOT, predicates
(comparison / BETWEEN / IN / LIKE / IS NULL / EXISTS), additive,
multiplicative, unary minus, primary.  Covers everything the 22 TPC-H
queries need.
"""

from __future__ import annotations

import datetime

from repro.sql import ast
from repro.sql.lexer import Token, tokenize

AGGREGATE_FUNCS = {"count", "sum", "avg", "min", "max"}


class ParseError(ValueError):
    """Raised on malformed SQL, with the offending token position."""


def parse(sql: str) -> ast.Select:
    """Parse a single SELECT statement."""
    parser = _Parser(tokenize(sql))
    select = parser.parse_select()
    parser.expect_eof()
    return select


def parse_statement(sql: str) -> ast.Statement:
    """Parse any supported statement: SELECT, INSERT, UPDATE or DELETE."""
    parser = _Parser(tokenize(sql))
    statement = parser.parse_statement()
    parser.expect_eof()
    return statement


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0
        self._param_seq = 0  # next positional index for a bare ``?``

    # -- token helpers ----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        self._pos += 1
        return token

    def _check(self, kind: str, text: str = None) -> bool:
        return self._current.matches(kind, text)

    def _accept(self, kind: str, text: str = None) -> Token:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str = None) -> Token:
        if not self._check(kind, text):
            want = text or kind
            got = self._current.text or self._current.kind
            raise ParseError(
                f"expected {want!r}, got {got!r} at position {self._current.position}"
            )
        return self._advance()

    def expect_eof(self):
        self._accept("symbol", ";")
        if not self._check("eof"):
            raise ParseError(
                f"unexpected trailing input at position {self._current.position}: "
                f"{self._current.text!r}"
            )

    # -- statements --------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        if self._check("keyword", "explain"):
            self._advance()
            inner = self.parse_statement()
            if isinstance(inner, ast.Explain):
                raise ParseError("EXPLAIN cannot be nested")
            return ast.Explain(statement=inner)
        if self._check("keyword", "select"):
            return self.parse_select()
        if self._check("keyword", "insert"):
            return self.parse_insert()
        if self._check("keyword", "update"):
            return self.parse_update()
        if self._check("keyword", "delete"):
            return self.parse_delete()
        if self._check("keyword", "create"):
            return self.parse_create()
        if self._check("keyword", "alter"):
            return self.parse_alter()
        if self._check("keyword", "begin"):
            self._advance()
            self._accept("keyword", "transaction")
            return ast.TxnControl(kind="begin")
        if self._check("keyword", "commit"):
            self._advance()
            return ast.TxnControl(kind="commit")
        if self._check("keyword", "rollback"):
            self._advance()
            return ast.TxnControl(kind="rollback")
        got = self._current.text or self._current.kind
        raise ParseError(f"expected a statement, got {got!r} at position "
                         f"{self._current.position}")

    def parse_insert(self) -> ast.Insert:
        self._expect("keyword", "insert")
        self._expect("keyword", "into")
        table = self._expect_name()
        columns = None
        if self._accept("symbol", "("):
            names = [self._expect_name()]
            while self._accept("symbol", ","):
                names.append(self._expect_name())
            self._expect("symbol", ")")
            columns = tuple(names)
        self._expect("keyword", "values")
        rows = [self._parse_value_row()]
        while self._accept("symbol", ","):
            rows.append(self._parse_value_row())
        width = len(rows[0])
        for row in rows:
            if len(row) != width:
                raise ParseError("INSERT rows have inconsistent widths")
        if columns is not None and width != len(columns):
            raise ParseError(
                f"INSERT names {len(columns)} columns but rows have {width} values"
            )
        return ast.Insert(table=table, columns=columns, rows=tuple(rows))

    def _parse_value_row(self) -> tuple:
        self._expect("symbol", "(")
        values = [self.parse_expr()]
        while self._accept("symbol", ","):
            values.append(self.parse_expr())
        self._expect("symbol", ")")
        return tuple(values)

    #: accepted type spellings -> canonical ColumnDef.type_name
    _COLUMN_TYPES = {
        "int": "int", "integer": "int",
        "decimal": "decimal", "numeric": "decimal",
        "date": "date",
        "string": "string", "varchar": "string", "char": "string",
        "text": "string",
        "bool": "bool", "boolean": "bool",
    }

    def parse_create(self) -> ast.CreateTable:
        """``CREATE TABLE t (col TYPE [ENCRYPTED], ...) [SHARD BY (col)]``."""
        self._expect("keyword", "create")
        self._expect("keyword", "table")
        table = self._expect_name()
        self._expect("symbol", "(")
        columns = [self._parse_column_def()]
        while self._accept("symbol", ","):
            columns.append(self._parse_column_def())
        self._expect("symbol", ")")
        shard_by = None
        if self._accept("keyword", "shard"):
            self._expect("keyword", "by")
            self._expect("symbol", "(")
            shard_by = self._expect_name()
            self._expect("symbol", ")")
            if shard_by not in {c.name for c in columns}:
                raise ParseError(
                    f"SHARD BY column {shard_by!r} is not defined by the table"
                )
        return ast.CreateTable(
            table=table, columns=tuple(columns), shard_by=shard_by
        )

    def parse_alter(self) -> ast.AlterCluster:
        """``ALTER CLUSTER ADD SHARD ['host:port']`` / ``REMOVE SHARD``."""
        self._expect("keyword", "alter")
        self._expect("keyword", "cluster")
        # ADD/REMOVE are not reserved words (columns may use them), so they
        # arrive as identifiers and are matched by text
        token = self._current
        action = token.text if token.kind in ("ident", "keyword") else None
        if action not in ("add", "remove"):
            raise ParseError(
                f"expected ADD SHARD or REMOVE SHARD, got {token.text!r} at "
                f"position {token.position}"
            )
        self._advance()
        self._expect("keyword", "shard")
        endpoint = None
        if action == "add" and self._check("string"):
            endpoint = self._advance().text
        return ast.AlterCluster(action=action, endpoint=endpoint)

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self._expect_name()
        token = self._current
        if token.kind not in ("ident", "keyword"):
            raise ParseError(
                f"expected a column type, got {token.text!r} at position "
                f"{token.position}"
            )
        type_name = self._COLUMN_TYPES.get(token.text)
        if type_name is None:
            raise ParseError(
                f"unknown column type {token.text!r} at position {token.position}"
            )
        self._advance()
        arg = None
        if self._accept("symbol", "("):
            number = self._expect("number")
            try:
                arg = int(number.text)
            except ValueError:
                raise ParseError(
                    f"type argument must be an integer, got {number.text!r}"
                ) from None
            self._expect("symbol", ")")
        encrypted = bool(self._accept("keyword", "encrypted"))
        return ast.ColumnDef(
            name=name, type_name=type_name, arg=arg, encrypted=encrypted
        )

    def parse_update(self) -> ast.Update:
        self._expect("keyword", "update")
        table = self._expect_name()
        self._expect("keyword", "set")
        assignments = [self._parse_assignment()]
        while self._accept("symbol", ","):
            assignments.append(self._parse_assignment())
        where = self.parse_expr() if self._accept("keyword", "where") else None
        return ast.Update(table=table, assignments=tuple(assignments), where=where)

    def _parse_assignment(self) -> ast.Assignment:
        column = self._expect_name()
        self._expect("symbol", "=")
        return ast.Assignment(column=column, value=self.parse_expr())

    def parse_delete(self) -> ast.Delete:
        self._expect("keyword", "delete")
        self._expect("keyword", "from")
        table = self._expect_name()
        where = self.parse_expr() if self._accept("keyword", "where") else None
        return ast.Delete(table=table, where=where)

    def parse_select(self) -> ast.Select:
        self._expect("keyword", "select")
        distinct = bool(self._accept("keyword", "distinct"))
        items = [self._parse_select_item()]
        while self._accept("symbol", ","):
            items.append(self._parse_select_item())

        from_clause = None
        if self._accept("keyword", "from"):
            from_clause = self._parse_from()

        where = self.parse_expr() if self._accept("keyword", "where") else None

        group_by: list[ast.Expr] = []
        if self._accept("keyword", "group"):
            self._expect("keyword", "by")
            group_by.append(self.parse_expr())
            while self._accept("symbol", ","):
                group_by.append(self.parse_expr())

        having = self.parse_expr() if self._accept("keyword", "having") else None

        order_by: list[ast.OrderItem] = []
        if self._accept("keyword", "order"):
            self._expect("keyword", "by")
            order_by.append(self._parse_order_item())
            while self._accept("symbol", ","):
                order_by.append(self._parse_order_item())

        limit = None
        if self._accept("keyword", "limit"):
            limit = int(self._expect("number").text)

        return ast.Select(
            items=tuple(items),
            from_clause=from_clause,
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        if self._check("symbol", "*"):
            self._advance()
            return ast.SelectItem(expr=ast.Star())
        expr = self.parse_expr()
        alias = None
        if self._accept("keyword", "as"):
            alias = self._expect_name()
        elif self._check("ident"):
            alias = self._advance().text
        return ast.SelectItem(expr=expr, alias=alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        descending = False
        if self._accept("keyword", "desc"):
            descending = True
        else:
            self._accept("keyword", "asc")
        return ast.OrderItem(expr=expr, descending=descending)

    def _expect_name(self) -> str:
        token = self._current
        if token.kind in ("ident", "keyword"):
            self._advance()
            return token.text
        raise ParseError(f"expected a name at position {token.position}")

    # -- FROM clause -------------------------------------------------------

    def _parse_from(self) -> ast.TableExpr:
        left = self._parse_join_chain()
        while self._accept("symbol", ","):
            right = self._parse_join_chain()
            left = ast.Join(left=left, right=right, kind="cross")
        return left

    def _parse_join_chain(self) -> ast.TableExpr:
        left = self._parse_table_primary()
        while True:
            kind = None
            if self._accept("keyword", "cross"):
                self._expect("keyword", "join")
                kind = "cross"
            elif self._check("keyword", "join") or self._check("keyword", "inner"):
                self._accept("keyword", "inner")
                self._expect("keyword", "join")
                kind = "inner"
            elif self._check("keyword", "left"):
                self._advance()
                self._accept("keyword", "outer")
                self._expect("keyword", "join")
                kind = "left"
            else:
                return left
            right = self._parse_table_primary()
            condition = None
            if kind != "cross":
                self._expect("keyword", "on")
                condition = self.parse_expr()
            left = ast.Join(left=left, right=right, kind=kind, condition=condition)

    def _parse_table_primary(self) -> ast.TableExpr:
        if self._accept("symbol", "("):
            query = self.parse_select()
            self._expect("symbol", ")")
            self._accept("keyword", "as")
            alias = self._expect_name()
            return ast.SubqueryRef(query=query, alias=alias)
        name = self._expect_name()
        alias = None
        if self._accept("keyword", "as"):
            alias = self._expect_name()
        elif self._check("ident"):
            alias = self._advance().text
        return ast.TableRef(name=name, alias=alias)

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._accept("keyword", "or"):
            left = ast.BinaryOp(op="or", left=left, right=self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._accept("keyword", "and"):
            left = ast.BinaryOp(op="and", left=left, right=self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self._accept("keyword", "not"):
            return ast.UnaryOp(op="not", operand=self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expr:
        left = self._parse_additive()
        negated = bool(self._accept("keyword", "not"))
        if self._accept("keyword", "between"):
            low = self._parse_additive()
            self._expect("keyword", "and")
            high = self._parse_additive()
            return ast.Between(subject=left, low=low, high=high, negated=negated)
        if self._accept("keyword", "in"):
            self._expect("symbol", "(")
            if self._check("keyword", "select"):
                query = self.parse_select()
                self._expect("symbol", ")")
                return ast.InSubquery(subject=left, query=query, negated=negated)
            items = [self.parse_expr()]
            while self._accept("symbol", ","):
                items.append(self.parse_expr())
            self._expect("symbol", ")")
            return ast.InList(subject=left, items=tuple(items), negated=negated)
        if self._accept("keyword", "like"):
            pattern = self._expect("string").text
            return ast.Like(subject=left, pattern=pattern, negated=negated)
        if negated:
            raise ParseError(
                f"expected BETWEEN/IN/LIKE after NOT at position {self._current.position}"
            )
        if self._accept("keyword", "is"):
            is_negated = bool(self._accept("keyword", "not"))
            self._expect("keyword", "null")
            return ast.IsNull(subject=left, negated=is_negated)
        for op in ("<=", ">=", "<>", "!=", "=", "<", ">"):
            if self._accept("symbol", op):
                right = self._parse_additive()
                canonical = "<>" if op == "!=" else op
                return ast.BinaryOp(op=canonical, left=left, right=right)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            if self._accept("symbol", "+"):
                left = ast.BinaryOp(op="+", left=left, right=self._parse_multiplicative())
            elif self._accept("symbol", "-"):
                left = ast.BinaryOp(op="-", left=left, right=self._parse_multiplicative())
            elif self._accept("symbol", "||"):
                left = ast.BinaryOp(op="||", left=left, right=self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            if self._accept("symbol", "*"):
                left = ast.BinaryOp(op="*", left=left, right=self._parse_unary())
            elif self._accept("symbol", "/"):
                left = ast.BinaryOp(op="/", left=left, right=self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        if self._accept("symbol", "-"):
            operand = self._parse_unary()
            if isinstance(operand, ast.Literal) and isinstance(operand.value, (int, float)):
                return ast.Literal(value=-operand.value)
            return ast.UnaryOp(op="-", operand=operand)
        if self._accept("symbol", "+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._current

        if token.matches("symbol", "("):
            self._advance()
            if self._check("keyword", "select"):
                query = self.parse_select()
                self._expect("symbol", ")")
                return ast.ScalarSubquery(query=query)
            expr = self.parse_expr()
            self._expect("symbol", ")")
            return expr

        if token.kind == "number":
            self._advance()
            text = token.text
            return ast.Literal(value=float(text) if "." in text else int(text))

        if token.kind == "string":
            self._advance()
            return ast.Literal(value=token.text)

        if token.kind == "param":
            self._advance()
            if len(token.text) > 1:  # explicit 1-based ``?N``
                index = int(token.text[1:]) - 1
                if index < 0:
                    raise ParseError(
                        f"parameter markers are 1-based: {token.text!r} at "
                        f"position {token.position}"
                    )
            else:  # bare ``?``: next positional slot
                index = self._param_seq
            self._param_seq = max(self._param_seq, index + 1)
            return ast.Placeholder(index=index)

        if token.matches("keyword", "null"):
            self._advance()
            return ast.Literal(value=None)
        if token.matches("keyword", "true"):
            self._advance()
            return ast.Literal(value=True)
        if token.matches("keyword", "false"):
            self._advance()
            return ast.Literal(value=False)

        if token.matches("keyword", "date"):
            self._advance()
            text = self._expect("string").text
            return ast.Literal(value=datetime.date.fromisoformat(text))

        if token.matches("keyword", "interval"):
            self._advance()
            amount = int(self._expect("string").text)
            unit = self._advance().text
            if unit not in ("year", "month", "day"):
                raise ParseError(f"unknown interval unit {unit!r}")
            return ast.Interval(amount=amount, unit=unit)

        if token.matches("keyword", "case"):
            return self._parse_case()

        if token.matches("keyword", "exists"):
            self._advance()
            self._expect("symbol", "(")
            query = self.parse_select()
            self._expect("symbol", ")")
            return ast.Exists(query=query)

        if token.matches("keyword", "extract"):
            self._advance()
            self._expect("symbol", "(")
            unit = self._advance().text
            if unit not in ("year", "month", "day"):
                raise ParseError(f"cannot EXTRACT {unit!r}")
            self._expect("keyword", "from")
            operand = self.parse_expr()
            self._expect("symbol", ")")
            return ast.Extract(unit=unit, operand=operand)

        if token.matches("keyword", "substring"):
            self._advance()
            self._expect("symbol", "(")
            operand = self.parse_expr()
            if self._accept("keyword", "from"):
                start = self.parse_expr()
                length = self.parse_expr() if self._accept("keyword", "for") else None
            else:
                self._expect("symbol", ",")
                start = self.parse_expr()
                length = self.parse_expr() if self._accept("symbol", ",") else None
            self._expect("symbol", ")")
            return ast.Substring(operand=operand, start=start, length=length)

        if token.kind == "keyword" and token.text in AGGREGATE_FUNCS:
            return self._parse_aggregate()

        if token.kind == "ident":
            return self._parse_identifier()

        raise ParseError(
            f"unexpected token {token.text!r} at position {token.position}"
        )

    def _parse_case(self) -> ast.Expr:
        self._expect("keyword", "case")
        branches = []
        while self._accept("keyword", "when"):
            cond = self.parse_expr()
            self._expect("keyword", "then")
            branches.append((cond, self.parse_expr()))
        if not branches:
            raise ParseError("CASE requires at least one WHEN branch")
        default = self.parse_expr() if self._accept("keyword", "else") else None
        self._expect("keyword", "end")
        return ast.CaseWhen(branches=tuple(branches), default=default)

    def _parse_aggregate(self) -> ast.Expr:
        func = self._advance().text
        self._expect("symbol", "(")
        if func == "count" and self._accept("symbol", "*"):
            self._expect("symbol", ")")
            return ast.Aggregate(func="count", arg=None)
        distinct = bool(self._accept("keyword", "distinct"))
        arg = self.parse_expr()
        self._expect("symbol", ")")
        return ast.Aggregate(func=func, arg=arg, distinct=distinct)

    def _parse_identifier(self) -> ast.Expr:
        name = self._advance().text
        if self._accept("symbol", "."):
            if self._check("symbol", "*"):
                self._advance()
                return ast.Star(table=name)
            column = self._expect_name()
            return ast.Column(name=column, table=name)
        if self._accept("symbol", "("):
            args = []
            if not self._check("symbol", ")"):
                args.append(self.parse_expr())
                while self._accept("symbol", ","):
                    args.append(self.parse_expr())
            self._expect("symbol", ")")
            return ast.FuncCall(name=name, args=tuple(args))
        return ast.Column(name=name)
