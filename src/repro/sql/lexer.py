"""SQL lexer.

Produces a flat token stream for the recursive-descent parser.  Tokens carry
their source position so parse errors point at the offending character.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having", "order",
    "limit", "as", "and", "or", "not", "in", "like", "between", "is", "null",
    "case", "when", "then", "else", "end", "exists", "join", "inner", "left",
    "right", "outer", "on", "asc", "desc", "union", "all", "date", "interval",
    "year", "month", "day", "extract", "substring", "for", "count", "sum",
    "avg", "min", "max", "true", "false", "cross",
    "insert", "into", "values", "update", "set", "delete",
    "begin", "commit", "rollback", "transaction",
    "create", "table", "shard", "encrypted",
    "alter", "cluster",
    "explain",
}

SYMBOLS = (
    "<=", ">=", "<>", "!=", "||", "=", "<", ">", "(", ")", ",", "+", "-",
    "*", "/", ".", ";",
)


class LexError(ValueError):
    """Raised on an unrecognized character sequence."""


@dataclass(frozen=True)
class Token:
    kind: str  # 'keyword' | 'ident' | 'number' | 'string' | 'symbol' | 'param' | 'eof'
    text: str
    position: int

    def matches(self, kind: str, text: str = None) -> bool:
        return self.kind == kind and (text is None or self.text == text)


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; keywords are case-insensitive, identifiers lowered.

    String literals use single quotes with ``''`` escaping.  Numbers may be
    integers or decimals (no exponent form; TPC-H does not need it).
    """
    return list(_scan(sql))


def _scan(sql: str) -> Iterator[Token]:
    i = 0
    length = len(sql)
    while i < length:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):  # line comment
            end = sql.find("\n", i)
            i = length if end < 0 else end + 1
            continue
        if ch == "'":
            text, i = _scan_string(sql, i)
            yield Token("string", text, i)
            continue
        if ch == "?":
            # parameter marker: bare ``?`` (positional) or explicit ``?N``
            # (1-based), the form rewritten queries render
            start = i
            i += 1
            while i < length and sql[i].isdigit():
                i += 1
            yield Token("param", sql[start:i], start)
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length and sql[i + 1].isdigit()):
            start = i
            while i < length and (sql[i].isdigit() or sql[i] == "."):
                i += 1
            yield Token("number", sql[start:i], start)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i].lower()
            yield Token("keyword" if word in KEYWORDS else "ident", word, start)
            continue
        for symbol in SYMBOLS:
            if sql.startswith(symbol, i):
                yield Token("symbol", symbol, i)
                i += len(symbol)
                break
        else:
            raise LexError(f"unexpected character {ch!r} at position {i}")
    yield Token("eof", "", length)


def _scan_string(sql: str, start: int) -> tuple[str, int]:
    i = start + 1
    parts = []
    while True:
        if i >= len(sql):
            raise LexError(f"unterminated string literal starting at {start}")
        ch = sql[i]
        if ch == "'":
            if i + 1 < len(sql) and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
