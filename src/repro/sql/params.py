"""Parameter markers: discovery and binding.

A prepared statement's AST -- application-side *and* rewritten -- may
contain :class:`~repro.sql.ast.Placeholder` nodes.  Binding a parameter row
substitutes each marker with a :class:`~repro.sql.ast.Literal` carrying the
supplied value.  The substitution is identity-preserving: subtrees without
markers are returned unchanged (not copied), so binding a large rewritten
query costs only the paths that actually lead to a marker.

Both helpers walk dataclass AST nodes generically, so they cover every
statement kind (and every future node type) without a per-node case table.
"""

from __future__ import annotations

import dataclasses
import datetime

from repro.sql import ast

#: Python types a parameter value may have (mirrors what Literal carries).
BINDABLE_TYPES = (bool, int, float, str, datetime.date)


class BindError(ValueError):
    """Parameter count/type mismatch while binding a statement."""


def _is_ast_node(obj) -> bool:
    return dataclasses.is_dataclass(obj) and not isinstance(obj, type)


def walk_nodes(node):
    """Yield ``node`` and every dataclass AST node reachable from it.

    Unlike :func:`repro.sql.ast.walk` this descends into *everything*:
    statements, FROM clauses, subqueries, INSERT value rows.
    """
    if _is_ast_node(node):
        yield node
        values = (getattr(node, f.name) for f in dataclasses.fields(node))
    elif isinstance(node, (tuple, list)):
        values = node
    else:
        return
    for value in values:
        yield from walk_nodes(value)


def num_parameters(statement) -> int:
    """Number of parameters a statement expects (max marker index + 1)."""
    highest = -1
    for node in walk_nodes(statement):
        if isinstance(node, ast.Placeholder):
            highest = max(highest, node.index)
    return highest + 1


def transform_nodes(node, leaf):
    """Depth-first, identity-preserving AST rewrite.

    ``leaf(node)`` returns a replacement node to stop descending, or None
    to recurse into the children.  Untouched subtrees are returned as the
    same objects, so a transform costs only the paths it actually changes.
    Shared by parameter binding here and the rewriter's marker renumbering.
    """
    replaced = leaf(node)
    if replaced is not None:
        return replaced
    if _is_ast_node(node):
        changes = {}
        for field in dataclasses.fields(node):
            old = getattr(node, field.name)
            new = transform_nodes(old, leaf)
            if new is not old:
                changes[field.name] = new
        return dataclasses.replace(node, **changes) if changes else node
    if isinstance(node, tuple):
        items = [transform_nodes(item, leaf) for item in node]
        if all(new is old for new, old in zip(items, node)):
            return node
        return tuple(items)
    return node


def bind_parameters(statement, values):
    """Substitute every parameter marker with a literal from ``values``.

    ``values`` is a sequence indexed by marker position (marker ``?1`` reads
    ``values[0]``).  Raises :class:`BindError` when the count does not match
    or a value has no SQL literal representation.
    """
    expected = num_parameters(statement)
    values = tuple(values)
    if len(values) != expected:
        raise BindError(
            f"statement expects {expected} parameter(s), got {len(values)}"
        )
    for value in values:
        if value is not None and not isinstance(value, BINDABLE_TYPES):
            raise BindError(
                f"cannot bind {type(value).__name__} as a SQL parameter"
            )
    if not expected:
        return statement

    def leaf(node):
        if isinstance(node, ast.Placeholder):
            return ast.Literal(value=values[node.index])
        return None

    return transform_nodes(statement, leaf)
