"""Workload substrates: TPC-H (schema, data generator, all 22 queries) and
synthetic microbenchmark workloads."""
