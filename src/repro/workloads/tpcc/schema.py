"""TPC-C-style schema: 7 tables with logical column types.

A faithful-in-shape subset of the TPC-C schema, sized for the OLTP
transaction mix (:mod:`repro.workloads.tpcc.txns`) rather than the full
spec: the columns every NewOrder/Payment touches are present, spec
columns no transaction reads are dropped.  One deliberate deviation is
documented where it happens: there is no ``d_next_o_id`` counter --
order ids are assigned by the workload driver (explicit, per-district
disjoint ranges), which makes the transaction mix *order-independent*:
any interleaving of committed transactions reaches the same final
state, so concurrent runs can be pinned against a serial oracle.
"""

from __future__ import annotations

from repro.core.meta import ValueType

V = ValueType

#: table name -> [(column, ValueType), ...]
TABLES: dict = {
    "warehouse": [
        ("w_id", V.int_()),
        ("w_name", V.string(10)),
        ("w_ytd", V.decimal(2)),
    ],
    # no d_next_o_id: order ids come from the driver's disjoint ranges
    "district": [
        ("d_id", V.int_()),
        ("d_w_id", V.int_()),
        ("d_name", V.string(10)),
        ("d_ytd", V.decimal(2)),
    ],
    "customer": [
        ("c_id", V.int_()),
        ("c_d_id", V.int_()),
        ("c_w_id", V.int_()),
        ("c_name", V.string(16)),
        ("c_balance", V.decimal(2)),
        ("c_ytd_payment", V.decimal(2)),
        ("c_payment_cnt", V.int_()),
    ],
    "item": [
        ("i_id", V.int_()),
        ("i_name", V.string(24)),
        ("i_price", V.decimal(2)),
    ],
    "stock": [
        ("s_i_id", V.int_()),
        ("s_w_id", V.int_()),
        ("s_quantity", V.int_()),
        ("s_ytd", V.int_()),
        ("s_order_cnt", V.int_()),
    ],
    "orders": [
        ("o_id", V.int_()),
        ("o_d_id", V.int_()),
        ("o_w_id", V.int_()),
        ("o_c_id", V.int_()),
        ("o_ol_cnt", V.int_()),
        ("o_total", V.decimal(2)),
    ],
    "order_line": [
        ("ol_o_id", V.int_()),
        ("ol_d_id", V.int_()),
        ("ol_w_id", V.int_()),
        ("ol_number", V.int_()),
        ("ol_i_id", V.int_()),
        ("ol_quantity", V.int_()),
        ("ol_amount", V.decimal(2)),
    ],
}

#: the money/inventory columns the data owner protects (everything the
#: transaction mix actually computes on runs over shares)
SENSITIVE: dict = {
    "warehouse": ["w_ytd"],
    "district": ["d_ytd"],
    "customer": ["c_balance", "c_ytd_payment"],
    "item": ["i_price"],
    "stock": ["s_quantity", "s_ytd"],
    "orders": ["o_total"],
    "order_line": ["ol_amount"],
}
