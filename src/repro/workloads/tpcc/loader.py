"""Load generated TPC-C data into an SDB deployment and/or a plain engine."""

from __future__ import annotations

from typing import Optional

from repro.engine import Catalog, Engine, Table
from repro.engine.schema import ColumnSpec, DataType, Schema
from repro.workloads.tpcc.schema import SENSITIVE, TABLES

_DTYPE = {
    "int": DataType.INT,
    "decimal": DataType.DECIMAL,
    "date": DataType.DATE,
    "string": DataType.STRING,
    "bool": DataType.BOOL,
}

#: Everything shards by warehouse: each transaction touches exactly the
#: tables of one warehouse, so with colocation the whole write set of a
#: single-warehouse transaction lands on one shard (cross-warehouse
#: schedules still exercise the 2PC path).  ``item`` is a read-only
#: dimension and stays primary-resident.
SHARD_COLUMNS = {
    "warehouse": "w_id",
    "district": "d_w_id",
    "customer": "c_w_id",
    "stock": "s_w_id",
    "orders": "o_w_id",
    "order_line": "ol_w_id",
}

#: one colocation group: equal warehouse ids co-reside across tables
COLOCATION = {table: "wh" for table in SHARD_COLUMNS}


def plain_schema(table: str) -> Schema:
    specs = []
    for name, vtype in TABLES[table]:
        dtype = _DTYPE[vtype.kind]
        scale = vtype.scale if dtype is DataType.DECIMAL else 0
        specs.append(ColumnSpec(name, dtype, scale=scale))
    return Schema(tuple(specs))


def load_plain(data: dict) -> Engine:
    """A plaintext engine over generated TPC-C data (the serial oracle)."""
    catalog = Catalog()
    for table, rows in data.items():
        catalog.create(table, Table.from_rows(plain_schema(table), rows))
    return Engine(catalog)


def load_encrypted(
    proxy,
    data: dict,
    rng=None,
    shard: bool = False,
    shard_by: Optional[dict] = None,
    replace: bool = False,
) -> None:
    """Encrypt and upload generated TPC-C data through the proxy.

    ``shard=True`` applies :data:`SHARD_COLUMNS`/:data:`COLOCATION` for
    cluster deployments; ``shard_by`` overrides the map per table.
    """
    columns = SHARD_COLUMNS if shard else {}
    if shard_by is not None:
        columns = shard_by
    for table, rows in data.items():
        sharded_column = columns.get(table)
        proxy.create_table(
            table,
            TABLES[table],
            rows,
            sensitive=SENSITIVE.get(table, ()),
            rng=rng,
            shard_by=sharded_column,
            colocate=COLOCATION.get(table) if sharded_column else None,
            replace=replace,
        )
