"""The TPC-C-style transaction mix: NewOrder + Payment over encrypted rows.

Every transaction is a multi-statement unit run under BEGIN/COMMIT with
retry-from-BEGIN on :class:`~repro.api.exceptions.TransactionConflict`
(first-updater-wins: the server already rolled the loser back).

The mix is deliberately **order-independent** so concurrency is testable:

* order ids are explicit and drawn from per-district disjoint ranges
  assigned at schedule-build time -- no read-modify-write on a shared
  counter, and no two sessions ever insert the same key;
* every UPDATE is a commutative additive delta (``x = x + ?``), so any
  interleaving of the same committed transaction set reaches the same
  final state;
* each session owns a disjoint partition of the database -- by
  ``warehouse`` (sessions never contend; the scaling configuration) or
  by ``district`` (sessions share warehouse/stock rows, forcing genuine
  first-updater-wins conflicts and exercising the retry path).

Together these make the *final checksum* a function of the transaction
set alone, so a concurrent run pins byte-for-byte against a serial
oracle and against :func:`expected_delta` (the plain-Python effect of
the schedule).
"""

from __future__ import annotations

from repro.api import exceptions as exc
from repro.crypto.prf import seeded_rng

#: NewOrder orders between 1 and this many distinct items
MAX_ORDER_LINES = 3


# -- schedule construction ----------------------------------------------------

def build_schedule(
    data: dict,
    sessions: int,
    transactions: int,
    seed: int = 4242,
    payment_fraction: float = 0.5,
    partition: str = "warehouse",
    o_id_base: int = 0,
) -> list:
    """``sessions`` lists of ``transactions`` txn descriptors each.

    ``partition`` is the contention model (see the module docstring);
    ``o_id_base`` offsets every assigned order id, so two schedules over
    the same database (e.g. a serialized phase then a concurrent phase)
    insert disjoint order keys.
    """
    if partition not in ("warehouse", "district"):
        raise ValueError(f"unknown partition scheme {partition!r}")
    districts = [(w, d) for (d, w, _name, _ytd) in data["district"]]
    customers: dict = {}
    for (c, d, w, _n, _b, _y, _p) in data["customer"]:
        customers.setdefault((w, d), []).append(c)
    items = [i for (i, _name, _price) in data["item"]]

    if partition == "warehouse":
        warehouses = sorted({w for (w, _d) in districts})
        if len(warehouses) < sessions:
            raise ValueError(
                f"{sessions} sessions need >= {sessions} warehouses "
                f"to partition by warehouse (have {len(warehouses)})"
            )
        owned = [
            [wd for wd in districts if (wd[0] - 1) % sessions == s]
            for s in range(sessions)
        ]
    else:
        owned = [
            [wd for i, wd in enumerate(districts) if i % sessions == s]
            for s in range(sessions)
        ]

    next_o_id = {wd: o_id_base + 1 for wd in districts}
    schedule = []
    for s in range(sessions):
        rng = seeded_rng(seed * 1000 + s)
        txns = []
        for _ in range(transactions):
            w, d = rng.choice(owned[s])
            c = rng.choice(customers[(w, d)])
            if rng.random() < payment_fraction:
                txns.append({
                    "kind": "payment", "w": w, "d": d, "c": c,
                    "amount": rng.randint(100, 50_000) / 100.0,
                })
            else:
                count = rng.randint(1, min(MAX_ORDER_LINES, len(items)))
                txns.append({
                    "kind": "new_order", "w": w, "d": d, "c": c,
                    "o_id": next_o_id[(w, d)],
                    "items": [
                        (i, rng.randint(1, 5)) for i in rng.sample(items, count)
                    ],
                })
                next_o_id[(w, d)] += 1
        schedule.append(txns)
    return schedule


# -- execution ----------------------------------------------------------------

def _apply(cursor, txn) -> None:
    """One attempt at a transaction's statements (inside an open BEGIN)."""
    w, d, c = txn["w"], txn["d"], txn["c"]
    if txn["kind"] == "payment":
        amount = txn["amount"]
        cursor.execute(
            "UPDATE warehouse SET w_ytd = w_ytd + ? WHERE w_id = ?",
            [amount, w],
        )
        cursor.execute(
            "UPDATE district SET d_ytd = d_ytd + ? "
            "WHERE d_id = ? AND d_w_id = ?",
            [amount, d, w],
        )
        cursor.execute(
            "UPDATE customer SET c_balance = c_balance - ?, "
            "c_ytd_payment = c_ytd_payment + ?, "
            "c_payment_cnt = c_payment_cnt + 1 "
            "WHERE c_id = ? AND c_d_id = ? AND c_w_id = ?",
            [amount, amount, c, d, w],
        )
        return
    total = 0.0
    for number, (i_id, quantity) in enumerate(txn["items"], start=1):
        cursor.execute("SELECT i_price FROM item WHERE i_id = ?", [i_id])
        price = cursor.fetchone()[0]
        amount = round(price * quantity, 2)
        total = round(total + amount, 2)
        cursor.execute(
            "INSERT INTO order_line (ol_o_id, ol_d_id, ol_w_id, ol_number, "
            "ol_i_id, ol_quantity, ol_amount) VALUES (?, ?, ?, ?, ?, ?, ?)",
            [txn["o_id"], d, w, number, i_id, quantity, amount],
        )
        cursor.execute(
            "UPDATE stock SET s_quantity = s_quantity - ?, "
            "s_ytd = s_ytd + ?, s_order_cnt = s_order_cnt + 1 "
            "WHERE s_i_id = ? AND s_w_id = ?",
            [quantity, quantity, i_id, w],
        )
    cursor.execute(
        "INSERT INTO orders (o_id, o_d_id, o_w_id, o_c_id, o_ol_cnt, o_total) "
        "VALUES (?, ?, ?, ?, ?, ?)",
        [txn["o_id"], d, w, c, len(txn["items"]), total],
    )


def run_txn(conn, txn, max_attempts: int = 25) -> int:
    """Run one transaction to COMMIT; returns the number of conflict
    retries it took.  Any non-conflict error rolls back and re-raises."""
    for attempt in range(max_attempts):
        conn.begin()
        try:
            _apply(conn.cursor(), txn)
            conn.commit()
            return attempt
        except exc.TransactionConflict:
            continue  # server already rolled this session back
        except Exception:
            conn.rollback()
            raise
    raise exc.OperationalError(
        f"transaction gave up after {max_attempts} conflict retries: {txn}"
    )


def run_session(conn, txns, max_attempts: int = 25) -> dict:
    """Run one session's schedule; returns commit/conflict counters."""
    conflicts = 0
    for txn in txns:
        conflicts += run_txn(conn, txn, max_attempts=max_attempts)
    return {"committed": len(txns), "conflicts": conflicts}


def run_serial(conn, schedule, max_attempts: int = 25) -> dict:
    """The serial oracle: every session's schedule through one
    connection, round-robin (any order reaches the same state)."""
    queues = [list(txns) for txns in schedule]
    committed = conflicts = 0
    while any(queues):
        for queue in queues:
            if queue:
                conflicts += run_txn(conn, queue.pop(0), max_attempts)
                committed += 1
    return {"committed": committed, "conflicts": conflicts}


# -- pinning ------------------------------------------------------------------

_SUMS = {
    "w_ytd": "SELECT SUM(w_ytd) AS v FROM warehouse",
    "d_ytd": "SELECT SUM(d_ytd) AS v FROM district",
    "c_balance": "SELECT SUM(c_balance) AS v FROM customer",
    "c_ytd_payment": "SELECT SUM(c_ytd_payment) AS v FROM customer",
    "c_payment_cnt": "SELECT SUM(c_payment_cnt) AS v FROM customer",
    "s_quantity": "SELECT SUM(s_quantity) AS v FROM stock",
    "s_ytd": "SELECT SUM(s_ytd) AS v FROM stock",
    "s_order_cnt": "SELECT SUM(s_order_cnt) AS v FROM stock",
    "orders": "SELECT COUNT(*) AS v FROM orders",
    "o_total": "SELECT SUM(o_total) AS v FROM orders",
    "order_lines": "SELECT COUNT(*) AS v FROM order_line",
    "ol_amount": "SELECT SUM(ol_amount) AS v FROM order_line",
}


def checksum(conn) -> dict:
    """Aggregate state fingerprint: equal checksums <=> equal final
    state for this workload (all mutations are sums and inserts)."""
    cursor = conn.cursor()
    out = {}
    for key, sql in _SUMS.items():
        cursor.execute(sql)
        value = cursor.fetchone()[0]
        out[key] = round(value or 0, 2)
    return out


def delta(after: dict, before: dict) -> dict:
    return {key: round(after[key] - before[key], 2) for key in after}


def expected_delta(data: dict, schedule) -> dict:
    """The plain-Python effect of committing every transaction in the
    schedule exactly once -- the independent oracle for any run."""
    prices = {i: price for (i, _name, price) in data["item"]}
    out = {key: 0 for key in _SUMS}
    for txns in schedule:
        for txn in txns:
            if txn["kind"] == "payment":
                amount = txn["amount"]
                out["w_ytd"] += amount
                out["d_ytd"] += amount
                out["c_balance"] -= amount
                out["c_ytd_payment"] += amount
                out["c_payment_cnt"] += 1
                continue
            total = 0.0
            for i_id, quantity in txn["items"]:
                amount = round(prices[i_id] * quantity, 2)
                total = round(total + amount, 2)
                out["s_quantity"] -= quantity
                out["s_ytd"] += quantity
                out["s_order_cnt"] += 1
                out["order_lines"] += 1
                out["ol_amount"] += amount
            out["orders"] += 1
            out["o_total"] += total
    return {key: round(value, 2) for key, value in out.items()}
