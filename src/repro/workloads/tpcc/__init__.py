"""TPC-C-style OLTP substrate.

Where :mod:`repro.workloads.tpch` checks the paper's *analytics* claim
(all 22 read queries), this package drives the transaction tier: a
NewOrder/Payment mix over encrypted rows, run under per-session MVCC
transactions with retry-from-BEGIN on first-updater-wins conflicts.

* :mod:`repro.workloads.tpcc.schema` -- the 7 tables with logical types
  (and the order-independence deviation, documented there);
* :mod:`repro.workloads.tpcc.dbgen` -- a deterministic, parameterized
  data generator (accumulators start at zero);
* :mod:`repro.workloads.tpcc.loader` -- encrypted upload (warehouse
  sharding + colocation) and the plaintext oracle engine;
* :mod:`repro.workloads.tpcc.txns` -- schedule builder, transaction
  runner, and the checksum/expected-delta pinning helpers.
"""

from repro.workloads.tpcc.dbgen import generate
from repro.workloads.tpcc.loader import load_encrypted, load_plain
from repro.workloads.tpcc.schema import SENSITIVE, TABLES
from repro.workloads.tpcc.txns import (
    build_schedule,
    checksum,
    delta,
    expected_delta,
    run_serial,
    run_session,
    run_txn,
)

__all__ = [
    "TABLES",
    "SENSITIVE",
    "generate",
    "load_encrypted",
    "load_plain",
    "build_schedule",
    "run_txn",
    "run_session",
    "run_serial",
    "checksum",
    "delta",
    "expected_delta",
]
