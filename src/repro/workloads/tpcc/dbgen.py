"""Deterministic TPC-C-style data generator.

Sized by (warehouses, districts per warehouse, customers per district,
items) rather than the spec's fixed cardinalities so tests and benches
can scale the working set independently of the transaction count.  All
accumulator columns (``*_ytd``, ``c_balance``, counts) start at zero:
the workload's final state is then exactly the sum of its committed
transactions' effects, which is what the serial-oracle pinning checks.
"""

from __future__ import annotations

from repro.crypto.prf import seeded_rng

NAMES = [
    "alder", "birch", "cedar", "doum", "elm", "ficus", "ginkgo", "hazel",
    "iroko", "juniper", "kapok", "larch", "maple", "nutmeg", "oak", "pine",
]


def generate(
    warehouses: int = 2,
    districts: int = 2,
    customers: int = 8,
    items: int = 16,
    seed: int = 19900604,
) -> dict:
    """table name -> rows, in :data:`~repro.workloads.tpcc.schema.TABLES`
    column order.  ``orders`` and ``order_line`` start empty: the
    transaction mix populates them."""
    rng = seeded_rng(seed)
    data: dict = {table: [] for table in (
        "warehouse", "district", "customer", "item", "stock",
        "orders", "order_line",
    )}
    for w in range(1, warehouses + 1):
        data["warehouse"].append((w, f"wh-{NAMES[(w - 1) % len(NAMES)]}", 0.00))
        for d in range(1, districts + 1):
            data["district"].append((d, w, f"d-{w}-{d}", 0.00))
            for c in range(1, customers + 1):
                name = f"{rng.choice(NAMES)}-{w}{d}{c}"
                data["customer"].append((c, d, w, name, 0.00, 0.00, 0))
    for i in range(1, items + 1):
        price = rng.randint(100, 9999) / 100.0
        data["item"].append((i, f"item-{NAMES[(i - 1) % len(NAMES)]}-{i}", price))
        for w in range(1, warehouses + 1):
            data["stock"].append((i, w, 100, 0, 0))
    return data
