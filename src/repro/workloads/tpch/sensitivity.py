"""Sensitivity profiles for TPC-H (demo step 1: "choose the attributes").

``FINANCIAL_PROFILE`` protects every money/quantity measure -- the columns
a data owner outsourcing a sales database plausibly considers sensitive --
while keys, flags, dates and text stay plain.  Under this profile **all 22
queries run natively** through SDB's operator suite (experiment E2).

``STRICT_PROFILE`` additionally protects dates and some categorical
strings.  It demonstrates the suite's boundaries: queries that EXTRACT
from or pattern-match protected columns are rejected with a clear error
instead of silently shipping data back, and the coverage bench reports
which queries survive.
"""

from __future__ import annotations

from repro.core.meta import SensitivityProfile

FINANCIAL_PROFILE = SensitivityProfile.of(
    "financial",
    [
        "lineitem.l_quantity",
        "lineitem.l_extendedprice",
        "lineitem.l_discount",
        "lineitem.l_tax",
        "orders.o_totalprice",
        "customer.c_acctbal",
        "supplier.s_acctbal",
        "partsupp.ps_supplycost",
        "partsupp.ps_availqty",
        "part.p_retailprice",
    ],
)

STRICT_PROFILE = SensitivityProfile.of(
    "strict",
    list(FINANCIAL_PROFILE.sensitive)
    + [
        "lineitem.l_shipdate",
        "lineitem.l_commitdate",
        "lineitem.l_receiptdate",
        "orders.o_orderdate",
        "customer.c_phone",
        "supplier.s_phone",
    ],
)

PROFILES = {p.name: p for p in (FINANCIAL_PROFILE, STRICT_PROFILE)}


def sensitive_columns(profile: SensitivityProfile, table: str, columns) -> list[str]:
    """The subset of ``columns`` the profile protects for ``table``."""
    return [c for c, _ in columns if profile.is_sensitive(table, c)]
