"""Load generated TPC-H data into an SDB deployment and/or a plain engine."""

from __future__ import annotations

from typing import Optional

from repro.core.meta import SensitivityProfile, ValueType
from repro.core.proxy import SDBProxy
from repro.engine import Catalog, Engine, Table
from repro.engine.schema import ColumnSpec, DataType, Schema
from repro.workloads.tpch.dbgen import generate
from repro.workloads.tpch.schema import TABLES
from repro.workloads.tpch.sensitivity import FINANCIAL_PROFILE, sensitive_columns

_DTYPE = {
    "int": DataType.INT,
    "decimal": DataType.DECIMAL,
    "date": DataType.DATE,
    "string": DataType.STRING,
    "bool": DataType.BOOL,
}


def plain_schema(table: str) -> Schema:
    specs = []
    for name, vtype in TABLES[table]:
        dtype = _DTYPE[vtype.kind]
        scale = vtype.scale if dtype is DataType.DECIMAL else 0
        specs.append(ColumnSpec(name, dtype, scale=scale))
    return Schema(tuple(specs))


def load_plain(data: dict) -> Engine:
    """A plaintext engine over generated TPC-H data (the ground truth)."""
    catalog = Catalog()
    for table, rows in data.items():
        catalog.create(table, Table.from_rows(plain_schema(table), rows))
    return Engine(catalog)


#: Natural shard keys for a clustered TPC-H load: the two big fact tables
#: partition by their join keys; dimension tables stay primary-resident.
DEFAULT_SHARD_COLUMNS = {
    "lineitem": "l_orderkey",
    "orders": "o_orderkey",
}

#: Default colocation groups: orders and lineitem shard by the same join
#: key, so routing them through one group subkey co-locates each order
#: with its line items -- the layout co-sharded joins run shard-local on.
DEFAULT_COLOCATION = {
    "lineitem": "orderkey",
    "orders": "orderkey",
}


def load_encrypted(
    proxy: SDBProxy,
    data: dict,
    profile: SensitivityProfile = FINANCIAL_PROFILE,
    rng=None,
    shard_by: Optional[dict] = None,
    colocate: Optional[dict] = None,
) -> None:
    """Encrypt and upload generated TPC-H data through the proxy.

    ``shard_by`` maps table name -> shard-key column for cluster
    deployments (tables not in the map stay on the primary shard);
    pass :data:`DEFAULT_SHARD_COLUMNS` for a sensible split.
    ``colocate`` maps table name -> colocation group (defaults to
    :data:`DEFAULT_COLOCATION`, restricted to the tables actually
    sharded); pass ``{}`` to shard without colocation.
    """
    shard_by = shard_by or {}
    if colocate is None:
        colocate = DEFAULT_COLOCATION
    for table, rows in data.items():
        sharded_column = shard_by.get(table)
        proxy.create_table(
            table,
            TABLES[table],
            rows,
            sensitive=sensitive_columns(profile, table, TABLES[table]),
            rng=rng,
            shard_by=sharded_column,
            colocate=(
                colocate.get(table) if sharded_column is not None else None
            ),
        )


def tpch_deployment(
    scale_factor: float = 0.002,
    seed: int = 19920101,
    profile: SensitivityProfile = FINANCIAL_PROFILE,
    proxy_rng=None,
    modulus_bits: int = 256,
    instrument: bool = False,
):
    """Convenience: (proxy, plain_engine, data) over the same TPC-H data."""
    from repro.core.server import SDBServer

    data = generate(scale_factor=scale_factor, seed=seed)
    server = SDBServer(instrument=instrument)
    proxy = SDBProxy(server, modulus_bits=modulus_bits, value_bits=64, rng=proxy_rng)
    load_encrypted(proxy, data, profile=profile, rng=proxy_rng)
    plain = load_plain(data)
    return proxy, plain, data
