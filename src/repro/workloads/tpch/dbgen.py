"""Deterministic TPC-H data generator.

A faithful-in-shape substitute for the official ``dbgen``: it preserves the
schema, the key relationships (every foreign key resolves), the value
domains and the distributions that the 22 queries' predicates select on --
brands, types, containers, segments, priorities, ship modes, date windows,
phone country codes, the customers-without-orders population, and the
returnflag/linestatus logic.  Absolute byte-for-byte fidelity with dbgen is
not needed for the paper's claims (coverage and relative cost), and the
generator is seedable so every experiment is reproducible.
"""

from __future__ import annotations

import datetime
from typing import Iterable

from repro.crypto.prf import seeded_rng
from repro.workloads.tpch.schema import row_count

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIP_INSTRUCTS = [
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN",
]
CONTAINERS_1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
CONTAINERS_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]
TYPES_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPES_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPES_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
COLORS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cream", "cyan", "dark",
    "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest", "frosted",
    "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew", "hot",
    "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon", "light",
    "lime", "linen", "magenta", "maroon", "medium", "metallic", "midnight",
    "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange", "orchid",
    "pale", "papaya", "peach", "peru", "pink", "plum", "powder", "puff",
    "purple", "red", "rose", "rosy", "royal", "saddle", "salmon", "sandy",
    "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring", "steel",
    "tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white",
    "yellow",
]
COMMENT_WORDS = [
    "carefully", "quickly", "furiously", "slowly", "blithely", "deposits",
    "requests", "accounts", "packages", "instructions", "foxes", "ideas",
    "theodolites", "pinto", "beans", "warhorses", "asymptotes", "dependencies",
    "excuses", "platelets", "sleep", "wake", "nag", "haggle", "bold",
    "regular", "express", "special", "pending", "final", "ironic", "even",
    "silent", "unusual", "customer", "complaints",
]

DATE_LO = datetime.date(1992, 1, 1)
DATE_HI = datetime.date(1998, 8, 2)


def _comment(rng, max_words: int = 6) -> str:
    return " ".join(
        rng.choice(COMMENT_WORDS) for _ in range(rng.randint(3, max_words))
    )


def _phone(rng, nationkey: int) -> str:
    country = nationkey + 10
    return (
        f"{country:02d}-{rng.randint(100, 999)}-{rng.randint(100, 999)}-"
        f"{rng.randint(1000, 9999)}"
    )


def _random_date(rng, lo=DATE_LO, hi=DATE_HI) -> datetime.date:
    return lo + datetime.timedelta(days=rng.randint(0, (hi - lo).days))


def generate(scale_factor: float = 0.01, seed: int = 19920101) -> dict:
    """Generate the 8 TPC-H tables at a scale factor.

    Returns ``{table_name: list[tuple]}`` with rows in schema column order.
    Deterministic in ``(scale_factor, seed)``.
    """
    rng = seeded_rng(f"tpch-{seed}-{scale_factor}")
    tables: dict = {}

    tables["region"] = [
        (i, name, _comment(rng)) for i, name in enumerate(REGIONS)
    ]
    tables["nation"] = [
        (i, name, regionkey, _comment(rng))
        for i, (name, regionkey) in enumerate(NATIONS)
    ]

    n_supplier = row_count("supplier", scale_factor)
    suppliers = []
    for key in range(1, n_supplier + 1):
        nationkey = rng.randrange(25)
        # TPC-H plants "Customer Complaints" into ~0.05% of supplier
        # comments; Q16 filters them out, so a couple must exist
        comment = _comment(rng)
        if key % 7 == 3:
            comment = "blithely Customer Complaints sleep"
        suppliers.append(
            (
                key,
                f"Supplier#{key:09d}",
                _comment(rng, 3),
                nationkey,
                _phone(rng, nationkey),
                round(rng.uniform(-999.99, 9999.99), 2),
                comment,
            )
        )
    tables["supplier"] = suppliers

    n_part = row_count("part", scale_factor)
    parts = []
    for key in range(1, n_part + 1):
        name = " ".join(rng.sample(COLORS, 2))
        mfgr = f"Manufacturer#{rng.randint(1, 5)}"
        brand = f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}"
        ptype = (
            f"{rng.choice(TYPES_1)} {rng.choice(TYPES_2)} {rng.choice(TYPES_3)}"
        )
        container = f"{rng.choice(CONTAINERS_1)} {rng.choice(CONTAINERS_2)}"
        retail = round(
            (90000 + (key % 200001) / 10 + 100 * (key % 1000)) / 100, 2
        )
        parts.append(
            (
                key, name, mfgr, brand, ptype, rng.randint(1, 50),
                container, retail, _comment(rng, 3),
            )
        )
    tables["part"] = parts

    partsupp = []
    for partkey in range(1, n_part + 1):
        chosen = set()
        for j in range(4):
            suppkey = (partkey + j * (n_supplier // 4 + 1)) % n_supplier + 1
            while suppkey in chosen:
                suppkey = suppkey % n_supplier + 1
            chosen.add(suppkey)
            partsupp.append(
                (
                    partkey,
                    suppkey,
                    rng.randint(1, 9999),
                    round(rng.uniform(1.00, 1000.00), 2),
                    _comment(rng),
                )
            )
    tables["partsupp"] = partsupp

    n_customer = row_count("customer", scale_factor)
    customers = []
    for key in range(1, n_customer + 1):
        nationkey = rng.randrange(25)
        customers.append(
            (
                key,
                f"Customer#{key:09d}",
                _comment(rng, 3),
                nationkey,
                _phone(rng, nationkey),
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(SEGMENTS),
                _comment(rng),
            )
        )
    tables["customer"] = customers

    # only two thirds of customers place orders (spec; Q22 relies on it)
    ordering_customers = [k for k in range(1, n_customer + 1) if k % 3 != 0]
    n_orders = row_count("orders", scale_factor)
    orders = []
    lineitems = []
    current_date = datetime.date(1995, 6, 17)  # dbgen's CURRENTDATE
    for orderkey in range(1, n_orders + 1):
        custkey = rng.choice(ordering_customers)
        orderdate = _random_date(
            rng, DATE_LO, DATE_HI - datetime.timedelta(days=151)
        )
        total = 0.0
        n_lines = rng.randint(1, 7)
        statuses = []
        for linenumber in range(1, n_lines + 1):
            partkey = rng.randint(1, n_part)
            # one of the four suppliers of that part
            j = rng.randrange(4)
            suppkey = (partkey + j * (n_supplier // 4 + 1)) % n_supplier + 1
            quantity = rng.randint(1, 50)
            retail = parts[partkey - 1][7]
            extended = round(quantity * retail, 2)
            discount = round(rng.randint(0, 10) / 100, 2)
            tax = round(rng.randint(0, 8) / 100, 2)
            shipdate = orderdate + datetime.timedelta(days=rng.randint(1, 121))
            commitdate = orderdate + datetime.timedelta(days=rng.randint(30, 90))
            receiptdate = shipdate + datetime.timedelta(days=rng.randint(1, 30))
            if receiptdate <= current_date:
                returnflag = rng.choice(["R", "A"])
            else:
                returnflag = "N"
            linestatus = "F" if shipdate <= current_date else "O"
            statuses.append(linestatus)
            total += extended * (1 + tax) * (1 - discount)
            lineitems.append(
                (
                    orderkey, partkey, suppkey, linenumber,
                    float(quantity), extended, discount, tax,
                    returnflag, linestatus,
                    shipdate, commitdate, receiptdate,
                    rng.choice(SHIP_INSTRUCTS), rng.choice(SHIP_MODES),
                    _comment(rng, 4),
                )
            )
        if all(s == "F" for s in statuses):
            status = "F"
        elif all(s == "O" for s in statuses):
            status = "O"
        else:
            status = "P"
        orders.append(
            (
                orderkey, custkey, status, round(total, 2), orderdate,
                rng.choice(PRIORITIES), f"Clerk#{rng.randint(1, 1000):09d}",
                0, _comment(rng),
            )
        )
    tables["orders"] = orders
    tables["lineitem"] = lineitems
    return tables
