"""TPC-H schema: the 8 tables with logical column types.

Column order and names follow the TPC-H specification; types use the
logical :class:`repro.core.meta.ValueType` vocabulary so the same schema
drives both the plain engine tables and the encrypted upload.
"""

from __future__ import annotations

from repro.core.meta import ValueType

V = ValueType

#: table name -> [(column, ValueType), ...]
TABLES: dict = {
    "region": [
        ("r_regionkey", V.int_()),
        ("r_name", V.string(12)),
        ("r_comment", V.string(64)),
    ],
    "nation": [
        ("n_nationkey", V.int_()),
        ("n_name", V.string(16)),
        ("n_regionkey", V.int_()),
        ("n_comment", V.string(64)),
    ],
    "supplier": [
        ("s_suppkey", V.int_()),
        ("s_name", V.string(18)),
        ("s_address", V.string(24)),
        ("s_nationkey", V.int_()),
        ("s_phone", V.string(15)),
        ("s_acctbal", V.decimal(2)),
        ("s_comment", V.string(64)),
    ],
    "part": [
        ("p_partkey", V.int_()),
        ("p_name", V.string(36)),
        ("p_mfgr", V.string(14)),
        ("p_brand", V.string(10)),
        ("p_type", V.string(25)),
        ("p_size", V.int_()),
        ("p_container", V.string(10)),
        ("p_retailprice", V.decimal(2)),
        ("p_comment", V.string(23)),
    ],
    "partsupp": [
        ("ps_partkey", V.int_()),
        ("ps_suppkey", V.int_()),
        ("ps_availqty", V.int_()),
        ("ps_supplycost", V.decimal(2)),
        ("ps_comment", V.string(64)),
    ],
    "customer": [
        ("c_custkey", V.int_()),
        ("c_name", V.string(18)),
        ("c_address", V.string(24)),
        ("c_nationkey", V.int_()),
        ("c_phone", V.string(15)),
        ("c_acctbal", V.decimal(2)),
        ("c_mktsegment", V.string(10)),
        ("c_comment", V.string(64)),
    ],
    "orders": [
        ("o_orderkey", V.int_()),
        ("o_custkey", V.int_()),
        ("o_orderstatus", V.string(1)),
        ("o_totalprice", V.decimal(2)),
        ("o_orderdate", V.date()),
        ("o_orderpriority", V.string(15)),
        ("o_clerk", V.string(15)),
        ("o_shippriority", V.int_()),
        ("o_comment", V.string(64)),
    ],
    "lineitem": [
        ("l_orderkey", V.int_()),
        ("l_partkey", V.int_()),
        ("l_suppkey", V.int_()),
        ("l_linenumber", V.int_()),
        ("l_quantity", V.decimal(2)),
        ("l_extendedprice", V.decimal(2)),
        ("l_discount", V.decimal(2)),
        ("l_tax", V.decimal(2)),
        ("l_returnflag", V.string(1)),
        ("l_linestatus", V.string(1)),
        ("l_shipdate", V.date()),
        ("l_commitdate", V.date()),
        ("l_receiptdate", V.date()),
        ("l_shipinstruct", V.string(25)),
        ("l_shipmode", V.string(10)),
        ("l_comment", V.string(44)),
    ],
}

#: base cardinalities at scale factor 1.0 (the spec's numbers)
BASE_ROWS = {
    "supplier": 10_000,
    "part": 200_000,
    "customer": 150_000,
    "orders": 1_500_000,
}


def row_count(table: str, scale_factor: float) -> int:
    """Target cardinality at a scale factor (fixed tables unaffected)."""
    if table == "region":
        return 5
    if table == "nation":
        return 25
    if table == "partsupp":
        return 4 * row_count("part", scale_factor)
    base = BASE_ROWS[table]
    return max(int(base * scale_factor), _MINIMUM[table])


_MINIMUM = {"supplier": 10, "part": 40, "customer": 30, "orders": 150}
