"""TPC-H substrate.

The paper's headline claim is that SDB natively supports *all 22* TPC-H
queries (Section 1).  This package provides everything needed to check
that claim end to end:

* :mod:`repro.workloads.tpch.schema` -- the 8 tables with logical types;
* :mod:`repro.workloads.tpch.dbgen` -- a deterministic, scale-factor data
  generator preserving the schema's key relationships and value domains;
* :mod:`repro.workloads.tpch.queries` -- all 22 queries in the SQL dialect,
  with the standard validation parameters;
* :mod:`repro.workloads.tpch.sensitivity` -- sensitivity profiles (which
  columns the data owner protects).
"""

from repro.workloads.tpch.dbgen import generate
from repro.workloads.tpch.queries import QUERIES, query
from repro.workloads.tpch.schema import TABLES
from repro.workloads.tpch.sensitivity import FINANCIAL_PROFILE, STRICT_PROFILE

__all__ = [
    "TABLES",
    "generate",
    "QUERIES",
    "query",
    "FINANCIAL_PROFILE",
    "STRICT_PROFILE",
]
