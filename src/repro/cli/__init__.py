"""Command-line tools.

* ``sdb-shell`` (:mod:`repro.cli.shell`) -- the interactive data-owner
  console: run SQL, see the rewritten query, the cost breakdown and the
  key store, mirroring the demo UI of paper Figure 3;
* ``sdb-server`` (:mod:`repro.cli.server`) -- the service-provider daemon
  (machine MSP), optionally durable;
* ``sdb-dbgen`` (:mod:`repro.cli.dbgen`) -- the TPC-H-style data
  generator, writing CSV.
"""
