"""``sdb-server``: run the service provider as a standalone daemon.

This is machine MSP of the demo: an unmodified engine plus the SDB UDFs,
listening for proxies.  ``--durable DIR`` adds disk persistence with
write-ahead logging, so the daemon recovers its (encrypted) state after a
restart.
"""

from __future__ import annotations

import argparse
from typing import Optional


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sdb-server", description="SDB service-provider daemon"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9753)
    parser.add_argument("--durable", metavar="DIR",
                        help="persist tables and WAL under DIR")
    parser.add_argument("--parallel", type=int, default=0, metavar="N",
                        help="partition-parallel execution over N partitions")
    parser.add_argument("--shard-id", type=int, default=None, metavar="I",
                        help="identity within a sharded cluster (see repro.cluster)")
    parser.add_argument("--max-session-queue", type=int, default=64, metavar="N",
                        help="admission control: max in-flight requests per "
                             "session before replying 'server busy' (0: off)")
    parser.add_argument("--slow-query-ms", type=float, default=None,
                        metavar="MS",
                        help="log wire operations slower than MS milliseconds "
                             "to the daemon slow-query log (off by default)")
    parser.add_argument("--metrics", action="store_true",
                        help="print a Prometheus-text metrics snapshot on "
                             "SIGINT shutdown")
    args = parser.parse_args(argv)

    if args.durable:
        from repro.storage import DurableServer

        sdb_server = DurableServer(args.durable)
        if sdb_server.recovered_statements:
            print(f"recovered {sdb_server.recovered_statements} WAL statements")
        if args.shard_id is not None:  # else keep any recovered identity
            sdb_server.shard_id = args.shard_id
    else:
        from repro.core.server import SDBServer

        sdb_server = SDBServer(
            parallel_partitions=args.parallel, shard_id=args.shard_id
        )

    from repro.net.server import SDBNetServer

    slow_query_s = (
        args.slow_query_ms / 1000.0 if args.slow_query_ms is not None else None
    )
    server = SDBNetServer(
        (args.host, args.port), sdb_server=sdb_server,
        max_session_queue=args.max_session_queue,
        slow_query_s=slow_query_s,
    )
    shard = "" if args.shard_id is None else f" (shard {args.shard_id})"
    print(f"sdb-server listening on {args.host}:{server.port}{shard}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        if args.metrics:
            from repro.obs.metrics import global_metrics, render_prometheus

            print(render_prometheus(global_metrics().snapshot()), flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
