"""``sdb-dbgen``: write TPC-H-style tables as CSV.

The in-library generator (:mod:`repro.workloads.tpch.dbgen`) feeds the
tests and benches directly; this tool exports the same deterministic data
for use outside the library.
"""

from __future__ import annotations

import argparse
import csv
from pathlib import Path
from typing import Optional

from repro.workloads.tpch.dbgen import generate
from repro.workloads.tpch.schema import TABLES


def write_csv(data: dict, directory) -> dict:
    """Write one ``<table>.csv`` per relation; returns row counts."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    counts = {}
    for table, rows in data.items():
        path = directory / f"{table}.csv"
        with open(path, "w", newline="", encoding="utf-8") as f:
            writer = csv.writer(f)
            writer.writerow([name for name, _ in TABLES[table]])
            writer.writerows(rows)
        counts[table] = len(rows)
    return counts


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sdb-dbgen", description="TPC-H-style CSV generator"
    )
    parser.add_argument("--scale-factor", "-s", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=19920101)
    parser.add_argument("--output", "-o", default="tpch-data")
    args = parser.parse_args(argv)

    data = generate(scale_factor=args.scale_factor, seed=args.seed)
    counts = write_csv(data, args.output)
    total = sum(counts.values())
    for table in sorted(counts):
        print(f"{table}: {counts[table]} rows")
    print(f"wrote {total} rows to {args.output}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
