"""``sdb-shell``: the data owner's interactive console.

A text stand-in for the demo UI of paper Figure 3: type SQL, get the
decrypted result plus the rewritten query the SP actually ran and the
client/server cost split.  Backslash commands inspect the deployment:

    \\help               this text
    \\tables             uploaded tables and their sensitive columns
    \\keystore           key store size and contents summary (demo step 1)
    \\explain <sql>      plan tree + rewrite without executing
                        (``EXPLAIN <sql>`` as a statement shows the same tree)
    \\upload <csv> <table> [col,col]   encrypt+upload a CSV (demo step 1);
                        the optional list names the sensitive columns
    \\rotate <table> <column>          re-key a column at the SP
    \\view <name> <sql>  create/replace a proxy-side view
    \\views              list views
    \\prepare <name> <sql>     prepare a statement (use ? for parameters)
    \\exec <name> [arg ...]    execute a prepared statement with arguments
    \\execmany <name> <json>   execute a prepared DML once per JSON row
    \\statements         prepared statements and the session cache counters
                        (hits/misses/evictions; per statement: plans,
                        parameter type signatures, last-used)
    \\stats              live metrics: counters, gauges, latency histograms
                        (query latency by route, scatter fan-out, cache
                        hits/misses, txn conflicts, admission rejections)
    \\trace on|off       record a span tree per query; bare ``\\trace``
                        prints the last query's stitched span tree
    \\slowlog [ms]       arm the session slow-query log at ms (bare:
                        show recorded entries)
    \\shards             per-shard status of a cluster deployment
    \\replicas           per-shard replica health and failover history
    \\rebalance <n> [host:port,...]   grow/shrink the cluster to n shards
                        online (encrypted buckets migrate re-keyed; SQL
                        equivalent: ALTER CLUSTER ADD/REMOVE SHARD)
    \\begin              start a transaction (prompt becomes ``sdb*>``)
    \\commit             commit it (conflicts roll back and report)
    \\rollback           discard it
    \\rewrite on|off     toggle printing the rewritten SQL after queries
    \\quit               exit

The shell is UI only; every capability it exposes is session-layer
(:mod:`repro.api`) or proxy API.
"""

from __future__ import annotations

import argparse
import datetime
import json
import re
import sys
from typing import Optional

from repro.api.connection import Connection
from repro.core.meta import ValueType
from repro.core.proxy import SDBProxy
from repro.core.server import SDBServer
from repro.crypto.prf import seeded_rng


def load_csv(path) -> tuple[list, list]:
    """Read a CSV with header into ``(columns, rows)`` for ``create_table``.

    Types are inferred column-wise from the data: INT if every non-empty
    cell parses as an integer, DECIMAL(2) for numbers, DATE for ISO dates,
    else STRING sized to the widest value.  Empty cells become NULL.
    """
    import csv
    import datetime

    with open(path, newline="", encoding="utf-8") as f:
        reader = csv.reader(f)
        header = next(reader)
        raw_rows = [row for row in reader if row]

    def parse_cell(text: str):
        if text == "":
            return None
        try:
            return int(text)
        except ValueError:
            pass
        try:
            return float(text)
        except ValueError:
            pass
        try:
            return datetime.date.fromisoformat(text)
        except ValueError:
            return text

    parsed = [[parse_cell(cell) for cell in row] for row in raw_rows]
    columns = []
    for i, name in enumerate(header):
        cells = [row[i] for row in parsed if row[i] is not None]
        if cells and all(isinstance(c, int) for c in cells):
            vtype = ValueType.int_()
        elif cells and all(isinstance(c, (int, float)) for c in cells):
            vtype = ValueType.decimal(2)
        elif cells and all(isinstance(c, datetime.date) for c in cells):
            vtype = ValueType.date()
        else:
            width = max((len(str(c).encode("utf-8")) for c in cells), default=1)
            vtype = ValueType.string(max(width, 1))
            for row in parsed:
                if row[i] is not None:
                    row[i] = str(row[i])
        columns.append((name, vtype))
    return columns, [tuple(row) for row in parsed]


class SDBShell:
    """Line-at-a-time console over one :class:`SDBProxy`.

    ``execute_line`` returns the text to display, which keeps the shell
    fully testable without a TTY.
    """

    PROMPT = "sdb> "
    #: prompt while a transaction is open: uncommitted work is pending
    TXN_PROMPT = "sdb*> "

    def __init__(self, proxy: SDBProxy):
        self.proxy = proxy
        self.conn = Connection(proxy)
        self.show_rewrite = True
        self.done = False
        self._prepared: dict = {}  # name -> Statement

    # -- line dispatch ------------------------------------------------------

    def execute_line(self, line: str) -> str:
        line = line.strip()
        if not line:
            return ""
        if line.startswith("\\"):
            return self._command(line)
        try:
            cursor = self.conn.cursor()
            cursor.execute(line)
        except Exception as exc:
            return f"error: {exc}"
        # route the rendering by the *statement's* kind, not by sniffing
        # the result object
        if cursor.statement.kind == "select":
            return self._render_select(cursor)
        if cursor.statement.kind == "explain":
            return "\n".join(row[0] for row in cursor.fetchall())
        return self._render_dml(cursor)

    def _command(self, line: str) -> str:
        parts = line[1:].split(None, 1)
        name = parts[0].lower() if parts else ""
        argument = parts[1] if len(parts) > 1 else ""
        if name in ("q", "quit", "exit"):
            self.done = True
            return "bye"
        if name == "help":
            return __doc__.split("commands:", 1)[-1] if "commands:" in __doc__ else __doc__
        if name == "tables":
            return self._render_tables()
        if name == "views":
            views = self.proxy.store.views()
            if not views:
                return "(no views)"
            return "\n".join(
                f"{v}: {self.proxy.store.view(v)}" for v in views
            )
        if name == "view":
            parts = argument.split(None, 1)
            if len(parts) != 2:
                return "usage: \\view <name> <select sql>"
            try:
                self.proxy.create_view(parts[0], parts[1], replace=True)
            except Exception as exc:
                return f"error: {exc}"
            return f"view {parts[0]} created"
        if name == "keystore":
            return self._render_keystore()
        if name == "explain":
            if not argument:
                return "usage: \\explain <sql>"
            try:
                # the plan tree (same object EXPLAIN <sql> and
                # Cursor.explain return), then the rewrite detail view
                tree = self.proxy.plan(argument)
                report = self.proxy.explain(argument)
            except Exception as exc:
                return f"error: {exc}"
            return tree.explain() + "\n\n" + report.pretty()
        if name in ("begin", "commit", "rollback"):
            return self._txn(name)
        if name == "rewrite":
            self.show_rewrite = argument.strip().lower() != "off"
            return f"rewrite display {'on' if self.show_rewrite else 'off'}"
        if name == "upload":
            return self._upload(argument)
        if name == "prepare":
            return self._prepare(argument)
        if name == "exec":
            return self._exec(argument)
        if name == "execmany":
            return self._execmany(argument)
        if name == "statements":
            return self._render_statements()
        if name == "stats":
            return self._render_stats()
        if name == "trace":
            return self._trace(argument)
        if name == "slowlog":
            return self._slowlog(argument)
        if name == "shards":
            return self._render_shards()
        if name == "replicas":
            return self._render_replicas()
        if name == "rebalance":
            return self._rebalance(argument)
        if name == "rotate":
            parts = argument.split()
            if len(parts) != 2:
                return "usage: \\rotate <table> <column>"
            try:
                result = self.proxy.rotate_column_key(parts[0], parts[1])
            except Exception as exc:
                return f"error: {exc}"
            return f"{result.affected} share(s) re-keyed at the SP"
        return f"unknown command \\{name} (try \\help)"

    @property
    def prompt(self) -> str:
        """The REPL prompt -- starred while a transaction is open."""
        return self.TXN_PROMPT if self.conn._in_txn else self.PROMPT

    def _txn(self, action: str) -> str:
        if action != "begin" and not self.conn._in_txn:
            # Connection.commit()/rollback() are PEP-249 no-ops here;
            # the console should say so instead of claiming a commit
            return "no transaction in progress"
        try:
            getattr(self.conn, action)()
        except Exception as exc:
            return f"error: {exc}"
        if action == "begin":
            return "transaction started"
        if action == "commit":
            return "transaction committed"
        return "transaction rolled back"

    def _upload(self, argument: str) -> str:
        parts = argument.split()
        if len(parts) < 2:
            return "usage: \\upload <csv> <table> [sensitive,columns]"
        path, table = parts[0], parts[1]
        sensitive = parts[2].split(",") if len(parts) > 2 else []
        try:
            columns, rows = load_csv(path)
            self.proxy.create_table(table, columns, rows, sensitive=sensitive)
        except Exception as exc:
            return f"error: {exc}"
        names = [c for c, _ in columns]
        return (
            f"uploaded {table}: {len(rows)} rows, columns {names}, "
            f"sensitive {sensitive or '[]'}"
        )

    # -- prepared statements ---------------------------------------------------

    def _prepare(self, argument: str) -> str:
        parts = argument.split(None, 1)
        if len(parts) != 2:
            return "usage: \\prepare <name> <sql>"
        name, sql = parts
        try:
            statement = self.conn.prepare(sql)
        except Exception as exc:
            return f"error: {exc}"
        self._prepared[name] = statement
        return (
            f"prepared {name}: {statement.kind}, "
            f"{statement.num_params} parameter(s)"
        )

    def _exec(self, argument: str) -> str:
        parts = argument.split()
        if not parts:
            return "usage: \\exec <name> [arg ...]"
        statement = self._prepared.get(parts[0])
        if statement is None:
            return f"error: no prepared statement {parts[0]!r} (see \\prepare)"
        params = [self._parse_param(token) for token in parts[1:]]
        try:
            cursor = self.conn.cursor()
            cursor.execute(statement, params)
        except Exception as exc:
            return f"error: {exc}"
        if statement.kind == "select":
            return self._render_select(cursor)
        return self._render_dml(cursor)

    def _execmany(self, argument: str) -> str:
        parts = argument.split(None, 1)
        if len(parts) != 2:
            return "usage: \\execmany <name> <json array of parameter rows>"
        statement = self._prepared.get(parts[0])
        if statement is None:
            return f"error: no prepared statement {parts[0]!r} (see \\prepare)"
        try:
            rows = json.loads(parts[1])
            if not isinstance(rows, list) or not all(
                isinstance(row, list) for row in rows
            ):
                return "error: expected a JSON array of parameter rows"
            cursor = self.conn.cursor()
            cursor.executemany(statement, rows)
        except Exception as exc:
            return f"error: {exc}"
        return f"{cursor.rowcount} row(s) affected ({len(rows)} executions)"

    DATE_ARG = re.compile(r"^\d{4}-\d{2}-\d{2}$")

    @classmethod
    def _parse_param(cls, token: str):
        """Shell argument -> parameter value (JSON scalar, ISO date or text).

        Only dashed ISO dates count as dates: ``fromisoformat`` on 3.11+
        also accepts compact forms like ``20250101``, which would silently
        turn large integer arguments into dates.
        """
        if cls.DATE_ARG.match(token):
            try:
                return datetime.date.fromisoformat(token)
            except ValueError:
                pass
        try:
            value = json.loads(token)
        except ValueError:
            return token
        if value is None or isinstance(value, (int, float, bool, str)):
            return value  # '"123"' binds the string, bare 123 the int
        return token

    def _render_statements(self) -> str:
        import time as _time

        info = self.conn.cache_info()
        lines = [
            f"session cache: {info.hits} hits, {info.misses} misses, "
            f"{info.evictions} evictions, {info.currsize}/{info.maxsize} cached"
        ]
        now = _time.monotonic()
        for name, statement in sorted(self._prepared.items()):
            if statement.last_used_at is None:
                used = "never used"
            else:
                used = f"last used {now - statement.last_used_at:.1f}s ago"
            signatures = statement.signatures()
            sig = f", signatures {'; '.join(signatures)}" if signatures else ""
            lines.append(
                f"  {name}: {statement.kind}, {statement.num_params} "
                f"parameter(s), {statement.plan_variants} plan(s), "
                f"{statement.executions} execution(s), {used}{sig}"
            )
        return "\n".join(lines)

    # -- observability ---------------------------------------------------------

    def _render_stats(self) -> str:
        snapshot = self.conn.metrics()
        lines = []
        for name in sorted(snapshot):
            metric = snapshot[name]
            lines.append(f"{name} ({metric['type']}): {metric['help']}")
            for row in metric["values"]:
                labels = ",".join(
                    f"{k}={v}" for k, v in sorted(row["labels"].items())
                )
                prefix = f"  {{{labels}}}" if labels else "  (all)"
                if "buckets" in row:
                    lines.append(
                        f"{prefix} count={row['count']} sum={row['sum']:g}"
                    )
                else:
                    lines.append(f"{prefix} {row['value']}")
            if not metric["values"]:
                lines.append("  (no samples)")
        return "\n".join(lines) if lines else "(no metrics)"

    def _trace(self, argument: str) -> str:
        from repro.obs.trace import NOOP_TRACER, Tracer

        arg = argument.strip().lower()
        if arg == "on":
            if not self.conn.tracer.enabled:
                self.conn.tracer = Tracer()
            return "tracing on"
        if arg == "off":
            self.conn.tracer = NOOP_TRACER
            return "tracing off"
        if arg:
            return "usage: \\trace [on|off]"
        if not self.conn.tracer.enabled:
            return "tracing is off (\\trace on)"
        tree = self.conn.span_tree()
        return tree if tree else "(no spans recorded yet)"

    def _slowlog(self, argument: str) -> str:
        from repro.obs.slowlog import SlowQueryLog

        arg = argument.strip()
        if arg:
            try:
                threshold_ms = float(arg)
            except ValueError:
                return "usage: \\slowlog [threshold ms]"
            self.conn.slowlog = SlowQueryLog(threshold_ms / 1000.0)
            return f"slow-query log armed at {threshold_ms:g} ms"
        entries = self.conn.slow_queries()
        if self.conn.slowlog is None:
            return "slow-query log is off (\\slowlog <ms>)"
        if not entries:
            return "(no slow queries recorded)"
        lines = []
        for entry in entries:
            lines.append(
                f"{entry['elapsed_s'] * 1000.0:.1f} ms {entry['kind']}"
                + (f" trace={entry['trace_id']}" if entry.get("trace_id") else "")
            )
            body = entry.get("body", "")
            if body:
                lines.extend("  " + ln for ln in body.splitlines())
        return "\n".join(lines)

    def _rebalance(self, argument: str) -> str:
        parts = argument.split()
        if not parts or not parts[0].isdigit():
            return "usage: \\rebalance <target shard count> [host:port,...]"
        target = int(parts[0])
        endpoints = parts[1].split(",") if len(parts) > 1 else None
        if not hasattr(self.proxy.server, "num_shards"):
            return "(not a cluster deployment; see repro.cluster)"
        try:
            report = self.conn.rebalance(target, endpoints=endpoints)
        except Exception as exc:
            return f"error: {exc}"
        lines = [
            f"topology epoch {report.epoch}: {report.old_count} -> "
            f"{report.new_count} shard(s); {report.rows_moved} row(s) "
            f"migrated (re-keyed in flight), {report.rekeyed_columns} "
            f"column key(s) rotated in {report.elapsed_s:.2f}s"
        ]
        for entry in report.leakage:
            lines.append(f"  leakage: {entry}")
        return "\n".join(lines)

    def _render_shards(self) -> str:
        status_fn = getattr(self.proxy.server, "shard_status", None)
        if not callable(status_fn):
            return "(not a cluster deployment; see repro.cluster)"
        statuses = status_fn()
        if isinstance(statuses, dict):  # a bare shard, not a coordinator
            return "(not a cluster deployment; see repro.cluster)"
        lines = [f"cluster: {len(statuses)} shard(s)"]
        for status in statuses:
            tables = status.get("tables", {})
            placements = status.get("placements", {})
            parts = []
            for table, rows in sorted(tables.items()):
                placed = placements.get(table)
                by = f" by {placed['shard_by']}" if placed else ""
                parts.append(f"{table}={rows} rows{by}")
            role = " primary" if status.get("primary") else ""
            backend = status.get("backend", "?")
            lines.append(
                f"  shard {status.get('shard_id')}{role} [{backend}]: "
                + (", ".join(parts) if parts else "(empty)")
            )
        return "\n".join(lines)

    def _render_replicas(self) -> str:
        status_fn = getattr(self.proxy.server, "replica_status", None)
        if not callable(status_fn):
            return "(not a cluster deployment; see repro.cluster)"
        statuses = status_fn()
        lines = [f"cluster: {len(statuses)} replica group(s)"]
        for status in statuses:
            members = status.get("members", [])
            parts = []
            for member in members:
                marker = (
                    "*" if member["ordinal"] == status.get("primary_ordinal")
                    else " "
                )
                parts.append(
                    f"{marker}replica{member['ordinal']}"
                    f"[{member.get('backend', '?')}]"
                    f"={member['state']} w{member.get('weight', 1)}"
                )
            lines.append(
                f"  group {status.get('group')}: " + ", ".join(parts)
            )
        failover = getattr(self.proxy.server, "failover", None)
        events = list(getattr(failover, "events", ()) or ())
        if events:
            lines.append("failover history:")
            lines.extend(f"  - {event}" for event in events)
        return "\n".join(lines)

    # -- rendering ------------------------------------------------------------

    def _render_select(self, cursor) -> str:
        table = cursor.fetch_table()
        lines = [table.pretty()]
        cost = cursor.cost
        lines.append(
            f"({table.num_rows} rows; client "
            f"{cost.client_s * 1000:.1f} ms [parse {cost.parse_s * 1000:.1f}"
            f" + rewrite {cost.rewrite_s * 1000:.1f}"
            f" + decrypt {cost.decrypt_s * 1000:.1f}], server "
            f"{cost.server_s * 1000:.1f} ms)"
        )
        if self.show_rewrite:
            lines.append(f"rewritten: {cursor.rewritten_sql}")
        return "\n".join(lines)

    def _render_dml(self, cursor) -> str:
        lines = [f"{cursor.rowcount} row(s) affected"]
        if self.show_rewrite and cursor.rewritten_sql:
            lines.append(f"rewritten: {cursor.rewritten_sql}")
        return "\n".join(lines)

    def _render_tables(self) -> str:
        names = self.proxy.store.tables()
        if not names:
            return "(no tables uploaded)"
        lines = []
        for name in names:
            meta = self.proxy.store.table(name)
            sensitive = ", ".join(meta.sensitive_columns()) or "-"
            lines.append(
                f"{name}: {len(meta.columns)} columns, {meta.num_rows} rows, "
                f"sensitive: [{sensitive}]"
            )
        return "\n".join(lines)

    def _render_keystore(self) -> str:
        store = self.proxy.store
        lines = [
            f"key store: {store.size_bytes()} bytes "
            f"({len(store.tables())} tables)"
        ]
        for name in store.tables():
            meta = store.table(name)
            keys = sum(1 for c in meta.columns.values() if c.sensitive)
            lines.append(f"  {name}: {keys} column keys + 1 auxiliary key")
        lines.append("(size is O(#columns): independent of row count)")
        return "\n".join(lines)

    # -- REPL -----------------------------------------------------------------------

    def run(self, stdin=None, stdout=None) -> None:
        stdin = stdin or sys.stdin
        stdout = stdout or sys.stdout
        stdout.write("SDB shell -- \\help for commands\n")
        while not self.done:
            stdout.write(self.prompt)
            stdout.flush()
            line = stdin.readline()
            if not line:
                break
            output = self.execute_line(line)
            if output:
                stdout.write(output + "\n")


def build_proxy(args) -> SDBProxy:
    """Assemble the deployment the flags describe."""
    if getattr(args, "shards", None):
        if args.connect or args.durable:
            raise SystemExit(
                "--shards is its own deployment shape; "
                "do not combine it with --connect/--durable"
            )
        from repro.api.connection import _build_cluster

        spec = args.shards
        server = _build_cluster(
            int(spec) if spec.isdigit() else spec.split(",")
        )
    elif args.connect:
        from repro.net import RemoteServer

        host, _, port = args.connect.partition(":")
        server = RemoteServer.connect(host or "127.0.0.1", int(port or 9753))
    elif args.durable:
        from repro.storage import DurableServer

        server = DurableServer(args.durable)
    else:
        server = SDBServer()
    proxy = SDBProxy(server, modulus_bits=args.modulus_bits)
    if args.tpch:
        from repro.workloads.tpch.dbgen import generate
        from repro.workloads.tpch.loader import load_encrypted

        data = generate(scale_factor=args.tpch, seed=args.seed)
        shard_by = None
        if getattr(args, "shards", None):
            from repro.workloads.tpch.loader import DEFAULT_SHARD_COLUMNS

            shard_by = DEFAULT_SHARD_COLUMNS
        load_encrypted(proxy, data, rng=seeded_rng(args.seed), shard_by=shard_by)
    return proxy


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sdb-shell", description="SDB data-owner console"
    )
    parser.add_argument("--connect", metavar="HOST:PORT",
                        help="use a remote SP (sdb-server) instead of in-process")
    parser.add_argument("--shards", metavar="N|HOST:PORT,...",
                        help="sharded cluster: a shard count (in-process) or "
                             "comma-separated daemon endpoints; the first "
                             "entry is the primary shard")
    parser.add_argument("--durable", metavar="DIR",
                        help="in-process SP with disk persistence under DIR")
    parser.add_argument("--tpch", type=float, metavar="SF",
                        help="pre-load TPC-H data at this scale factor")
    parser.add_argument("--modulus-bits", type=int, default=1024)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    shell = SDBShell(build_proxy(args))
    shell.run()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
