"""Lock-discipline rules over ReadWriteLock and ``threading`` primitives.

Lock *identities* are static names: ``self._lock`` inside ``class C`` is
``C._lock``; a module-level or local lock is ``<scope>.<name>``.  Distinct
instances behind one identity are conflated and aliased instances behind
two identities are split -- both conservative for the rules below in the
direction of this codebase's idioms (locks live on long-lived singletons
and are always reached through one attribute path).

Four rules:

* **lock-order-cycle** -- a global graph with an edge A->B whenever B is
  acquired (lexically, or transitively through a resolvable call chain)
  while A is held.  A cycle across functions is a potential deadlock that
  no single test interleaving is likely to reach.
* **lock-no-release** -- a bare ``acquire_read()`` / ``acquire_write()`` /
  ``acquire()`` whose matching release is not guaranteed on exception
  paths (no enclosing/immediately-following ``try/finally``, not a
  ``with``).  Acquire-wrapper methods (``acquire*``, ``__enter__``,
  ``locked`` context-manager factories) are exempt: handing the lock to
  the caller is their contract.
* **blocking-under-write-lock** -- a call that may block (sleep, socket,
  wire framing; transitive through resolvable calls) while a
  ReadWriteLock write side is held, i.e. while every reader is stalled.
* **await-under-lock** -- an ``await`` lexically inside a ``with`` on a
  *synchronous* lock in an async function: suspending there blocks the
  whole event loop's access to the lock.  ``async with asyncio.Lock`` is
  the sanctioned pattern and is untouched.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.model import Finding, Severity
from repro.analysis.project import FunctionInfo, Project

_LOCKISH_FRAGMENTS = ("lock", "mutex")
_ACQUIRE_METHODS = {"acquire_read": "read", "acquire_write": "write", "acquire": "mutex"}
_RELEASE_FOR = {"acquire_read": "release_read", "acquire_write": "release_write",
                "acquire": "release"}
_CM_METHODS = {"read_locked": "read", "write_locked": "write"}


def _expr_name_chain(expr: ast.expr) -> Optional[list[str]]:
    """["self", "_lock"] for ``self._lock``; None for anything unnamed."""
    parts: list[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        return list(reversed(parts))
    return None


def _is_lockish_name(name: str) -> bool:
    lowered = name.lower()
    return any(fragment in lowered for fragment in _LOCKISH_FRAGMENTS)


class _Held:
    __slots__ = ("identity", "mode", "line")

    def __init__(self, identity: str, mode: str, line: int):
        self.identity = identity
        self.mode = mode
        self.line = line


class LockPass:
    def __init__(self, project: Project):
        self.project = project
        self.findings: list[Finding] = []
        #: (A, B) -> (file, line, symbol) of one witness acquisition
        self.edges: dict[tuple, tuple] = {}
        #: per-function: identities acquired anywhere inside (direct)
        self.direct_acquires: dict[str, set] = {}
        self.direct_blocks: dict[str, Optional[int]] = {}
        #: fixpoint closures through resolvable calls
        self.trans_acquires: dict[str, set] = {}
        self.may_block: dict[str, Optional[tuple]] = {}

    # -- entry -----------------------------------------------------------------

    def run(self) -> list[Finding]:
        for fn in self.project.functions.values():
            acquires, blocks = self._collect_direct(fn)
            self.direct_acquires[fn.qualname] = acquires
            self.direct_blocks[fn.qualname] = blocks
        self._fixpoint()
        for fn in self.project.functions.values():
            _FunctionWalk(self, fn).run()
        self._find_cycles()
        return self.findings

    # -- summaries -------------------------------------------------------------

    def _collect_direct(self, fn: FunctionInfo):
        acquires: set[str] = set()
        blocks: Optional[int] = None
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not fn.node:
                continue
            if isinstance(node, ast.withitem):
                acq = self._with_item_lock(node.context_expr, fn)
                if acq is not None:
                    acquires.add(acq[0])
            elif isinstance(node, ast.Call):
                acq = self._acquire_call(node, fn)
                if acq is not None:
                    acquires.add(acq[0])
                if blocks is None and fn.is_blocking is False \
                        and self.project.is_blocking_call(node, fn):
                    blocks = node.lineno
        if fn.is_blocking:
            blocks = fn.node.lineno
        return acquires, blocks

    def _fixpoint(self) -> None:
        self.trans_acquires = {q: set(a) for q, a in self.direct_acquires.items()}
        self.may_block = {
            q: ((line,) if line is not None else None)
            for q, line in self.direct_blocks.items()
        }
        callees = {
            q: self._resolved_callees(fn)
            for q, fn in self.project.functions.items()
        }
        for _ in range(20):
            changed = False
            for qual, targets in callees.items():
                for target in targets:
                    extra = self.trans_acquires.get(target, ())
                    if not set(extra) <= self.trans_acquires[qual]:
                        self.trans_acquires[qual] |= set(extra)
                        changed = True
                    if self.may_block[qual] is None and \
                            self.may_block.get(target) is not None:
                        self.may_block[qual] = (target,) + tuple(
                            self.may_block[target]
                        )[:4]
                        changed = True
            if not changed:
                break

    def _resolved_callees(self, fn: FunctionInfo) -> set:
        out = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                qual, _ = self.project.resolve_call(node, fn)
                if qual in self.project.functions:
                    out.add(qual)
        return out

    # -- lock identity ---------------------------------------------------------

    def lock_identity(self, expr: ast.expr, fn: FunctionInfo) -> Optional[str]:
        chain = _expr_name_chain(expr)
        if chain is None:
            return None
        if not _is_lockish_name(chain[-1]):
            return None
        if chain[0] in ("self", "cls"):
            scope = fn.class_name or fn.module.name
            return ".".join([scope] + chain[1:])
        if len(chain) == 1:
            return f"{fn.module.name}.{chain[0]}"
        return ".".join(chain)

    def _with_item_lock(self, expr: ast.expr, fn: FunctionInfo):
        """(identity, mode) when a with-item acquires a lock, else None."""
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            mode = _CM_METHODS.get(expr.func.attr)
            if mode is not None:
                identity = self.lock_identity(expr.func.value, fn)
                if identity is not None:
                    return identity, mode
            return None
        identity = self.lock_identity(expr, fn)
        if identity is not None:
            return identity, "mutex"
        return None

    def _acquire_call(self, node: ast.Call, fn: FunctionInfo):
        """(identity, mode, method) for a bare acquire call, else None."""
        if not isinstance(node.func, ast.Attribute):
            return None
        mode = _ACQUIRE_METHODS.get(node.func.attr)
        if mode is None:
            return None
        identity = self.lock_identity(node.func.value, fn)
        if identity is None:
            return None
        return identity, mode, node.func.attr

    # -- reporting -------------------------------------------------------------

    def report(self, fn: FunctionInfo, rule: str, line: int, message: str,
               trace=()) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                file=fn.module.rel_path,
                line=line,
                symbol=fn.qualname,
                message=message,
                severity=Severity.ERROR,
                trace=tuple(trace),
            )
        )

    def add_edge(self, a: str, b: str, fn: FunctionInfo, line: int) -> None:
        if a == b:
            return  # re-entrant acquisition, not an ordering edge
        self.edges.setdefault((a, b), (fn.module.rel_path, line, fn.qualname))

    def _find_cycles(self) -> None:
        graph: dict[str, set] = {}
        for a, b in self.edges:
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
        for scc in _tarjan(graph):
            if len(scc) < 2:
                continue
            members = sorted(scc)
            witness = []
            for a, b in sorted(self.edges):
                if a in scc and b in scc:
                    file, line, symbol = self.edges[(a, b)]
                    witness.append(f"{a}->{b} at {file}:{line}")
            file, line, symbol = self.edges[
                next((a, b) for a, b in sorted(self.edges) if a in scc and b in scc)
            ]
            self.findings.append(
                Finding(
                    rule="lock-order-cycle",
                    file=file,
                    line=line,
                    symbol=symbol,
                    message="lock-order cycle between "
                    + ", ".join(members),
                    severity=Severity.ERROR,
                    trace=tuple(witness[:6]),
                )
            )


def _tarjan(graph: dict) -> list[set]:
    """Strongly connected components, iteratively (no recursion limit)."""
    index: dict = {}
    low: dict = {}
    on_stack: set = set()
    stack: list = []
    sccs: list[set] = []
    counter = [0]

    for root in sorted(graph):
        if root in index:
            continue
        work = [(root, iter(sorted(graph[root])))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.add(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs


class _FunctionWalk:
    """Held-lock walk of one function: edges, blocking, await, release."""

    def __init__(self, owner: LockPass, fn: FunctionInfo):
        self.owner = owner
        self.fn = fn
        self.is_async = isinstance(fn.node, ast.AsyncFunctionDef)
        #: finally-block release targets active around the current statement
        self._finally_releases: list[set] = []

    def run(self) -> None:
        self._visit_block(self.fn.node.body, held=[])

    # -- traversal -------------------------------------------------------------

    def _visit_block(self, stmts, held: list) -> None:
        local_held = list(held)
        for i, stmt in enumerate(stmts):
            self._visit_stmt(stmt, stmts, i, local_held)

    def _visit_stmt(self, stmt, siblings, i, held: list) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired = []
            if isinstance(stmt, ast.With):  # async with = asyncio locks, exempt
                for item in stmt.items:
                    acq = self.owner._with_item_lock(item.context_expr, self.fn)
                    if acq is not None:
                        identity, mode = acq
                        self._on_acquire(identity, held, stmt.lineno)
                        acquired.append(_Held(identity, mode, stmt.lineno))
                    else:
                        self._scan_calls(item.context_expr, held)
            self._visit_block(stmt.body, held + acquired)
            return
        if isinstance(stmt, ast.Try):
            releases = self._releases_in(stmt.finalbody)
            self._finally_releases.append(releases)
            try:
                self._visit_block(stmt.body, held)
                for handler in stmt.handlers:
                    self._visit_block(handler.body, held)
                self._visit_block(stmt.orelse, held)
            finally:
                self._finally_releases.pop()
            self._visit_block(stmt.finalbody, held)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._scan_calls(stmt.test, held)
            self._visit_block(stmt.body, held)
            self._visit_block(stmt.orelse, held)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_calls(stmt.iter, held)
            self._visit_block(stmt.body, held)
            self._visit_block(stmt.orelse, held)
            return

        # bare acquire/release statements adjust the held set for the
        # remainder of this block
        direct = self._direct_acquire_stmt(stmt)
        if direct is not None:
            identity, mode, method = direct
            self._on_acquire(identity, held, stmt.lineno)
            self._check_guaranteed_release(stmt, siblings, i, method)
            held.append(_Held(identity, mode, stmt.lineno))
            return
        released = self._direct_release_stmt(stmt)
        if released is not None:
            for k in range(len(held) - 1, -1, -1):
                if held[k].identity == released:
                    del held[k]
                    break
            return
        self._scan_calls(stmt, held)

    # -- events ----------------------------------------------------------------

    def _on_acquire(self, identity: str, held: list, line: int) -> None:
        if any(h.identity == identity for h in held):
            return  # re-entrant: no new ordering established
        for h in held:
            self.owner.add_edge(h.identity, identity, self.fn, line)

    def _scan_calls(self, node, held: list) -> None:
        """Check calls and awaits in an expression/statement under ``held``."""
        if not held:
            return
        write_held = next((h for h in held if h.mode == "write"), None)
        stack = [node]
        while stack:
            sub = stack.pop()
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # nested defs are analyzed on their own
            stack.extend(ast.iter_child_nodes(sub))
            if isinstance(sub, ast.Await) and self.is_async:
                holder = held[-1]
                self.owner.report(
                    self.fn, "await-under-lock", sub.lineno,
                    f"await while holding {holder.identity} "
                    f"(acquired line {holder.line}) blocks the event loop",
                )
            if isinstance(sub, ast.Call):
                qual, _ = self.owner.project.resolve_call(sub, self.fn)
                # interprocedural lock-order edges
                if qual in self.owner.project.functions:
                    already = {h.identity for h in held}
                    for target in self.owner.trans_acquires.get(qual, ()):
                        if target in already:
                            continue  # re-entrant through the call chain
                        for h in held:
                            self.owner.add_edge(
                                h.identity, target, self.fn, sub.lineno
                            )
                if write_held is not None:
                    self._check_blocking(sub, qual, write_held)

    def _check_blocking(self, call: ast.Call, qual, write_held: _Held) -> None:
        if self.owner.project.is_blocking_call(call, self.fn):
            self.owner.report(
                self.fn, "blocking-under-write-lock", call.lineno,
                f"blocking call while holding the write side of "
                f"{write_held.identity} (acquired line {write_held.line})",
            )
            return
        if qual in self.owner.project.functions:
            chain = self.owner.may_block.get(qual)
            if chain is not None:
                self.owner.report(
                    self.fn, "blocking-under-write-lock", call.lineno,
                    f"call to {qual}() may block while holding the write "
                    f"side of {write_held.identity} "
                    f"(acquired line {write_held.line})",
                    trace=tuple(str(c) for c in chain),
                )

    # -- bare acquire/release helpers ------------------------------------------

    def _direct_acquire_stmt(self, stmt):
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            return self.owner._acquire_call(stmt.value, self.fn)
        return None

    def _direct_release_stmt(self, stmt) -> Optional[str]:
        if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)):
            return None
        call = stmt.value
        if not isinstance(call.func, ast.Attribute):
            return None
        if call.func.attr not in ("release", "release_read", "release_write"):
            return None
        return self.owner.lock_identity(call.func.value, self.fn)

    def _releases_in(self, stmts) -> set:
        out = set()
        for stmt in stmts:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        node.func.attr in ("release", "release_read",
                                           "release_write"):
                    identity = self.owner.lock_identity(node.func.value, self.fn)
                    if identity is not None:
                        out.add((identity, node.func.attr))
        return out

    def _check_guaranteed_release(self, stmt, siblings, i, method: str) -> None:
        name = self.fn.name
        if name.startswith("acquire") or name in ("__enter__",) \
                or name.endswith("locked"):
            return  # lock handoff is this function's contract
        identity, _, _ = self._direct_acquire_stmt(stmt)
        release = _RELEASE_FOR[method]
        # (a) immediately followed by try/finally releasing the lock
        if i + 1 < len(siblings) and isinstance(siblings[i + 1], ast.Try):
            if (identity, release) in self._releases_in(siblings[i + 1].finalbody):
                return
        # (b) already inside a try whose finally releases the lock
        for releases in self._finally_releases:
            if (identity, release) in releases:
                return
        self.owner.report(
            self.fn, "lock-no-release", stmt.lineno,
            f"{identity}.{method}() without a guaranteed {release}() on "
            "exception paths (use a with-block or try/finally)",
        )


def run_locks(project: Project) -> list[Finding]:
    return LockPass(project).run()
