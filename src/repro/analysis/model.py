"""Findings and rule identities shared by every ``sdb-lint`` pass."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"


#: Every rule the analyzer can emit, with a one-line contract.  The ids are
#: stable: baselines, fixtures and CI reference them by name.
RULES = {
    "taint-to-wire": "sensitive plaintext reaches wire serialization "
    "without crossing a crypto boundary",
    "taint-to-storage": "sensitive plaintext reaches an SP-side storage "
    "write without crossing a crypto boundary",
    "taint-to-exception": "sensitive plaintext is interpolated into an "
    "exception message",
    "taint-to-log": "sensitive plaintext is interpolated into a log call",
    "taint-to-repr": "a __repr__/__str__ returns sensitive plaintext",
    "taint-to-telemetry": "sensitive plaintext reaches a span attribute, "
    "metric label, or slow-query-log entry",
    "lock-order-cycle": "the global lock-order graph has a cycle "
    "(potential deadlock)",
    "lock-no-release": "a lock is acquired without a guaranteed release "
    "on exception paths (no try/finally, no context manager)",
    "blocking-under-write-lock": "a call that may block (network, sleep) "
    "runs while holding a ReadWriteLock write side",
    "await-under-lock": "an await expression runs while holding a "
    "synchronous lock (blocks the whole event loop)",
}


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, addressable by (rule, file, symbol)."""

    rule: str
    file: str            # repo-relative posix path
    line: int
    symbol: str          # qualified function ("module.Class.func") or ""
    message: str
    severity: Severity = Severity.ERROR
    #: call chain for interprocedural findings, outermost first
    trace: tuple = field(default_factory=tuple)

    def render(self) -> str:
        where = f"{self.file}:{self.line}"
        sym = f" [{self.symbol}]" if self.symbol else ""
        out = f"{where}: {self.rule}: {self.message}{sym}"
        if self.trace:
            out += "\n    via " + " -> ".join(self.trace)
        return out
