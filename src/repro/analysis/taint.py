"""Interprocedural plaintext-taint analysis.

Labels, not booleans: an expression's taint is a set of labels -- the
special label ``"*"`` means "sensitive plaintext originated *inside* this
function" (a call to a decrypt-family source, a declared source parameter),
while a plain label names a *parameter* of the enclosing function whose
value flows into the expression.  Findings fire only on ``"*"``; parameter
labels build per-function **summaries** so taint crosses call boundaries:

* ``param_flows_return`` -- calling ``f(tainted)`` yields a tainted value;
* ``param_to_sink`` -- calling ``f(tainted)`` reaches a sink *inside* ``f``
  (the finding is reported at the call site, with the call chain attached);
* ``tainted_return`` -- ``f()`` is a derived source (its body decrypts).

Summaries iterate to a global fixpoint, so a source->sink path through any
number of intermediate helpers is found, and a sanitizer call anywhere on
the path cuts it -- exactly the paper's boundary argument, checked at the
source level.

The pass is flow-sensitive per function (statements in textual order,
assignment kills, loop bodies evaluated twice) and deliberately
approximate everywhere a real type system would be needed; the method-name
registries in :mod:`repro.analysis.contracts` paper over receiver-typed
calls.  Approximations err toward reporting -- the baseline file, not
silence, is the pressure valve.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis import contracts
from repro.analysis.model import Finding, Severity
from repro.analysis.project import FunctionInfo, Project

#: Taint label meaning "a source inside this very function".
LOCAL = "*"

#: Calls that neutralize taint structurally (counts, type names, predicates)
#: -- the replacements the exception-scrub guidance prescribes.
_BENIGN_CALLS = frozenset(
    {"len", "type", "isinstance", "hasattr", "id", "bool", "range", "enumerate"}
)
_BENIGN_METHODS = frozenset({"bit_length", "count", "keys"})

_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)
_LOG_RECEIVERS = frozenset({"log", "logger", "logging", "_log", "_logger"})

_MAX_TRACE = 8


@dataclass
class Summary:
    """Interprocedural facts about one function."""

    tainted_return: bool = False
    param_flows_return: frozenset = frozenset()
    #: param name -> (rule, line-in-callee, trace tuple)
    param_to_sink: dict = field(default_factory=dict)

    def key(self):
        return (
            self.tainted_return,
            self.param_flows_return,
            tuple(sorted((p, r[0], r[2]) for p, r in self.param_to_sink.items())),
        )


class TaintPass:
    def __init__(self, project: Project):
        self.project = project
        self.summaries: dict[str, Summary] = {
            q: Summary() for q in project.functions
        }
        self.findings: list[Finding] = []

    def run(self) -> list[Finding]:
        for _ in range(10):  # global fixpoint over call-crossing summaries
            self.findings = []
            before = {q: s.key() for q, s in self.summaries.items()}
            for fn in self.project.functions.values():
                self._analyze_function(fn)
            if {q: s.key() for q, s in self.summaries.items()} == before:
                break
        seen = set()
        unique = []
        for f in self.findings:
            k = (f.rule, f.file, f.line, f.symbol)
            if k not in seen:
                seen.add(k)
                unique.append(f)
        return unique

    # -- per-function ----------------------------------------------------------

    def _analyze_function(self, fn: FunctionInfo) -> None:
        summary = Summary()
        env: dict[str, frozenset] = {}
        for param in fn.params:
            if (fn.qualname, param) in contracts.SOURCE_PARAMS:
                env[param] = frozenset({LOCAL})
            elif param not in ("self", "cls"):
                env[param] = frozenset({param})
        analyzer = _FunctionAnalyzer(self, fn, env, summary)
        # two passes: loop-carried taint stabilizes, findings kept from the
        # second pass only
        analyzer.emit = False
        analyzer.run()
        analyzer.emit = True
        analyzer.run()
        self.summaries[fn.qualname] = summary

    def report(self, fn: FunctionInfo, rule: str, line: int, message: str, trace=()):
        self.findings.append(
            Finding(
                rule=rule,
                file=fn.module.rel_path,
                line=line,
                symbol=fn.qualname,
                message=message,
                severity=Severity.ERROR,
                trace=tuple(trace)[:_MAX_TRACE],
            )
        )


class _FunctionAnalyzer:
    """Flow-sensitive walk of one function body."""

    def __init__(self, owner: TaintPass, fn: FunctionInfo, env, summary: Summary):
        self.owner = owner
        self.project = owner.project
        self.fn = fn
        self.env = env
        self.summary = summary
        self.emit = True

    def run(self) -> None:
        for stmt in self.fn.node.body:
            self._stmt(stmt)

    # -- statements ------------------------------------------------------------

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs are indexed and analyzed on their own
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._assign(node)
            return
        if isinstance(node, ast.Return):
            if node.value is not None:
                labels = self._taint(node.value)
                self._note_return(labels, node)
            return
        if isinstance(node, ast.Raise):
            if node.exc is not None:
                self._check_raise(node.exc)
                self._taint(node.exc)
            return
        if isinstance(node, ast.Expr):
            self._taint(node.value)
            return
        if isinstance(node, (ast.If, ast.While)):
            self._taint(node.test)
            for body in (node.body, node.orelse):
                for s in body:
                    self._stmt(s)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iter_labels = self._taint(node.iter)
            self._bind_target(node.target, iter_labels)
            for body in (node.body, node.orelse):
                for s in body:
                    self._stmt(s)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                labels = self._taint(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, labels)
            for s in node.body:
                self._stmt(s)
            return
        if isinstance(node, ast.Try):
            for block in (node.body, node.orelse, node.finalbody):
                for s in block:
                    self._stmt(s)
            for handler in node.handlers:
                for s in handler.body:
                    self._stmt(s)
            return
        if isinstance(node, (ast.Assert,)):
            self._taint(node.test)
            if node.msg is not None:
                self._sink_check(self._taint(node.msg), "taint-to-exception",
                                 node.msg, "assertion message")
            return
        # Delete/Global/Nonlocal/Pass/Import...: walk embedded expressions
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._taint(child)

    def _assign(self, node) -> None:
        value = getattr(node, "value", None)
        labels = self._taint(value) if value is not None else frozenset()
        if isinstance(node, ast.AugAssign):
            labels = labels | self._taint(node.target)
            self._bind_target(node.target, labels)
            return
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            self._bind_target(target, labels)

    def _bind_target(self, target: ast.expr, labels: frozenset) -> None:
        if isinstance(target, ast.Name):
            if labels:
                self.env[target.id] = labels
            else:
                self.env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, labels)
        elif isinstance(target, ast.Attribute):
            # track "self.attr" so plaintext parked on the instance is seen
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                key = f"self.{target.attr}"
                if labels:
                    self.env[key] = labels
                else:
                    self.env.pop(key, None)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, labels)
        # subscript targets: container-level taint is not tracked

    def _note_return(self, labels: frozenset, node: ast.stmt) -> None:
        if LOCAL in labels:
            self.summary.tainted_return = True
            if self.fn.name in ("__repr__", "__str__"):
                self._report("taint-to-repr", node.lineno,
                             f"{self.fn.name} returns sensitive plaintext")
        params = labels - {LOCAL}
        if params:
            self.summary.param_flows_return = (
                self.summary.param_flows_return | frozenset(params)
            )

    # -- expressions -----------------------------------------------------------

    def _taint(self, node: Optional[ast.expr]) -> frozenset:
        if node is None:
            return frozenset()
        if isinstance(node, ast.Name):
            return self.env.get(node.id, frozenset())
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                own = self.env.get(f"self.{node.attr}", frozenset())
                return own | self._taint(node.value)
            return self._taint(node.value)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.JoinedStr):
            out: frozenset = frozenset()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out = out | self._taint(value.value)
            return out
        if isinstance(node, ast.FormattedValue):
            return self._taint(node.value)
        if isinstance(node, (ast.BinOp,)):
            return self._taint(node.left) | self._taint(node.right)
        if isinstance(node, ast.BoolOp):
            out = frozenset()
            for value in node.values:
                out = out | self._taint(value)
            return out
        if isinstance(node, ast.UnaryOp):
            return self._taint(node.operand)
        if isinstance(node, ast.Compare):
            self._taint(node.left)
            for comparator in node.comparators:
                self._taint(comparator)
            return frozenset()  # predicates over plaintext are not plaintext
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out = frozenset()
            for element in node.elts:
                out = out | self._taint(element)
            return out
        if isinstance(node, ast.Dict):
            out = frozenset()
            for key in node.keys:
                out = out | self._taint(key)
            for value in node.values:
                out = out | self._taint(value)
            return out
        if isinstance(node, ast.Subscript):
            return self._taint(node.value) | self._taint(node.slice)
        if isinstance(node, ast.Starred):
            return self._taint(node.value)
        if isinstance(node, ast.IfExp):
            self._taint(node.test)
            return self._taint(node.body) | self._taint(node.orelse)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._comprehension(node, [node.elt])
        if isinstance(node, ast.DictComp):
            return self._comprehension(node, [node.key, node.value])
        if isinstance(node, ast.Await):
            return self._taint(node.value)
        if isinstance(node, (ast.NamedExpr,)):
            labels = self._taint(node.value)
            self._bind_target(node.target, labels)
            return labels
        if isinstance(node, ast.Lambda):
            return frozenset()
        if isinstance(node, ast.Slice):
            return frozenset()
        return frozenset()

    def _comprehension(self, node, result_exprs) -> frozenset:
        for gen in node.generators:
            iter_labels = self._taint(gen.iter)
            self._bind_target(gen.target, iter_labels)
            for cond in gen.ifs:
                self._taint(cond)
        out = frozenset()
        for expr in result_exprs:
            out = out | self._taint(expr)
        return out

    # -- calls and sinks -------------------------------------------------------

    def _call(self, node: ast.Call) -> frozenset:
        arg_labels = [self._taint(a) for a in node.args]
        kw_labels = {kw.arg: self._taint(kw.value) for kw in node.keywords}
        combined = frozenset().union(*arg_labels, *kw_labels.values()) \
            if (arg_labels or kw_labels) else frozenset()

        role = self.project.role_of_call(node, self.fn)
        if role == "sanitizer":
            return frozenset()
        if role == "source":
            return frozenset({LOCAL})
        if role in ("wire", "storage", "telemetry"):
            rule = f"taint-to-{role}"
            what = {
                "wire": "argument to a boundary serialization",
                "storage": "argument to an SP storage write",
                "telemetry": "a span attribute, metric label, or "
                             "slow-query-log entry",
            }[role]
            self._sink_check(combined, rule, node, what)
            return frozenset()

        if self._is_log_call(node):
            self._sink_check(combined, "taint-to-log", node, "log message")
            return frozenset()

        qual, meth = self.project.resolve_call(node, self.fn)
        callee = self.project.functions.get(qual) if qual else None
        if callee is not None:
            callee_summary = self.owner_summary(qual)
            self._propagate_into_callee(node, callee, callee_summary,
                                        arg_labels, kw_labels)
            out = frozenset()
            if callee_summary.tainted_return:
                out = out | frozenset({LOCAL})
            if callee_summary.param_flows_return:
                mapped = self._map_args(callee, node, arg_labels, kw_labels)
                for param, labels in mapped.items():
                    if param in callee_summary.param_flows_return:
                        out = out | labels
            return out

        # unresolved call: benign filters stop taint, anything else carries it
        name = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        if name in _BENIGN_CALLS:
            return frozenset()
        if meth in _BENIGN_METHODS:
            return frozenset()
        receiver = frozenset()
        if isinstance(node.func, ast.Attribute):
            receiver = self._taint(node.func.value)
        return combined | receiver

    def owner_summary(self, qual: str) -> Summary:
        return self.owner.summaries.get(qual, Summary())

    def _map_args(self, callee: FunctionInfo, node: ast.Call,
                  arg_labels, kw_labels) -> dict:
        """Map call-site argument labels onto callee parameter names."""
        params = callee.params
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        mapped: dict[str, frozenset] = {}
        for i, labels in enumerate(arg_labels):
            if i < len(params):
                mapped[params[i]] = labels
        for name, labels in kw_labels.items():
            if name is not None and name in callee.params:
                mapped[name] = labels
        return mapped

    def _propagate_into_callee(self, node, callee, callee_summary,
                               arg_labels, kw_labels) -> None:
        """Report (or transit) sinks reached inside the callee."""
        if not callee_summary.param_to_sink:
            return
        mapped = self._map_args(callee, node, arg_labels, kw_labels)
        for param, labels in mapped.items():
            hit = callee_summary.param_to_sink.get(param)
            if hit is None:
                continue
            rule, sink_line, trace = hit
            step = f"{callee.qualname}:{sink_line}"
            new_trace = (step,) + tuple(trace)
            if LOCAL in labels:
                self._report(
                    rule, node.lineno,
                    f"tainted argument {param!r} reaches a "
                    f"{rule.split('-')[-1]} sink inside {callee.name}()",
                    trace=new_trace,
                )
            for p in labels - {LOCAL}:
                existing = self.summary.param_to_sink.get(p)
                if existing is None or len(new_trace) < len(existing[2]):
                    if len(new_trace) <= _MAX_TRACE:
                        self.summary.param_to_sink[p] = (
                            rule, node.lineno, new_trace
                        )

    def _check_raise(self, exc: ast.expr) -> None:
        if isinstance(exc, ast.Call):
            labels = frozenset()
            for a in exc.args:
                labels = labels | self._taint(a)
            for kw in exc.keywords:
                labels = labels | self._taint(kw.value)
            self._sink_check(labels, "taint-to-exception", exc,
                             "exception message")
        else:
            self._sink_check(self._taint(exc), "taint-to-exception", exc,
                             "exception value")

    def _is_log_call(self, node: ast.Call) -> bool:
        if not isinstance(node.func, ast.Attribute):
            return False
        if node.func.attr not in _LOG_METHODS:
            return False
        base = node.func.value
        if isinstance(base, ast.Name):
            return base.id in _LOG_RECEIVERS or base.id.endswith("logger")
        if isinstance(base, ast.Attribute):
            return base.attr in _LOG_RECEIVERS or base.attr.endswith("logger")
        return False

    def _sink_check(self, labels: frozenset, rule: str, node, what: str) -> None:
        line = getattr(node, "lineno", self.fn.node.lineno)
        if LOCAL in labels:
            self._report(rule, line, f"sensitive plaintext flows into {what}")
        for param in labels - {LOCAL}:
            existing = self.summary.param_to_sink.get(param)
            if existing is None:
                self.summary.param_to_sink[param] = (rule, line, ())

    def _report(self, rule: str, line: int, message: str, trace=()) -> None:
        if self.emit:
            self.owner.report(self.fn, rule, line, message, trace)


def run_taint(project: Project) -> list[Finding]:
    return TaintPass(project).run()
