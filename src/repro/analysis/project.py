"""Source model for ``sdb-lint``: modules, functions, imports, call resolution.

The analyzer never imports the code under analysis -- everything is read
from ``ast`` parses.  A :class:`Project` indexes every function by its
qualified name (``package.module.Class.func``), records each module's
import aliases, and offers best-effort static call resolution:

* ``name(...)``            -> a module-level def or an imported name;
* ``alias.attr(...)``      -> through ``import x.y as alias`` /
  ``from x import y``;
* ``self.meth(...)``       -> a method of the lexically enclosing class;
* ``cls.meth(...)`` / ``ClassName.meth(...)`` -> ditto by class name.

Unresolvable receiver-typed calls fall back to the *method name*
registries in :mod:`repro.analysis.contracts` -- the honest trade-off that
keeps the pass useful without a type checker.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from repro.analysis import contracts

#: Decorator spellings that mark taint roles, mapped to the role name.
_DECORATOR_ROLES = {
    "plaintext_source": "source",
    "sanitizer": "sanitizer",
    "plaintext_sink": "sink",
    "blocking": "blocking",
}


@dataclass
class FunctionInfo:
    """One function or method, with its analysis-relevant facts."""

    qualname: str                  # module.Class.func or module.func
    module: "ModuleInfo"
    node: ast.AST                  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str]      # enclosing class, if a method
    role: Optional[str] = None     # source | sanitizer | sink | None
    is_blocking: bool = False      # decorated @blocking

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def params(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if args.vararg:
            names.append(args.vararg.arg)
        names.extend(a.arg for a in args.kwonlyargs)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str                       # dotted module name ("repro.core.proxy")
    path: Path
    rel_path: str                   # repo-relative posix path for findings
    tree: ast.Module
    #: local alias -> qualified target ("sies" -> "repro.crypto.sies",
    #: "send_message" -> "repro.net.protocol.send_message")
    imports: dict = field(default_factory=dict)
    functions: dict = field(default_factory=dict)  # qualname -> FunctionInfo


def _module_name_for(path: Path, roots: Iterable[Path]) -> str:
    """Dotted module name of ``path`` relative to the innermost source root."""
    best = None
    for root in roots:
        try:
            rel = path.resolve().relative_to(root.resolve())
        except ValueError:
            continue
        if best is None or len(rel.parts) < len(best.parts):
            best = rel
    rel = best if best is not None else Path(path.name)
    parts = list(rel.parts)
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts) or path.stem


def _decorator_role(node: ast.AST) -> tuple[Optional[str], bool]:
    """(taint role, is_blocking) declared by the function's decorators."""
    role = None
    blocking = False
    for deco in getattr(node, "decorator_list", ()):
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Attribute):
            name = target.attr
        elif isinstance(target, ast.Name):
            name = target.id
        else:
            continue
        declared = _DECORATOR_ROLES.get(name)
        if declared == "blocking":
            blocking = True
        elif declared is not None:
            role = declared
    return role, blocking


class Project:
    """All parsed modules plus the resolution machinery."""

    def __init__(self, repo_root: Path):
        self.repo_root = repo_root
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}

    # -- loading ---------------------------------------------------------------

    @classmethod
    def load(cls, paths: Iterable[Path], repo_root: Optional[Path] = None) -> "Project":
        """Parse every ``.py`` under ``paths`` into a project model."""
        files: list[Path] = []
        for p in paths:
            p = Path(p)
            if p.is_dir():
                files.extend(sorted(p.rglob("*.py")))
            elif p.suffix == ".py":
                files.append(p)
        if repo_root is None:
            repo_root = Path.cwd()
        # source roots: any ancestor named "src" plus each supplied dir, so
        # "src/repro/..." maps to "repro...." and a fixtures dir maps flat
        roots = set()
        for f in files:
            for ancestor in f.resolve().parents:
                if ancestor.name == "src":
                    roots.add(ancestor)
        for p in paths:
            p = Path(p)
            if p.is_dir():
                roots.add(p)
        project = cls(repo_root)
        for f in files:
            project._load_file(f, roots or [repo_root])
        return project

    def _load_file(self, path: Path, roots: Iterable[Path]) -> None:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            return  # not this tool's job to report
        name = _module_name_for(path, roots)
        try:
            rel = path.resolve().relative_to(self.repo_root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        module = ModuleInfo(name=name, path=path, rel_path=rel, tree=tree)
        self._index_imports(module)
        self._index_functions(module)
        self.modules[name] = module
        self.functions.update(module.functions)

    def _index_imports(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    module.imports[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                base = node.module
                if node.level:  # relative import: resolve against this module
                    parts = module.name.split(".")
                    parts = parts[: len(parts) - node.level]
                    base = ".".join(parts + [node.module]) if parts else node.module
                for alias in node.names:
                    local = alias.asname or alias.name
                    module.imports[local] = f"{base}.{alias.name}"

    def _index_functions(self, module: ModuleInfo) -> None:
        def visit(node: ast.AST, class_name: Optional[str]):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = (
                        f"{module.name}.{class_name}.{child.name}"
                        if class_name
                        else f"{module.name}.{child.name}"
                    )
                    role, is_blocking = _decorator_role(child)
                    module.functions[qual] = FunctionInfo(
                        qualname=qual,
                        module=module,
                        node=child,
                        class_name=class_name,
                        role=role,
                        is_blocking=is_blocking,
                    )
                    visit(child, class_name)  # nested defs keep the class scope
                elif isinstance(child, ast.ClassDef):
                    visit(child, child.name)
                else:
                    visit(child, class_name)

        visit(module.tree, None)

    # -- resolution ------------------------------------------------------------

    def resolve_call(
        self, call: ast.Call, fn: FunctionInfo
    ) -> tuple[Optional[str], Optional[str]]:
        """(qualified name, method name) for a call, either may be None.

        The qualified name is returned when imports/class scope pin the
        callee; the bare method name is returned for ``obj.meth(...)`` so
        callers can consult the method-name registries as a fallback.
        """
        target = call.func
        module = fn.module
        if isinstance(target, ast.Name):
            name = target.id
            local = f"{module.name}.{name}"
            if local in self.functions:
                return local, name
            imported = module.imports.get(name)
            if imported is not None:
                return imported, name
            return f"{module.name}.{name}", name
        if isinstance(target, ast.Attribute):
            attr = target.attr
            base = target.value
            if isinstance(base, ast.Name):
                if base.id in ("self", "cls") and fn.class_name:
                    qual = f"{module.name}.{fn.class_name}.{attr}"
                    if qual in self.functions:
                        return qual, attr
                    return None, attr
                class_qual = f"{module.name}.{base.id}.{attr}"
                if class_qual in self.functions:
                    return class_qual, attr
                imported = module.imports.get(base.id)
                if imported is not None:
                    # "from repro.crypto import sies; sies.decrypt(...)" or
                    # "import time; time.sleep(...)"
                    qual = f"{imported}.{attr}"
                    if qual in self.functions:
                        return qual, attr
                    # imported name may itself be a class
                    return qual, attr
            return None, attr
        return None, None

    # -- contract lookups ------------------------------------------------------

    def role_of_call(self, call: ast.Call, fn: FunctionInfo) -> Optional[str]:
        """Taint role of a call: source | sanitizer | (wire|storage sink)."""
        qual, meth = self.resolve_call(call, fn)
        if qual is not None:
            target = self.functions.get(qual)
            if target is not None and target.role is not None:
                if target.role == "sink":
                    return "wire"
                return target.role
            if qual in contracts.SOURCE_FUNCTIONS:
                return "source"
            if qual in contracts.SANITIZER_FUNCTIONS:
                return "sanitizer"
            if qual in contracts.SINK_FUNCTIONS:
                return contracts.SINK_FUNCTIONS[qual]
        if meth is not None and isinstance(call.func, ast.Attribute):
            if meth in contracts.SOURCE_METHODS:
                return "source"
            if meth in contracts.SANITIZER_METHODS:
                return "sanitizer"
            if meth in contracts.SINK_METHODS:
                return contracts.SINK_METHODS[meth]
        return None

    def is_blocking_call(self, call: ast.Call, fn: FunctionInfo) -> bool:
        qual, meth = self.resolve_call(call, fn)
        if qual is not None:
            target = self.functions.get(qual)
            if target is not None and target.is_blocking:
                return True
            if qual in contracts.BLOCKING_FUNCTIONS:
                return True
        if meth is not None and isinstance(call.func, ast.Attribute):
            if meth in contracts.BLOCKING_METHODS:
                return True
        return False
