"""``sdb-lint``: source-level proofs of the DO->SP boundary and lock discipline.

The runtime threat-model harness (:mod:`repro.core.security`) verifies the
states a test happens to reach; this package verifies the *source*, so the
security argument does not depend on test coverage:

* **Plaintext-taint analysis** (:mod:`repro.analysis.taint`): an
  interprocedural dataflow pass over the package.  *Sources* are decrypt
  outputs, bound parameter plaintexts and shard-key values; *sinks* are wire
  serialization, SP-side storage writes, exception/log message construction
  and ``__repr__`` bodies; *sanitizers* are the crypto boundary functions
  (secret sharing, SIES, the PRF, key ops, the query rewriter).  A
  source->sink path that crosses no sanitizer is an error unless a baseline
  suppression cites the matching ``DECLARED_LEAKAGE`` entry -- the static
  findings and the runtime leakage registry stay in lockstep by
  construction.
* **Lock-discipline rules** (:mod:`repro.analysis.locks`): a global
  lock-order graph over :class:`repro.core.sync.ReadWriteLock` and
  ``threading`` primitives (cycle => potential deadlock), acquire without a
  guaranteed release on exception paths, blocking calls under a write lock,
  and ``await`` while holding a synchronous lock in the asyncio tier.

Entry points: the ``sdb-lint`` console script (:mod:`repro.analysis.cli`)
and :func:`analyze_paths` for programmatic use.  Boundary functions are
declared with the zero-runtime-cost decorators in
:mod:`repro.analysis.contracts`.
"""

from repro.analysis.contracts import blocking, plaintext_sink, plaintext_source, sanitizer
from repro.analysis.engine import analyze_paths, analyze_project
from repro.analysis.model import Finding, Severity

__all__ = [
    "Finding",
    "Severity",
    "analyze_paths",
    "analyze_project",
    "blocking",
    "plaintext_sink",
    "plaintext_source",
    "sanitizer",
]
