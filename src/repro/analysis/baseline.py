"""Suppression baseline: the single source of truth for accepted findings.

``baseline.toml`` holds ``[[suppression]]`` tables:

.. code-block:: toml

    [[suppression]]
    rule = "taint-to-wire"
    file = "src/repro/cluster/router.py"
    function = "repro.cluster.router.shard_bucket"
    leakage = "shard-routing"
    reason = "PRF bucket of the shard key is declared placement leakage"

Every **taint** suppression must cite a ``DECLARED_LEAKAGE`` entry by its
key -- the text before the first ``:`` of an entry in
:data:`repro.core.security.DECLARED_LEAKAGE` -- so the static findings and
the runtime leakage registry cannot drift apart: an undeclared leak cannot
be waved through statically, and deleting a registry entry invalidates
every suppression that cited it.  Lock-rule suppressions cite no leakage
but must give a ``reason``.

A suppression that matches no current finding is itself an error ("stale
baseline"): the baseline can only shrink or be re-reviewed, never rot.

Parsing uses :mod:`tomllib` where available (3.11+) with a strict
fallback parser for the exact subset written above, so the 3.10 CI lane
needs no extra dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

from repro.analysis.model import Finding

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.10 fallback below
    tomllib = None

#: Rules whose suppressions must cite a DECLARED_LEAKAGE key.
TAINT_RULES = frozenset(
    {"taint-to-wire", "taint-to-storage", "taint-to-exception",
     "taint-to-log", "taint-to-repr", "taint-to-telemetry"}
)


class BaselineError(ValueError):
    """Malformed, unjustified, or stale baseline content."""


@dataclass(frozen=True)
class Suppression:
    rule: str
    file: str
    function: str
    reason: str
    leakage: Optional[str] = None

    def matches(self, finding: Finding) -> bool:
        return (
            finding.rule == self.rule
            and finding.file == self.file
            and (self.function in ("", "*") or finding.symbol == self.function)
        )


def declared_leakage_keys() -> frozenset:
    """The citable keys: first-``:`` prefixes of ``DECLARED_LEAKAGE``."""
    from repro.core.security import DECLARED_LEAKAGE

    return frozenset(entry.split(":", 1)[0].strip() for entry in DECLARED_LEAKAGE)


def _parse_toml(text: str, path: Path) -> dict:
    if tomllib is not None:
        try:
            return tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise BaselineError(f"{path}: {exc}") from None
    return _parse_subset(text, path)


def _parse_subset(text: str, path: Path) -> dict:
    """Parse the [[suppression]] subset (3.10 fallback, strict)."""
    out: dict = {"suppression": []}
    current: Optional[dict] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line == "[[suppression]]":
            current = {}
            out["suppression"].append(current)
            continue
        if "=" in line and current is not None:
            key, _, value = line.partition("=")
            key = key.strip()
            value = value.strip()
            if not (len(value) >= 2 and value[0] == '"' and value[-1] == '"'):
                raise BaselineError(
                    f"{path}:{lineno}: only string values are supported"
                )
            current[key] = value[1:-1]
            continue
        raise BaselineError(f"{path}:{lineno}: unparseable line {line!r}")
    return out


def load_baseline(path: Path, leakage_keys: Optional[frozenset] = None) -> list:
    """Parse and validate a baseline file into :class:`Suppression` rows."""
    if not path.exists():
        return []
    data = _parse_toml(path.read_text(encoding="utf-8"), path)
    if leakage_keys is None:
        leakage_keys = declared_leakage_keys()
    suppressions = []
    for i, row in enumerate(data.get("suppression", []), start=1):
        missing = {"rule", "file", "function", "reason"} - set(row)
        if missing:
            raise BaselineError(
                f"{path}: suppression #{i} is missing {sorted(missing)}"
            )
        leakage = row.get("leakage")
        if row["rule"] in TAINT_RULES:
            if not leakage:
                raise BaselineError(
                    f"{path}: suppression #{i} ({row['rule']}) must cite a "
                    "DECLARED_LEAKAGE entry via 'leakage = ...'"
                )
            if leakage not in leakage_keys:
                raise BaselineError(
                    f"{path}: suppression #{i} cites unknown leakage "
                    f"{leakage!r}; declared keys: {sorted(leakage_keys)}"
                )
        if not row["reason"].strip():
            raise BaselineError(f"{path}: suppression #{i} has an empty reason")
        suppressions.append(
            Suppression(
                rule=row["rule"],
                file=row["file"],
                function=row["function"],
                reason=row["reason"],
                leakage=leakage,
            )
        )
    return suppressions


def apply_baseline(
    findings: Iterable[Finding], suppressions: list
) -> tuple[list, list]:
    """(unsuppressed findings, stale suppressions)."""
    remaining = []
    used = [False] * len(suppressions)
    for finding in findings:
        hit = False
        for i, suppression in enumerate(suppressions):
            if suppression.matches(finding):
                used[i] = True
                hit = True
        if not hit:
            remaining.append(finding)
    stale = [s for s, u in zip(suppressions, used) if not u]
    return remaining, stale
