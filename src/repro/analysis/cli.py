"""``sdb-lint``: the command-line front door.

Exit codes: 0 clean, 1 findings, 2 usage/baseline errors (a malformed or
stale baseline is an *error*, not a warning -- the baseline file is the
single source of truth and must never rot).

``--changed`` lints only files touched relative to ``git HEAD`` (staged,
unstaged, and untracked) while still reading the whole tree for
interprocedural context -- the pre-commit hook uses this.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from repro.analysis.baseline import BaselineError
from repro.analysis.engine import analyze_paths

#: The reviewed suppression baseline shipped next to this package.
DEFAULT_BASELINE = Path(__file__).with_name("baseline.toml")


def _changed_files(repo_root: Path) -> set:
    """Repo-relative paths of .py files changed vs HEAD (plus untracked)."""
    out: set = set()
    for args in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                args, cwd=repo_root, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError):
            continue
        out.update(
            line.strip()
            for line in proc.stdout.splitlines()
            if line.strip().endswith(".py")
        )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="sdb-lint",
        description="Taint + lock-discipline static analysis for the SDB "
        "reproduction (see repro.analysis).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="suppression baseline (default: the package's baseline.toml)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report raw findings, ignoring the baseline",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="only report findings in files changed vs git HEAD",
    )
    parser.add_argument(
        "--repo-root", type=Path, default=Path.cwd(),
        help="root for repo-relative paths (default: cwd)",
    )
    args = parser.parse_args(argv)

    paths = [Path(p) for p in (args.paths or ["src"])]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"sdb-lint: no such path: {missing[0]}", file=sys.stderr)
        return 2

    only_files = None
    if args.changed:
        only_files = _changed_files(args.repo_root)
        if not only_files:
            print("sdb-lint: no changed python files")
            return 0

    try:
        findings, stale = analyze_paths(
            paths,
            repo_root=args.repo_root,
            baseline_path=None if args.no_baseline else args.baseline,
            only_files=only_files,
        )
    except BaselineError as exc:
        print(f"sdb-lint: baseline error: {exc}", file=sys.stderr)
        return 2

    for finding in findings:
        print(finding.render())
    if stale:
        for suppression in stale:
            print(
                "sdb-lint: stale suppression (matches no finding): "
                f"{suppression.rule} {suppression.file} {suppression.function}",
                file=sys.stderr,
            )
        return 2
    if findings:
        print(f"sdb-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
