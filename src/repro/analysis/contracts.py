"""Taint contracts: which functions produce, launder, or swallow plaintext.

Two declaration channels feed the analyzer, both read *syntactically* (the
analyzer never imports the code it checks):

* **Decorators** -- ``@analysis.plaintext_source`` on a function whose
  return value is sensitive plaintext, ``@analysis.sanitizer`` on a crypto
  boundary whose output is safe for the SP, ``@analysis.plaintext_sink`` on
  a function whose arguments reach the SP/wire/logs, ``@analysis.blocking``
  on a function that may block the calling thread.  At runtime they only
  stamp an attribute (no wrapper, no overhead), so annotating the crypto
  hot paths costs nothing.
* **Registries below** -- qualified names for functions that cannot carry a
  decorator (stdlib, or where importing :mod:`repro.analysis` would be a
  layering smell), plus *method name* fallbacks for receiver-typed calls
  the analyzer cannot resolve statically (``table.append_rows(...)`` on a
  duck-typed receiver).

Keep the registries short and reviewed: every entry widens or narrows what
the taint pass can prove.
"""

from __future__ import annotations

#: Attribute stamped on decorated functions (one source of truth for the
#: decorators below and the decorator-syntax scan in the analyzer).
TAINT_ATTR = "__sdb_taint__"


def plaintext_source(fn):
    """Mark ``fn``: its return value is sensitive plaintext (DO-side)."""
    setattr(fn, TAINT_ATTR, "source")
    return fn


def sanitizer(fn):
    """Mark ``fn``: a crypto boundary -- its output is safe to ship."""
    setattr(fn, TAINT_ATTR, "sanitizer")
    return fn


def plaintext_sink(fn):
    """Mark ``fn``: its arguments leave the DO trust domain."""
    setattr(fn, TAINT_ATTR, "sink")
    return fn


def blocking(fn):
    """Mark ``fn``: it may block the calling thread (network, sleep)."""
    setattr(fn, "__sdb_blocking__", True)
    return fn


# -- qualified-name registries -------------------------------------------------
#
# Qualified names are ``package.module.func`` or ``package.module.Class.func``
# as the analyzer resolves them from imports; entries here complement the
# decorators (decorated functions need no registry entry).

#: Functions whose *return value* is sensitive plaintext.
SOURCE_FUNCTIONS = frozenset(
    {
        # bound parameter plaintexts enter the AST here
        "repro.sql.params.bind_parameters",
    }
)

#: Functions whose output is safe for the SP even on tainted input.
SANITIZER_FUNCTIONS = frozenset(
    {
        # HMAC output reveals nothing about the message under the PRF
        # assumption (backs both SIES pads and shard routing)
        "repro.crypto.prf.prf_int",
        "repro.crypto.prf.derive_key",
        # hashes of plaintext used as cache keys
        "hashlib.sha256",
        "hashlib.blake2b",
    }
)

#: Functions whose arguments cross the DO->SP boundary.  kind: "wire" for
#: serialization onto a socket, "storage" for SP-side persistent writes,
#: "telemetry" for observability emissions (span attributes, metric
#: labels/samples, slow-query-log entries -- all operator-readable).
SINK_FUNCTIONS = {
    "repro.net.protocol.send_message": "wire",
    "repro.net.protocol.encode_value": "wire",
    # observability emission surface (repro.obs): anything attached to a
    # span, metric, or slow-log entry is operator-visible by design
    "repro.obs.trace.Span.set_attr": "telemetry",
    "repro.obs.trace.Tracer.record_timed": "telemetry",
    "repro.obs.metrics.Counter.labels": "telemetry",
    "repro.obs.metrics.Gauge.labels": "telemetry",
    "repro.obs.metrics.Histogram.labels": "telemetry",
    "repro.obs.metrics.Histogram.observe": "telemetry",
    "repro.obs.slowlog.SlowQueryLog.record_slow_query": "telemetry",
}

#: Method-name fallbacks for calls whose receiver type is unknown.  These
#: fire on ``obj.<name>(...)`` regardless of the receiver, so keep the
#: names specific to this codebase's boundary surfaces.
SOURCE_METHODS = frozenset(
    {
        # decrypt family (SIES, secret sharing, result decryptor)
        "decrypt",
        "decrypt_many",
        "decrypt_value",
        "decrypt_column",
        "decrypt_result",
    }
)

SANITIZER_METHODS = frozenset(
    {
        "encrypt",
        "encrypt_many",
        "encrypt_value",
        "encrypt_column",
        "item_key",
        "item_keys",
        "shard_bucket",
        "prf_int",
    }
)

#: method name -> sink kind.
SINK_METHODS = {
    # wire serialization
    "send_message": "wire",
    "encode_value": "wire",
    # telemetry emission (repro.obs surface): span attributes, metric
    # label selection, histogram samples, slow-log entries
    "set_attr": "telemetry",
    "labels": "telemetry",
    "observe": "telemetry",
    "record_timed": "telemetry",
    "record_slow_query": "telemetry",
    # SP-side storage mutation (Table / Catalog narrow mutation surface)
    "append_rows": "storage",
    "keep_rows": "storage",
    "set_cell": "storage",
    "store_table": "storage",
    "shard_store": "storage",
    "append_table": "storage",
}

#: Parameters that carry plaintext into a function (function, param name).
#: Seeds taint at the *definition* side: inside the listed function the
#: parameter is treated as a source, wherever the call came from.
SOURCE_PARAMS = frozenset(
    {
        # shard-key plaintext enters routing here; the PRF sanitizes it
        ("repro.cluster.router.shard_bucket", "value"),
        ("repro.cluster.router.canonical_bytes", "value"),
    }
)

#: Calls that may block the calling thread (qualified names).
BLOCKING_FUNCTIONS = frozenset(
    {
        "time.sleep",
        "select.select",
        "socket.create_connection",
        "repro.net.protocol.send_message",
        "repro.net.protocol.recv_message",
    }
)

#: Method-name fallbacks for blocking calls on unresolved receivers.
BLOCKING_METHODS = frozenset(
    {
        "recv",
        "recv_into",
        "sendall",
        "accept",
        "connect_ex",
    }
)
