"""Orchestration: load sources, run both rule families, apply the baseline."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional

from repro.analysis import baseline as baseline_mod
from repro.analysis.locks import run_locks
from repro.analysis.model import Finding
from repro.analysis.project import Project
from repro.analysis.taint import run_taint


def analyze_project(project: Project) -> list[Finding]:
    """All findings over an already-loaded project, sorted for stable output."""
    findings = run_taint(project) + run_locks(project)
    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.symbol))
    return findings


def analyze_paths(
    paths: Iterable,
    repo_root: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
    only_files: Optional[set] = None,
) -> tuple[list, list]:
    """(unsuppressed findings, stale suppressions) for the given paths.

    ``only_files`` restricts *reporting* (not analysis -- taint is
    interprocedural, so the whole tree is always read) to a set of
    repo-relative paths; ``sdb-lint --changed`` uses this.
    """
    project = Project.load([Path(p) for p in paths], repo_root=repo_root)
    findings = analyze_project(project)
    if only_files is not None:
        findings = [f for f in findings if f.file in only_files]
    if baseline_path is None:
        return findings, []
    suppressions = baseline_mod.load_baseline(Path(baseline_path))
    if only_files is not None:
        # a restricted run cannot see every finding, so staleness cannot be
        # judged; only full runs police the baseline
        remaining, _ = baseline_mod.apply_baseline(findings, suppressions)
        return remaining, []
    return baseline_mod.apply_baseline(findings, suppressions)
